"""Top-level CapsAcc accelerator: GEMM execution with cycle accounting.

The accelerator executes :class:`GemmJob` descriptions — dense
``(M x K) @ (K x N)`` products in raw fixed-point — on the systolic array,
tiling ``K`` over the array rows (with accumulator chunk summing) and ``N``
over the array columns.  :class:`BatchedGemmJob` stacks ``B`` images'
activations into one ``(B*M, K)`` stream per weight tile (tile loads
amortize over the batch); :class:`GroupedGemmJob` runs ``G`` independent
same-shape GEMMs back to back with one vectorized numpy call per K-chunk.
Two execution engines produce *identical results and identical cycle
accounting*:

* ``stepped`` — drives the bit-accurate :class:`~repro.hw.systolic.SystolicArray`
  clock edge by clock edge (used by tests and small workloads);
* ``fast`` — computes results with saturating numpy GEMMs and cycles with
  the closed-form model (used for full-layer simulations).

Cycle model.  One tile pass streams ``M`` data vectors through a latched
``R x C`` weight tile and needs ``M + R + C - 1`` cycles; loading a tile
takes ``R + 1`` cycles (one shift per row plus the latch edge).  With the
Weight2 double-buffer register (paper Fig 11b) the *next* tile's load
overlaps the current stream, so a tile's marginal cost is
``max(M, R + 1)`` plus one exposed fill/drain per K-chunk sequence; the
RTL achieves the overlap with a staggered latch, which a global-latch
step simulator cannot reproduce bit-accurately, so the stepped engine runs
tiles sequentially and reports both sequential and overlapped accounting
(the overlapped numbers are what :mod:`repro.perf` uses; the equality of
the *sequential* accounting against true stepped execution is asserted in
tests, validating the shared formulas).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.capsnet.hwops import QuantizedFormats, chunked_saturating_matmul
from repro.errors import MappingError, ShapeError
from repro.fixedpoint.formats import QFormat
from repro.hw.accumulator import AccumulatorBank
from repro.hw.activation import ActivationUnit
from repro.hw.buffers import Buffer, MemoryModel
from repro.hw.config import AcceleratorConfig
from repro.hw.stats import CycleStats
from repro.hw.systolic import SystolicArray


@dataclass
class GemmJobSpec:
    """Operand/format description shared by every GEMM job type.

    ``data_source`` / ``weight_source`` name the buffer each operand
    streams from, which drives the access counters (``"feedback"`` models
    the horizontal feedback multiplexer of Fig 10 and costs no buffer
    reads).  Subclasses fix the expected array ranks.
    """

    name: str
    data: np.ndarray
    weights: np.ndarray
    data_fmt: QFormat
    weight_fmt: QFormat
    acc_fmt: QFormat
    data_source: str = "data_buffer"
    weight_source: str = "weight_buffer"


@dataclass
class GemmJob(GemmJobSpec):
    """One dense matrix product to execute on the array.

    ``data`` is ``(M, K)`` raw integers in ``data_fmt``; ``weights`` is
    ``(K, N)`` raw integers in ``weight_fmt``.
    """


@dataclass
class BatchedGemmJob(GemmJobSpec):
    """``B`` images' activations against one shared weight matrix.

    ``data`` is ``(B, M, K)``; ``weights`` is ``(K, N)`` and is shared by
    the whole batch.  The engine stacks the activations into a single
    ``(B*M, K)`` stream per weight tile, so every tile is loaded **once
    per batch** instead of once per image — the paper's weight reuse,
    extended across images.
    """


@dataclass
class GroupedGemmJob(GemmJobSpec):
    """``G`` independent same-shape GEMMs executed back to back.

    ``data`` is ``(G, M, K)`` and ``weights`` is ``(G, K, N)`` — every
    group has its *own* weights (e.g. per-image coupling coefficients in
    the routing loop), so there is no cross-group tile reuse; the grouped
    job exists so the simulator can execute the whole group with one
    vectorized numpy call per K-chunk instead of ``G`` Python-level jobs.
    Cycle accounting is exactly ``G`` sequential single GEMMs.
    """


@dataclass
class GemmResult:
    """Result of one GEMM execution."""

    acc: np.ndarray
    stats: CycleStats
    overlapped_cycles: int = 0
    #: The tiling the accounting was computed for (stream-pipeline input).
    plan: "TilingPlan | None" = None


@dataclass
class BatchedGemmResult:
    """Result of one batched (or grouped) GEMM execution."""

    acc: np.ndarray
    stats: CycleStats
    overlapped_cycles: int = 0
    batch: int = 1
    #: The tiling of one constituent GEMM (stream-pipeline input).
    plan: "TilingPlan | None" = None
    #: Sequential same-plan repetitions (1 for batched, ``G`` for grouped).
    groups: int = 1


@dataclass
class TilingPlan:
    """Derived tiling quantities for a GEMM on a given array."""

    m: int
    k: int
    n: int
    k_chunks: int
    n_tiles: int
    #: Row counts of the M-passes a bounded accumulator FIFO forces: every
    #: pass streams at most ``acc_fifo_depth`` rows and re-loads every
    #: weight tile.  ``(m,)`` when the FIFO is sized to the job.
    m_passes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.m_passes:
            self.m_passes = (self.m,)

    @property
    def tiles(self) -> int:
        """Weight tiles loaded per M-pass."""
        return self.k_chunks * self.n_tiles

    @property
    def total_tile_loads(self) -> int:
        """Weight tiles loaded over all M-passes."""
        return self.tiles * len(self.m_passes)


def chunk_sizes(total: int, step: int) -> list[int]:
    """Sizes of consecutive chunks covering ``total`` in steps of ``step``."""
    sizes = [step] * (total // step)
    if total % step:
        sizes.append(total % step)
    return sizes


def plan_tiling(config: AcceleratorConfig, m: int, k: int, n: int) -> TilingPlan:
    """Tile a GEMM over the array: K across rows, N across columns.

    A fixed ``config.acc_fifo_depth`` additionally tiles M: one column
    FIFO can only hold that many pending partial sums, so longer streams
    split into M-passes that each re-load the full weight tile sequence.
    """
    if min(m, k, n) < 1:
        raise MappingError("GEMM dimensions must be positive")
    depth = config.acc_fifo_depth
    return TilingPlan(
        m=m,
        k=k,
        n=n,
        k_chunks=math.ceil(k / config.rows),
        n_tiles=math.ceil(n / config.cols),
        m_passes=tuple(chunk_sizes(m, depth)) if depth else (m,),
    )


def gemm_cycles(
    config: AcceleratorConfig, m: int, k: int, n: int, overlap: bool | None = None
) -> dict[str, int]:
    """Closed-form cycle accounting for one GEMM.

    Loading a tile whose K-chunk occupies ``r`` rows costs ``r + 1`` cycles
    (one shift per active row plus the latch edge); streaming costs ``M``
    cycles per tile plus one exposed array fill/drain of ``R + C - 1``
    cycles.  With double-buffering (``overlap``) each load hides under the
    previous tile's stream, exposing only ``max(0, load - M)``; without it,
    every load stalls the array.  A fixed ``config.acc_fifo_depth`` splits
    the stream into M-passes of at most that many rows, each pass paying
    its own tile loads and fill/drain (the cost a bounded column FIFO
    imposes on large batches).  Returns ``total``, ``compute``,
    ``weight_stall`` and ``fill_drain`` entries.  ``overlap=None`` uses the
    configuration's double-buffering setting.
    """
    if overlap is None:
        overlap = config.weight_double_buffer
    plan = plan_tiling(config, m, k, n)
    rows, cols = config.rows, config.cols
    loads = [size + 1 for size in chunk_sizes(k, rows)] * plan.n_tiles
    compute = 0
    stall = 0
    fill_drain = 0
    for pass_m in plan.m_passes:
        compute += plan.tiles * pass_m
        if overlap:
            # The first load is fully exposed; later loads hide under the
            # previous tile's stream.  One array fill/drain is exposed at
            # the end of each pass (intermediate drains pipeline through
            # the accumulators).
            stall += loads[0] + sum(max(0, load - pass_m) for load in loads[1:])
            fill_drain += rows + cols - 1
        else:
            stall += sum(loads)
            fill_drain += plan.tiles * (rows + cols - 1)
    total = compute + stall + fill_drain
    return {
        "total": total,
        "compute": compute,
        "weight_stall": stall,
        "fill_drain": fill_drain,
    }


def batched_gemm_cycles(
    config: AcceleratorConfig,
    batch: int,
    m: int,
    k: int,
    n: int,
    overlap: bool | None = None,
) -> dict[str, int]:
    """Closed-form cycles for a ``B``-image batched GEMM.

    The batch stacks into a single ``(B*M, K)`` stream per weight tile, so
    the accounting is exactly :func:`gemm_cycles` with ``M' = B * M`` —
    tile loads and fill/drain amortize over the whole batch.
    """
    if batch < 1:
        raise MappingError("batch size must be positive")
    return gemm_cycles(config, batch * m, k, n, overlap=overlap)


class CapsAccAccelerator:
    """The complete accelerator: array, accumulators, buffers, activation."""

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        formats: QuantizedFormats | None = None,
    ) -> None:
        self.config = config if config is not None else AcceleratorConfig()
        self.formats = formats if formats is not None else QuantizedFormats()
        self.activation = ActivationUnit(self.formats)
        self.data_buffer = Buffer(
            "data_buffer",
            self.config.data_buffer_kb,
            self.config.data_bits,
            self.config.data_bus_words,
        )
        self.weight_buffer = Buffer(
            "weight_buffer",
            self.config.weight_buffer_kb,
            self.config.weight_bits,
            self.config.weight_bus_words,
        )
        self.routing_buffer = Buffer(
            "routing_buffer",
            self.config.routing_buffer_kb,
            self.config.data_bits,
            self.config.data_bus_words,
        )
        self.weight_memory = MemoryModel("weight_memory", self.config.onchip_memory_mb)
        self.data_memory = MemoryModel("data_memory", self.config.onchip_memory_mb)

    # ---- GEMM execution ------------------------------------------------------

    def run_gemm(self, job: GemmJob, engine: str = "fast") -> GemmResult:
        """Execute a GEMM job; returns accumulator-format results and stats."""
        data = np.asarray(job.data, dtype=np.int64)
        weights = np.asarray(job.weights, dtype=np.int64)
        if data.ndim != 2 or weights.ndim != 2 or data.shape[1] != weights.shape[0]:
            raise ShapeError(
                f"GEMM shapes inconsistent: data {data.shape}, weights {weights.shape}"
            )
        m, k = data.shape
        n = weights.shape[1]
        plan = plan_tiling(self.config, m, k, n)
        if engine == "fast":
            acc = chunked_saturating_matmul(data, weights, job.acc_fmt, self.config.rows)
        elif engine == "stepped":
            acc = self._stepped_gemm(
                data, weights, job.data_fmt, job.weight_fmt, job.acc_fmt, plan
            )
        else:
            raise MappingError(f"unknown engine {engine!r}")
        stats = self._account(plan, job.data_source, job.weight_source)
        overlapped = gemm_cycles(self.config, m, k, n, overlap=True)["total"]
        return GemmResult(acc=acc, stats=stats, overlapped_cycles=overlapped, plan=plan)

    def run_batched_gemm(
        self, job: BatchedGemmJob, engine: str = "fast"
    ) -> BatchedGemmResult:
        """Execute ``B`` images against one weight matrix as a stacked stream.

        The ``(B, M, K)`` activations become one ``(B*M, K)`` stream per
        weight tile, so the cycle accounting — and the stepped execution —
        is exactly a single GEMM with ``M' = B*M``: tile loads are paid
        once per batch.  Returns per-image results of shape ``(B, M, N)``.

        With the default ``acc_fifo_depth=None`` the accumulator FIFO is
        sized to the job (``B*M`` pending partial sums per column); a
        fixed depth caps it, M-tiling the stacked stream into passes that
        each re-load the weight tiles (accounted by :func:`gemm_cycles`
        and executed pass by pass on the stepped engine).
        """
        data = np.asarray(job.data, dtype=np.int64)
        weights = np.asarray(job.weights, dtype=np.int64)
        if data.ndim != 3 or weights.ndim != 2 or data.shape[2] != weights.shape[0]:
            raise ShapeError(
                f"batched GEMM shapes inconsistent: data {data.shape},"
                f" weights {weights.shape}"
            )
        batch, m, k = data.shape
        n = weights.shape[1]
        stacked = data.reshape(batch * m, k)
        plan = plan_tiling(self.config, batch * m, k, n)
        if engine == "fast":
            acc = chunked_saturating_matmul(
                stacked, weights, job.acc_fmt, self.config.rows
            )
        elif engine == "stepped":
            acc = self._stepped_gemm(
                stacked, weights, job.data_fmt, job.weight_fmt, job.acc_fmt, plan
            )
        else:
            raise MappingError(f"unknown engine {engine!r}")
        stats = self._account(plan, job.data_source, job.weight_source)
        overlapped = batched_gemm_cycles(
            self.config, batch, m, k, n, overlap=True
        )["total"]
        return BatchedGemmResult(
            acc=acc.reshape(batch, m, n),
            stats=stats,
            overlapped_cycles=overlapped,
            batch=batch,
            plan=plan,
        )

    def run_grouped_gemm(
        self, job: GroupedGemmJob, engine: str = "fast"
    ) -> BatchedGemmResult:
        """Execute ``G`` independent same-shape GEMMs back to back.

        Results are bit-identical to ``G`` separate :meth:`run_gemm` calls
        and the accounting is their exact sequential sum; the fast engine
        computes the whole group with one vectorized call per K-chunk.
        """
        data = np.asarray(job.data, dtype=np.int64)
        weights = np.asarray(job.weights, dtype=np.int64)
        if (
            data.ndim != 3
            or weights.ndim != 3
            or data.shape[0] != weights.shape[0]
            or data.shape[2] != weights.shape[1]
        ):
            raise ShapeError(
                f"grouped GEMM shapes inconsistent: data {data.shape},"
                f" weights {weights.shape}"
            )
        groups, m, k = data.shape
        n = weights.shape[2]
        plan = plan_tiling(self.config, m, k, n)
        if engine == "fast":
            acc = chunked_saturating_matmul(data, weights, job.acc_fmt, self.config.rows)
        elif engine == "stepped":
            acc = np.stack(
                [
                    self._stepped_gemm(
                        data[g],
                        weights[g],
                        job.data_fmt,
                        job.weight_fmt,
                        job.acc_fmt,
                        plan,
                    )
                    for g in range(groups)
                ]
            )
        else:
            raise MappingError(f"unknown engine {engine!r}")
        stats = self._account(plan, job.data_source, job.weight_source, count=groups)
        overlapped = groups * gemm_cycles(self.config, m, k, n, overlap=True)["total"]
        return BatchedGemmResult(
            acc=acc,
            stats=stats,
            overlapped_cycles=overlapped,
            batch=groups,
            plan=plan,
            groups=groups,
        )

    def _stepped_gemm(
        self,
        data: np.ndarray,
        weights: np.ndarray,
        data_fmt: QFormat,
        weight_fmt: QFormat,
        acc_fmt: QFormat,
        plan: TilingPlan,
    ) -> np.ndarray:
        """Clock-edge-accurate execution on the systolic array.

        A bounded accumulator FIFO runs the plan's M-passes back to back;
        row results are independent, so the output is bit-identical to a
        single job-sized pass.
        """
        config = self.config
        rows, cols = config.rows, config.cols
        array = SystolicArray(config, data_fmt, weight_fmt, acc_fmt)
        depth = config.acc_fifo_depth or max(plan.m, 1)
        acc_bank = AccumulatorBank(cols, depth=depth, acc_fmt=acc_fmt)
        result = np.zeros((plan.m, plan.n), dtype=np.int64)
        m_lo = 0
        for pass_m in plan.m_passes:
            m_hi = m_lo + pass_m
            for n_tile in range(plan.n_tiles):
                n_lo = n_tile * cols
                n_hi = min(n_lo + cols, plan.n)
                for chunk in range(plan.k_chunks):
                    k_lo = chunk * rows
                    k_hi = min(k_lo + rows, plan.k)
                    tile = np.zeros((rows, cols), dtype=np.int64)
                    tile[: k_hi - k_lo, : n_hi - n_lo] = weights[k_lo:k_hi, n_lo:n_hi]
                    array.load_weights(tile, active_rows=k_hi - k_lo)
                    stream = np.zeros((pass_m, rows), dtype=np.int64)
                    stream[:, : k_hi - k_lo] = data[m_lo:m_hi, k_lo:k_hi]
                    tile_out = array.run_tile(stream)
                    acc_bank.accumulate(tile_out.psums, first_chunk=(chunk == 0))
                result[m_lo:m_hi, n_lo:n_hi] = acc_bank.drain()[:, : n_hi - n_lo]
            m_lo = m_hi
        return result

    def _account(
        self,
        plan: TilingPlan,
        data_source: str,
        weight_source: str,
        count: int = 1,
    ) -> CycleStats:
        """Cycle/access accounting shared by all engines (sequential model).

        ``count`` repeats the whole accounting for grouped jobs — ``count``
        identical-shape GEMMs executed back to back, each paying its own
        weight loads.
        """
        config = self.config
        cycles = gemm_cycles(config, plan.m, plan.k, plan.n, overlap=False)
        stats = CycleStats(
            total_cycles=cycles["total"] * count,
            compute_cycles=cycles["compute"] * count,
            weight_stall_cycles=cycles["weight_stall"] * count,
            fill_drain_cycles=cycles["fill_drain"] * count,
            mac_count=plan.m * plan.k * plan.n * count,
        )
        # Weight traffic: every tile pass loads its (actual) weight words,
        # once per M-pass when a bounded FIFO forces re-streaming.
        weight_words = plan.k * plan.n * len(plan.m_passes) * count
        # Data traffic: the full (M, K) operand streams once per N-tile.
        data_words = plan.m * plan.k * plan.n_tiles * count
        if weight_source != "feedback":
            stats.add_access(f"{weight_source}.read", weight_words)
            self._buffer(weight_source).reads += weight_words
        if data_source != "feedback":
            stats.add_access(f"{data_source}.read", data_words)
            self._buffer(data_source).reads += data_words
        stats.add_access("accumulator.write", plan.m * plan.n * plan.k_chunks * count)
        return stats

    def _buffer(self, name: str) -> Buffer:
        buffers = {
            "data_buffer": self.data_buffer,
            "weight_buffer": self.weight_buffer,
            "routing_buffer": self.routing_buffer,
        }
        if name not in buffers:
            raise MappingError(f"unknown buffer {name!r}")
        return buffers[name]

    def reset_counters(self) -> None:
        """Zero all buffer access counters."""
        for buffer in (self.data_buffer, self.weight_buffer, self.routing_buffer):
            buffer.reset_counters()
