"""Buffers and on-chip memories with bandwidth limits and access counting.

The paper's architecture (Fig 10) places three buffers between the on-chip
memories and the datapath: the Data Buffer (left edge of the array), the
Weight Buffer (top edge) and the Routing Buffer (coupling coefficients and
capsule state during routing).  Buffers avoid repeated memory reads — the
data-reuse theme of the paper — so the simulator counts every word moved
per buffer; the synthesis model converts counts into dynamic energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class Buffer:
    """An on-chip buffer with a fixed per-cycle word bandwidth."""

    name: str
    size_kb: float
    word_bits: int
    bandwidth_words: int
    reads: int = 0
    writes: int = 0

    @property
    def capacity_words(self) -> int:
        """Number of words the buffer can hold."""
        return int(self.size_kb * 1024 * 8 // self.word_bits)

    def read_cycles(self, words: int) -> int:
        """Cycles to stream ``words`` out at the configured bandwidth."""
        self._check(words)
        self.reads += words
        return math.ceil(words / self.bandwidth_words)

    def write_cycles(self, words: int) -> int:
        """Cycles to stream ``words`` in at the configured bandwidth."""
        self._check(words)
        self.writes += words
        return math.ceil(words / self.bandwidth_words)

    def _check(self, words: int) -> None:
        if words < 0:
            raise SimulationError(f"negative word count on buffer {self.name}")

    def reset_counters(self) -> None:
        """Zero the access counters."""
        self.reads = 0
        self.writes = 0


@dataclass
class MemoryModel:
    """On-chip weight/data memory (8 MB in the paper's instance).

    Only traffic is tracked; the latency of memory-to-buffer transfers is
    assumed hidden behind compute by the control unit's prefetching, which
    is the design intent the paper states for the buffers.
    """

    name: str
    size_mb: float
    reads: int = 0
    writes: int = 0
    #: Traffic per named consumer, for reports.
    traffic: dict = field(default_factory=dict)

    @property
    def capacity_bytes(self) -> int:
        """Capacity in bytes."""
        return int(self.size_mb * 1024 * 1024)

    def read(self, words: int, consumer: str = "datapath") -> None:
        """Record a read of ``words`` 8-bit words."""
        self.reads += words
        self.traffic[consumer] = self.traffic.get(consumer, 0) + words

    def write(self, words: int, consumer: str = "datapath") -> None:
        """Record a write of ``words`` 8-bit words."""
        self.writes += words
        self.traffic[consumer] = self.traffic.get(consumer, 0) + words

    def fits(self, total_bytes: int) -> bool:
        """Whether ``total_bytes`` fits in the memory."""
        return total_bytes <= self.capacity_bytes
