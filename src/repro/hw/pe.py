"""Scalar model of one processing element (paper Fig 11b).

A PE has three inputs (Data from the left, Weight and Partial sum from the
top) and three outputs (Data to the right, Weight and Partial sum to the
bottom), plus four internal registers:

* ``data_reg`` — synchronizes the horizontal data transfer,
* ``weight1_reg`` — synchronizes the vertical weight shift,
* ``weight2_reg`` — holds the stationary weight used by the multiplier
  (the data-reuse register: convolution reuses the held filter across many
  inputs, and loading the next tile can overlap with compute),
* ``psum_reg`` — stores the partial sum before passing it down.

Every cycle the PE computes ``psum_out = psum_in + data_reg * weight2_reg``
with an 8x8-bit multiplier and a 25-bit saturating adder.

This scalar class exists as an executable specification; the vectorized
:class:`repro.hw.systolic.SystolicArray` implements identical semantics for
the whole grid and is tested for exact equivalence against a grid of these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fixedpoint.formats import QFormat


def _saturate(value: int, fmt: QFormat) -> int:
    if value > fmt.raw_max:
        return fmt.raw_max
    if value < fmt.raw_min:
        return fmt.raw_min
    return value


@dataclass
class PEOutputs:
    """Values a PE presents to its neighbours during one cycle."""

    data_out: int
    weight_out: int
    psum_out: int


class ProcessingElement:
    """One systolic processing element with bit-accurate arithmetic."""

    def __init__(
        self,
        data_fmt: QFormat,
        weight_fmt: QFormat,
        acc_fmt: QFormat,
    ) -> None:
        self.data_fmt = data_fmt
        self.weight_fmt = weight_fmt
        self.acc_fmt = acc_fmt
        self.data_reg = 0
        self.weight1_reg = 0
        self.weight2_reg = 0
        self.psum_reg = 0

    def step(
        self,
        data_in: int,
        weight_in: int,
        psum_in: int,
        latch_weight: bool = False,
    ) -> PEOutputs:
        """Advance one clock edge.

        The returned outputs are the *register* values after the edge, which
        neighbouring PEs consume on the next cycle.  ``latch_weight`` copies
        the shift register (``weight1``) into the hold register (``weight2``)
        on this edge, activating a freshly loaded weight tile.
        """
        product = self.data_reg * self.weight2_reg
        new_psum = _saturate(psum_in + product, self.acc_fmt)
        new_data = _saturate(data_in, self.data_fmt)
        new_weight1 = _saturate(weight_in, self.weight_fmt)
        new_weight2 = self.weight1_reg if latch_weight else self.weight2_reg
        self.psum_reg = new_psum
        self.data_reg = new_data
        self.weight1_reg = new_weight1
        self.weight2_reg = new_weight2
        return PEOutputs(
            data_out=self.data_reg,
            weight_out=self.weight1_reg,
            psum_out=self.psum_reg,
        )

    def reset(self) -> None:
        """Clear all registers."""
        self.data_reg = 0
        self.weight1_reg = 0
        self.weight2_reg = 0
        self.psum_reg = 0
