"""Vectorized cycle-stepped systolic array (paper Fig 11a).

The array is a grid of ``rows x cols`` processing elements.  Data flows
left-to-right, weights and partial sums top-to-bottom.  The implementation
keeps the four register planes as numpy arrays and advances all PEs on a
shared clock edge with semantics identical to the scalar
:class:`repro.hw.pe.ProcessingElement` (tested for exact equivalence).

The convenience method :meth:`SystolicArray.run_tile` executes one
weight-stationary GEMM tile pass: it streams ``M`` skewed data vectors and
returns the ``M x cols`` partial products observed at the bottom edge, with
the exact cycle count consumed.  The analytical model in
:mod:`repro.perf.cycles` reproduces these counts closed-form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, SimulationError
from repro.fixedpoint.formats import QFormat
from repro.hw.config import AcceleratorConfig


@dataclass
class TileResult:
    """Output of one weight-stationary tile pass."""

    #: Partial sums per (data vector, column), shape ``(M, cols)``.
    psums: np.ndarray
    #: Cycles consumed by the pass (streaming + skew drain).
    cycles: int


class SystolicArray:
    """Bit-accurate systolic array with weight-stationary dataflow."""

    def __init__(
        self,
        config: AcceleratorConfig,
        data_fmt: QFormat,
        weight_fmt: QFormat,
        acc_fmt: QFormat,
    ) -> None:
        self.config = config
        self.data_fmt = data_fmt
        self.weight_fmt = weight_fmt
        self.acc_fmt = acc_fmt
        rows, cols = config.rows, config.cols
        self.data = np.zeros((rows, cols), dtype=np.int64)
        self.psum = np.zeros((rows, cols), dtype=np.int64)
        self.weight_shift = np.zeros((rows, cols), dtype=np.int64)
        self.weight_hold = np.zeros((rows, cols), dtype=np.int64)
        self.cycle = 0

    # ---- clocking ------------------------------------------------------------

    def reset(self) -> None:
        """Clear all register planes and the cycle counter."""
        for plane in (self.data, self.psum, self.weight_shift, self.weight_hold):
            plane.fill(0)
        self.cycle = 0

    def step(
        self,
        data_in: np.ndarray | None = None,
        weight_in: np.ndarray | None = None,
        latch_weights: bool = False,
    ) -> np.ndarray:
        """Advance one clock edge; returns the bottom-edge partial sums.

        ``data_in`` has one word per row (left edge), ``weight_in`` one word
        per column (top edge); ``None`` feeds zeros.  The returned vector is
        the new contents of the bottom psum registers (one per column).
        """
        rows, cols = self.config.rows, self.config.cols
        data_in = self._edge_vector(data_in, rows, self.data_fmt, "data_in")
        weight_in = self._edge_vector(weight_in, cols, self.weight_fmt, "weight_in")

        # Partial sums entering each row: zero at the top, the previous
        # cycle's psum register of the row above elsewhere.
        psum_in = np.vstack([np.zeros((1, cols), dtype=np.int64), self.psum[:-1]])
        mac = psum_in + self.data * self.weight_hold
        np.clip(mac, self.acc_fmt.raw_min, self.acc_fmt.raw_max, out=mac)

        new_data = np.hstack([data_in[:, np.newaxis], self.data[:, :-1]])
        new_weight_shift = np.vstack([weight_in[np.newaxis, :], self.weight_shift[:-1]])
        if latch_weights:
            self.weight_hold = self.weight_shift.copy()
        self.psum = mac
        self.data = new_data
        self.weight_shift = new_weight_shift
        self.cycle += 1
        return self.psum[-1].copy()

    def _edge_vector(
        self, values: np.ndarray | None, length: int, fmt: QFormat, name: str
    ) -> np.ndarray:
        if values is None:
            return np.zeros(length, dtype=np.int64)
        arr = np.asarray(values, dtype=np.int64)
        if arr.shape != (length,):
            raise ShapeError(f"{name} must have shape ({length},), got {arr.shape}")
        return np.clip(arr, fmt.raw_min, fmt.raw_max)

    # ---- tile-level operations -----------------------------------------------

    def load_weights(self, tile: np.ndarray, active_rows: int | None = None) -> int:
        """Shift a weight tile in from the top and latch it.

        Row ``r`` of ``tile`` ends up in array row ``r``, so the *last* tile
        row is pushed first.  When the tile only occupies its first
        ``active_rows`` rows (a partial K-chunk), only those rows are
        shifted in — the remaining shift registers already hold zeros,
        flushed by the zero-fed cycles of the previous tile pass (every
        pass lasts at least ``rows`` cycles).  Returns the cycles consumed
        (``active_rows`` shifts plus one latch edge).  With double-buffering
        the caller may overlap these cycles with compute; that accounting
        lives in the executor.
        """
        rows, cols = self.config.rows, self.config.cols
        if tile.shape != (rows, cols):
            raise ShapeError(f"weight tile must be {rows}x{cols}, got {tile.shape}")
        if active_rows is None:
            active_rows = rows
        if not 1 <= active_rows <= rows:
            raise ShapeError(f"active_rows must be in [1, {rows}], got {active_rows}")
        if np.any(tile[active_rows:]):
            raise ShapeError("tile rows beyond active_rows must be zero")
        for row in range(active_rows - 1, -1, -1):
            self.step(weight_in=tile[row])
        self.step(latch_weights=True)
        return active_rows + 1

    def run_tile(self, data_vectors: np.ndarray, flush: bool = True) -> TileResult:
        """Stream ``M`` data vectors through the latched weight tile.

        ``data_vectors`` has shape ``(M, rows)``: vector ``m`` carries the
        ``rows`` contraction operands of output ``m``.  The stream is skewed
        internally (row ``r`` is presented ``r`` cycles after row 0).  The
        result contains, for every vector ``m`` and column ``c``, the inner
        product against the held column weights — bit-exact including
        25-bit saturation order.
        """
        rows, cols = self.config.rows, self.config.cols
        vectors = np.asarray(data_vectors, dtype=np.int64)
        if vectors.ndim != 2 or vectors.shape[1] != rows:
            raise ShapeError(
                f"data vectors must be (M, {rows}), got {vectors.shape}"
            )
        num_vectors = vectors.shape[0]
        # Output m leaves column c at local step m + rows + c (0-indexed),
        # so the last output appears at step (M-1) + rows + (cols-1) and a
        # full pass takes M + rows + cols - 1 steps.
        total_steps = num_vectors + rows + cols - 1
        outputs = np.zeros((num_vectors, cols), dtype=np.int64)
        start_cycle = self.cycle
        for t in range(total_steps):
            data_in = np.zeros(rows, dtype=np.int64)
            for row in range(rows):
                vector_index = t - row
                if 0 <= vector_index < num_vectors:
                    data_in[row] = vectors[vector_index, row]
            bottom = self.step(data_in=data_in)
            for col in range(cols):
                vector_index = t - rows - col
                if 0 <= vector_index < num_vectors:
                    outputs[vector_index, col] = bottom[col]
        if not flush:
            raise SimulationError("non-flushing tile passes are not supported")
        return TileResult(psums=outputs, cycles=self.cycle - start_cycle)

    def compute_tile_reference(self, tile: np.ndarray, data_vectors: np.ndarray) -> np.ndarray:
        """Pure-numpy expected result of :meth:`run_tile` (for tests)."""
        vectors = np.asarray(data_vectors, dtype=np.int64)
        products = vectors @ np.asarray(tile, dtype=np.int64)
        return np.clip(products, self.acc_fmt.raw_min, self.acc_fmt.raw_max)
