"""Cycle and access statistics collected by the simulator.

Every executor returns a :class:`CycleStats`; stats compose with ``+`` so a
layer is the sum of its GEMM tiles and a network is the sum of its layers.
Buffer access counts feed the dynamic-power estimate of the synthesis model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CycleStats:
    """Cycle breakdown and event counters for a simulated stage."""

    #: Total cycles including every overlap-adjusted overhead.
    total_cycles: int = 0
    #: Cycles in which the array was streaming useful data.
    compute_cycles: int = 0
    #: Cycles stalled waiting for weight loads (zero with double-buffering
    #: whenever the load fits under the compute time).
    weight_stall_cycles: int = 0
    #: Pipeline fill/drain cycles (array skew and accumulator drain).
    fill_drain_cycles: int = 0
    #: Cycles spent in the activation unit beyond GEMM overlap.
    activation_cycles: int = 0
    #: Multiply-accumulate operations actually performed on useful data.
    mac_count: int = 0
    #: Buffer/memory traffic in words, keyed by ``"<buffer>.<read|write>"``.
    accesses: dict[str, int] = field(default_factory=dict)

    def add_access(self, key: str, words: int) -> None:
        """Record ``words`` of traffic on an access category."""
        self.accesses[key] = self.accesses.get(key, 0) + int(words)

    def __add__(self, other: "CycleStats") -> "CycleStats":
        merged = dict(self.accesses)
        for key, value in other.accesses.items():
            merged[key] = merged.get(key, 0) + value
        return CycleStats(
            total_cycles=self.total_cycles + other.total_cycles,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            weight_stall_cycles=self.weight_stall_cycles + other.weight_stall_cycles,
            fill_drain_cycles=self.fill_drain_cycles + other.fill_drain_cycles,
            activation_cycles=self.activation_cycles + other.activation_cycles,
            mac_count=self.mac_count + other.mac_count,
            accesses=merged,
        )

    def utilization(self, num_pes: int) -> float:
        """Achieved MACs per PE-cycle (1.0 = every PE busy every cycle)."""
        if self.total_cycles == 0:
            return 0.0
        return self.mac_count / (self.total_cycles * num_pes)

    def time_us(self, clock_mhz: float) -> float:
        """Wall-clock microseconds at the given clock."""
        return self.total_cycles / clock_mhz

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.total_cycles} cycles"
            f" (compute {self.compute_cycles},"
            f" stalls {self.weight_stall_cycles},"
            f" fill/drain {self.fill_drain_cycles},"
            f" activation {self.activation_cycles});"
            f" {self.mac_count} MACs"
        )
