"""Stream-level cross-batch pipeline timing model.

The batched engine (:class:`~repro.hw.scheduler.BatchScheduler`) drains the
array at every batch boundary: each batch pays its own cold conv1 weight
load, and the array idles through the routing phase's long activation
passes.  This module models the *stream* schedule that removes both
drains — the control-unit upgrade the paper's data-reuse architecture
makes possible:

* **Weight prestaging** — the Weight2 staging register (paper Fig 11b)
  generalizes to a small prestage FIFO of ``prestage_depth`` tiles
  (default :data:`DEFAULT_PRESTAGE_DEPTH`; depth 1 *is* the single
  Weight2 register).  Loads stream through the weight port in issue
  order and hide under earlier tiles' streams.  The stream schedule is
  static (shapes fix the tile order), so the control unit always knows
  which tiles to prestage — across job, layer, and *batch* boundaries,
  not just inside one GEMM.  A 16x16 8-bit tile is 256 bytes, so the
  default four-deep FIFO adds ~1 KB of staging storage.
* **Cross-batch overlap** — up to ``window`` batches are in flight.  Each
  batch's stages still execute in their serial dependency order, but the
  PE array is a shared resource: while batch *i* sits in an activation
  pass (squash / softmax run in the per-column activation units, paper
  Fig 11d), the array streams batch *i+1*'s convolution tiles.  At the
  batch boundary, batch *i+1*'s conv1 tiles prestage under batch *i*'s
  routing tail, so steady-state throughput is bounded by the busiest
  resource — ``max(load, compute)``-style — instead of their sum.

Three resources are modeled:

* the **PE array** (tile streams plus the exposed fill/drain of each
  accumulator M-pass — the bounded ``acc_fifo_depth`` pass structure is
  preserved tile for tile);
* the **weight port** (tile loads; one load in flight, and at most one
  tile prestaged ahead — the single Weight2 register);
* the **activation pipeline** (squash/softmax/ReLU passes, shared by the
  in-flight batches).

Dynamically produced weights — routing coefficients and squashed outputs
on the weight port — cannot be prestaged before their producer finishes;
those loads are *constrained* to the producing stage's completion.

Timing is memoized at two levels, because design-space sweeps and long
serving runs replay the same shapes thousands of times: expanded op
timelines are cached per ``(config, tiling plan, groups, weight source,
layer)`` (:func:`job_ops` is pure in those arguments), and whole stream
schedules are cached per ``(op-timeline sequence, images, window,
prestage depth)`` through :func:`cached_stream_timing`.  Cached results
are the *same* objects the first computation produced, so memoized
timelines are bit-identical to cold ones by construction (asserted in
tests); :func:`clear_timeline_caches` resets both caches.

Timing is computed by a deterministic list scheduler.  Activation passes
advance each batch's own serial chain (the per-column activation units
are far from saturated — tens of thousands of cycles per ~900k-cycle
batch — so cross-batch unit contention is neglected).  Tile grants
arbitrate by *array efficiency*: each candidate tile is scored by the
fraction of array-busy cycles it would add over the idle it would
expose, and the most efficient tile wins (the older batch on ties).
This is the policy a static-schedule control unit would compile: in
array-bound phases it degenerates to strict older-batch priority
(preserving the software-pipeline offset between in-flight batches); in
the weight-port-bound ClassCaps FC phase — nine load cycles per stream
cycle — it interleaves the younger batch's compute-dense convolution
tiles into the port stream instead of letting the array starve behind
one batch's FC loads.  Only *timing* lives here; results always come
from the engines and are bit-identical to the non-pipelined scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig

#: Default number of batches kept in flight.  Two is the natural choice
#: for the paper's double-buffered datapath: one batch draining through
#: routing while the next streams its convolutions.
DEFAULT_WINDOW = 2

#: Default depth of the weight prestage FIFO, in tiles.  Depth 1 is the
#: paper's single Weight2 register; four tiles (~1 KB for a 16x16 8-bit
#: array) let loads run ahead when the schedule interleaves short-stream
#: tiles of one batch with compute-dense tiles of the next.
DEFAULT_PRESTAGE_DEPTH = 4


@dataclass(frozen=True)
class PipelineOp:
    """One atomic unit of scheduled work.

    ``kind`` is ``"tile"`` (a weight-tile load + its M-pass stream on the
    array) or ``"act"`` (an activation pass in the activation units).
    For tiles, ``load`` occupies the weight port, and ``cycles`` —
    the stream plus any exposed fill/drain — occupies the array.  For
    activation work, ``cycles`` occupies the activation pipeline and
    ``load`` is zero.  ``constrained`` marks tile loads whose weights are
    produced by the immediately preceding stage (routing coefficients,
    squashed outputs): they cannot be prestaged before that stage ends.
    """

    kind: str
    cycles: int
    load: int = 0
    constrained: bool = False
    layer: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("tile", "act"):
            raise ConfigError(f"unknown pipeline op kind {self.kind!r}")
        if self.cycles < 0 or self.load < 0:
            raise ConfigError("pipeline op cycles must be non-negative")


#: Expanded op timelines per (config, plan, groups, weight source, layer).
#: ``job_ops`` is pure in those arguments, so the cache is exact; entries
#: are shared lists — callers read (``extend``) but never mutate them.
_JOB_OPS_CACHE: dict[tuple, list[PipelineOp]] = {}

#: Stream schedules per (op-timeline tokens, images, window, prestage).
_STREAM_TIMING_CACHE: dict[tuple, StreamTiming] = {}

#: Identity tokens for op-timeline lists: ``id(ops) -> (token, ops)``.
#: The strong reference pins the list so its id cannot be recycled.
_OPS_TOKENS: dict[int, tuple[int, list]] = {}


def clear_timeline_caches() -> None:
    """Drop every memoized op timeline and stream schedule."""
    _JOB_OPS_CACHE.clear()
    _STREAM_TIMING_CACHE.clear()
    _OPS_TOKENS.clear()


def timeline_cache_stats() -> dict[str, int]:
    """Sizes of the module-level timeline caches (for tests/telemetry)."""
    return {
        "job_ops": len(_JOB_OPS_CACHE),
        "stream_timings": len(_STREAM_TIMING_CACHE),
        "ops_tokens": len(_OPS_TOKENS),
    }


def _ops_token(ops: list[PipelineOp]) -> int:
    """Small identity token for one op-timeline list (registry-pinned)."""
    entry = _OPS_TOKENS.get(id(ops))
    if entry is None or entry[1] is not ops:
        entry = (len(_OPS_TOKENS), ops)
        _OPS_TOKENS[id(ops)] = entry
    return entry[0]


def job_ops(
    config: AcceleratorConfig,
    plan,
    groups: int = 1,
    weight_source: str = "weight_buffer",
    layer: str = "",
) -> list[PipelineOp]:
    """Expand one GEMM job's :class:`~repro.hw.accelerator.TilingPlan`.

    Mirrors :func:`repro.hw.accelerator.gemm_cycles` tile for tile: each
    K-chunk load costs its active rows plus the latch edge, each tile
    streams the M-pass rows, and the last tile of every M-pass carries the
    pass's exposed fill/drain on the array.  Grouped jobs repeat the plan
    ``groups`` times.  Only the job's *first* tile is constrained when its
    weights are dynamically produced (``weight_source`` other than the
    weight buffer): once the producer has finished, every later tile of
    the job is known and prestages normally.

    The expansion is pure in its arguments and repeated for every batch
    of a stream, so results are memoized module-wide; the returned list
    is shared and must not be mutated.
    """
    if groups < 1:
        raise ConfigError("groups must be positive")
    key = (
        config,
        plan.m,
        plan.k,
        plan.n,
        plan.k_chunks,
        plan.n_tiles,
        tuple(plan.m_passes),
        groups,
        weight_source,
        layer,
    )
    cached = _JOB_OPS_CACHE.get(key)
    if cached is None:
        cached = _JOB_OPS_CACHE[key] = _expand_job_ops(
            config, plan, groups, weight_source, layer
        )
    return cached


def _expand_job_ops(
    config: AcceleratorConfig,
    plan,
    groups: int,
    weight_source: str,
    layer: str,
) -> list[PipelineOp]:
    from repro.hw.accelerator import chunk_sizes  # local: avoid cycle

    loads = [size + 1 for size in chunk_sizes(plan.k, config.rows)]
    drain = config.rows + config.cols - 1
    dynamic = weight_source != "weight_buffer"
    ops: list[PipelineOp] = []
    first = True
    for _ in range(groups):
        for pass_m in plan.m_passes:
            for n_tile in range(plan.n_tiles):
                for chunk, load in enumerate(loads):
                    last_of_pass = (
                        n_tile == plan.n_tiles - 1 and chunk == len(loads) - 1
                    )
                    ops.append(
                        PipelineOp(
                            kind="tile",
                            cycles=pass_m + (drain if last_of_pass else 0),
                            load=load,
                            constrained=first and dynamic,
                            layer=layer,
                        )
                    )
                    first = False
    return ops


def activation_op(cycles: int, layer: str = "") -> PipelineOp:
    """An activation (or bulk-transfer) pass outside the PE array."""
    return PipelineOp(kind="act", cycles=cycles, layer=layer)


@dataclass
class BatchTiming:
    """When one batch's work started and finished on the stream timeline."""

    index: int
    images: int
    #: First cycle any resource worked for this batch (a prestaged weight
    #: load may start well before the previous batch finishes).
    start_cycle: int = 0
    #: Cycle the batch's last op completed.
    finish_cycle: int = 0
    #: ``finish - previous batch's finish``: the cycles this batch added
    #: to the stream makespan (the cost a serving system should charge).
    marginal_cycles: int = 0
    #: Aggregate resource demand, for the bound checks.
    array_cycles: int = 0
    port_cycles: int = 0
    act_cycles: int = 0

    def marginal_cycles_per_image(self) -> float:
        """Amortized added cycles per image of this batch."""
        return self.marginal_cycles / self.images


@dataclass
class StreamTiming:
    """Timing of a whole batch stream through the pipelined schedule."""

    batches: list[BatchTiming] = field(default_factory=list)
    window: int = DEFAULT_WINDOW

    @property
    def finish_cycles(self) -> int:
        """Makespan of the whole stream."""
        if not self.batches:
            return 0
        return self.batches[-1].finish_cycle

    @property
    def cold_cycles(self) -> int:
        """Cycles for the first batch, pipeline starting empty."""
        if not self.batches:
            return 0
        return self.batches[0].finish_cycle

    @property
    def steady_marginal_cycles(self) -> int:
        """Steady-state marginal cycles of one batch.

        The first three batches carry the cold fill and the *last*
        batch's marginal is a tail artifact (it keeps the whole array
        once its predecessor retires), so the steady state is the average
        marginal over the settled middle window — an **even** number of
        batches, because on some shapes the settled marginals oscillate
        with period two (the two in-flight batches alternate roles), and
        a single sample would report whichever phase the probe length
        happens to land on.  Streams shorter than six batches fall back
        to the best available single marginal.
        """
        n = len(self.batches)
        if n == 0:
            return 0
        if n < 6:
            batch = self.steady_batch
            return batch.marginal_cycles if batch is not None else 0
        window = (n - 4) & ~1  # largest even count after the 3-batch fill
        settled = self.batches[-1 - window : -1]
        return round(sum(b.marginal_cycles for b in settled) / window)

    @property
    def total_images(self) -> int:
        """Images across every batch of the stream."""
        return sum(batch.images for batch in self.batches)

    @property
    def steady_batch(self) -> BatchTiming | None:
        """The batch anchoring the steady state (short-stream fallback).

        For streams of fewer than three batches the last batch is all
        there is — note its marginal is tail-flattered (no successor
        competes for the array), so short-stream "steady" figures are
        optimistic; probe with five or more batches for the real number.
        """
        if not self.batches:
            return None
        if len(self.batches) < 3:
            return self.batches[-1]
        return self.batches[-2]

    @property
    def converged(self) -> bool:
        """Whether the stream is long enough for a settled steady state."""
        return len(self.batches) >= 6

    def cycles_per_image(self, steady: bool = True) -> float:
        """Steady-state (or whole-stream) amortized cycles per image."""
        if not self.batches:
            return 0.0
        if steady:
            return self.steady_marginal_cycles / self.steady_batch.images
        return self.finish_cycles / self.total_images

    def images_per_second(self, clock_mhz: float, steady: bool = True) -> float:
        """Modeled throughput at the given clock."""
        cycles = self.cycles_per_image(steady)
        if cycles <= 0:
            return 0.0
        return clock_mhz * 1e6 / cycles


@dataclass(frozen=True)
class OpSpan:
    """One scheduled op instance on the stream timeline (for tracing).

    ``start_cycle``/``end_cycle`` are the op's span on its executing
    resource — the PE array for tiles, the activation pipeline for act
    passes.  Tiles additionally carry their weight-port load span
    (``load_start_cycle``/``load_end_cycle``); the gap between load end
    and stream start is prestage slack (the Weight2 FIFO at work).
    """

    batch: int
    op: int
    kind: str
    layer: str
    start_cycle: int
    end_cycle: int
    load_start_cycle: int = 0
    load_end_cycle: int = 0


@dataclass
class _BatchState:
    """Progress cursor of one in-flight batch."""

    index: int
    ops: list[PipelineOp]
    images: int
    cursor: int = 0
    #: When this batch's previous op completed (the serial stage chain).
    ready: int = 0
    start: int | None = None
    array: int = 0
    port: int = 0
    act: int = 0

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.ops)


def simulate_stream(
    per_batch_ops: list[list[PipelineOp]],
    images_per_batch: list[int] | None = None,
    window: int = DEFAULT_WINDOW,
    prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
    op_trace: list[OpSpan] | None = None,
) -> StreamTiming:
    """Run the stream schedule and return per-batch start/finish cycles.

    ``per_batch_ops`` is one op list per batch, in stream order.  Up to
    ``window`` batches are in flight; within a batch ops execute in their
    serial dependency order; across batches, tiles are granted by array
    efficiency and at most ``prestage_depth`` tiles may be loaded ahead
    of the array.  When ``op_trace`` is a list, one :class:`OpSpan` per
    scheduled op is appended to it in grant order (timing is unchanged;
    the memoized :func:`cached_stream_timing` never records).
    """
    if window < 1:
        raise ConfigError("pipeline window must be at least one batch")
    if prestage_depth < 1:
        raise ConfigError("prestage depth must be at least one tile")
    if images_per_batch is None:
        images_per_batch = [1] * len(per_batch_ops)
    if len(images_per_batch) != len(per_batch_ops):
        raise ConfigError("one image count per batch is required")

    pending = [
        _BatchState(index=i, ops=ops, images=images)
        for i, (ops, images) in enumerate(zip(per_batch_ops, images_per_batch))
    ]
    active: list[_BatchState] = []
    finished: list[_BatchState] = []

    port_free = 0  # weight port availability
    array_free = 0  # PE array availability
    # Stream starts of the last ``prestage_depth`` tiles granted to the
    # array: the prestage FIFO holds that many loaded-but-unstreamed
    # tiles, so a new load cannot start before the tile ``depth`` back
    # has latched (depth 1 reproduces the single Weight2 register).
    recent_stream_starts: list[int] = []

    def retire(state: _BatchState) -> None:
        if state.done:
            active.remove(state)
            finished.append(state)

    while pending or active:
        while pending and len(active) < window:
            active.append(pending.pop(0))
        # Activation passes only advance their own batch's serial chain.
        advanced = False
        for state in list(active):
            op = state.ops[state.cursor]
            if op.kind == "act":
                if state.start is None:
                    state.start = state.ready
                if op_trace is not None:
                    op_trace.append(
                        OpSpan(
                            batch=state.index,
                            op=state.cursor,
                            kind="act",
                            layer=op.layer,
                            start_cycle=state.ready,
                            end_cycle=state.ready + op.cycles,
                        )
                    )
                state.ready += op.cycles
                state.act += op.cycles
                state.cursor += 1
                retire(state)
                advanced = True
        if advanced or not active:
            continue
        # Tile arbitration: score each candidate by the array-busy cycles
        # it adds over the idle it would expose, and grant the most
        # efficient tile (older batch on ties).  Integer cross-products
        # keep the comparison exact.
        stage_free = (
            recent_stream_starts[-prestage_depth]
            if len(recent_stream_starts) >= prestage_depth
            else 0
        )
        best = None
        best_start = best_load_start = 0
        best_idle = best_cycles = 0
        for state in active:
            op = state.ops[state.cursor]
            load_start = max(port_free, stage_free)
            if op.constrained:
                load_start = max(load_start, state.ready)
            start = max(array_free, load_start + op.load, state.ready)
            idle = start - array_free
            better = best is None or (
                op.cycles * (best_idle + best_cycles)
                > best_cycles * (idle + op.cycles)
            )
            if better:
                best = state
                best_start, best_load_start = start, load_start
                best_idle, best_cycles = idle, op.cycles
        assert best is not None
        op = best.ops[best.cursor]
        if op_trace is not None:
            op_trace.append(
                OpSpan(
                    batch=best.index,
                    op=best.cursor,
                    kind="tile",
                    layer=op.layer,
                    start_cycle=best_start,
                    end_cycle=best_start + op.cycles,
                    load_start_cycle=best_load_start,
                    load_end_cycle=best_load_start + op.load,
                )
            )
        port_free = best_load_start + op.load
        recent_stream_starts.append(best_start)
        if len(recent_stream_starts) > prestage_depth:
            del recent_stream_starts[: -prestage_depth]
        array_free = best_start + op.cycles
        best.array += op.cycles
        best.port += op.load
        if best.start is None:
            best.start = best_load_start
        best.ready = best_start + op.cycles
        best.cursor += 1
        retire(best)

    # Marginal cycles are each batch's increment of the stream makespan, so
    # they are computed in *finish* order (a small batch overlapped with a
    # large predecessor can complete first); results are listed in stream
    # order.
    finished.sort(key=lambda state: (state.ready, state.index))
    timings: list[BatchTiming] = []
    previous_finish = 0
    for state in finished:
        finish = state.ready
        timings.append(
            BatchTiming(
                index=state.index,
                images=state.images,
                start_cycle=state.start if state.start is not None else 0,
                finish_cycle=finish,
                marginal_cycles=finish - previous_finish,
                array_cycles=state.array,
                port_cycles=state.port,
                act_cycles=state.act,
            )
        )
        previous_finish = finish
    timings.sort(key=lambda timing: timing.index)
    return StreamTiming(batches=timings, window=window)


def cached_stream_timing(
    per_batch_ops: list[list[PipelineOp]],
    images_per_batch: list[int] | None = None,
    window: int = DEFAULT_WINDOW,
    prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
) -> StreamTiming:
    """Memoized :func:`simulate_stream` for repeated identical streams.

    Probe streams (cold / steady-state / pair hand-off) replay the same
    op timelines over and over — across cost-model instances, serving
    runs, and sweep points — so schedules are cached per (op-timeline
    token sequence, image counts, window, prestage depth).  A cache hit
    returns the *same* :class:`StreamTiming` the first simulation
    produced, so memoized timelines are bit-identical by construction;
    callers treat the result as read-only.
    """
    if images_per_batch is None:
        images_per_batch = [1] * len(per_batch_ops)
    key = (
        tuple(_ops_token(ops) for ops in per_batch_ops),
        tuple(images_per_batch),
        window,
        prestage_depth,
    )
    timing = _STREAM_TIMING_CACHE.get(key)
    if timing is None:
        timing = _STREAM_TIMING_CACHE[key] = simulate_stream(
            per_batch_ops,
            images_per_batch,
            window=window,
            prestage_depth=prestage_depth,
        )
    return timing


def stream_op_spans(
    per_batch_ops: list[list[PipelineOp]],
    images_per_batch: list[int] | None = None,
    window: int = DEFAULT_WINDOW,
    prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
) -> tuple[StreamTiming, list[OpSpan]]:
    """Uncached :func:`simulate_stream` run that records per-op spans.

    Used by the observability exporters to render the op-level
    drill-down lane (tile streams, weight-port loads, activation
    passes — the paper's Fig. 11 pipeline).  Deliberately bypasses
    :func:`cached_stream_timing`: recording is rare and the cache must
    keep returning the exact shared objects it memoized.
    """
    spans: list[OpSpan] = []
    timing = simulate_stream(
        per_batch_ops,
        images_per_batch,
        window=window,
        prestage_depth=prestage_depth,
        op_trace=spans,
    )
    return timing, spans
