"""On-chip weight-memory layout (the 8 MB memory of Table II).

The paper sizes the weight memory at 8 MB from the Table I parameter counts
(Section III-A).  This module makes the layout explicit: a contiguous
region per parameter tensor, with tile-granular address generation for the
weight-buffer prefetches the control unit issues.  It provides the fit
check behind the paper's observation and the address streams that a
memory-traffic-accurate simulation consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.errors import ConfigError, MappingError
from repro.hw.config import AcceleratorConfig


@dataclass(frozen=True)
class MemoryRegion:
    """A contiguous byte region of the on-chip weight memory."""

    name: str
    offset: int
    size_bytes: int

    @property
    def end(self) -> int:
        """First byte after the region."""
        return self.offset + self.size_bytes

    def contains(self, address: int) -> bool:
        """Whether an absolute address falls inside this region."""
        return self.offset <= address < self.end


class WeightMemoryLayout:
    """Packed layout of every weight tensor in the on-chip memory."""

    def __init__(
        self,
        config: CapsNetConfig | None = None,
        accelerator: AcceleratorConfig | None = None,
        bytes_per_weight: int = 1,
        alignment: int = 64,
    ) -> None:
        if alignment < 1 or alignment & (alignment - 1):
            raise ConfigError("alignment must be a power of two")
        self.config = config if config is not None else mnist_capsnet_config()
        self.accelerator = accelerator if accelerator is not None else AcceleratorConfig()
        self.bytes_per_weight = bytes_per_weight
        self.alignment = alignment
        self.regions: dict[str, MemoryRegion] = {}
        self._build()

    def _build(self) -> None:
        cursor = 0
        cfg = self.config
        tensors = [
            ("conv1_w", cfg.conv1.weight_count),
            ("conv1_b", cfg.conv1.bias_count),
            ("primary_w", cfg.primary.weight_count),
            ("primary_b", cfg.primary.bias_count),
            ("classcaps_w", cfg.classcaps_weight_count),
        ]
        for name, count in tensors:
            size = count * self.bytes_per_weight
            self.regions[name] = MemoryRegion(name, cursor, size)
            cursor = self._align(cursor + size)
        self.total_bytes = cursor

    def _align(self, address: int) -> int:
        mask = self.alignment - 1
        return (address + mask) & ~mask

    @property
    def utilization(self) -> float:
        """Fraction of the on-chip memory occupied by weights."""
        capacity = int(self.accelerator.onchip_memory_mb * 1024 * 1024)
        return self.total_bytes / capacity

    def fits(self) -> bool:
        """The paper's Section III-A observation: everything fits in 8 MB."""
        return self.utilization <= 1.0

    def region(self, name: str) -> MemoryRegion:
        """Look up a tensor's region."""
        if name not in self.regions:
            raise MappingError(f"unknown weight tensor {name!r}")
        return self.regions[name]

    def no_overlaps(self) -> bool:
        """Layout invariant: regions are disjoint."""
        ordered = sorted(self.regions.values(), key=lambda region: region.offset)
        for first, second in zip(ordered[:-1], ordered[1:]):
            if first.end > second.offset:
                return False
        return True

    def tile_addresses(self, name: str, tile_bytes: int) -> list[int]:
        """Start addresses of consecutive weight-buffer prefetch tiles.

        The control unit streams a tensor into the weight buffer in
        ``tile_bytes`` chunks; the last tile may be short.
        """
        if tile_bytes < 1:
            raise MappingError("tile size must be positive")
        region = self.region(name)
        return list(range(region.offset, region.end, tile_bytes))

    def prefetch_cycles(self, name: str, words_per_cycle: int | None = None) -> int:
        """Cycles to stream a full tensor from memory into the buffer."""
        if words_per_cycle is None:
            words_per_cycle = self.accelerator.weight_bus_words
        region = self.region(name)
        words = region.size_bytes // self.bytes_per_weight
        return -(-words // words_per_cycle)
