"""Accelerator configuration (paper Table II defaults).

The shipped defaults reproduce the synthesized CapsAcc instance: a 16x16
systolic array at 250 MHz, 8-bit data/weights, 25-bit partial sums, 8 MB of
on-chip memory, and the three buffers between memory and datapath.  Buffer
capacities are not printed in the paper; the defaults are sized from the
Table III area ratios (the data buffer is by far the largest) and are
configurable for the ablation sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class AcceleratorConfig:
    """Static parameters of one CapsAcc instance."""

    rows: int = 16
    cols: int = 16
    clock_mhz: float = 250.0
    data_bits: int = 8
    weight_bits: int = 8
    acc_bits: int = 25
    #: Words per cycle deliverable by the data buffer to the array edge.
    data_bus_words: int = 16
    #: Words per cycle deliverable by the weight buffer to the array top.
    weight_bus_words: int = 16
    #: Weight double-buffering (the Weight2 register of Fig 11b).  When
    #: false, weight loads stall compute (ablation abl-reuse).
    weight_double_buffer: bool = True
    #: Feedback path from activation outputs back to the array inputs
    #: (the multiplexers of Fig 10).  When false, reused operands must
    #: round-trip through the data buffer (costing buffer bandwidth).
    feedback_path: bool = True
    #: Depth of each per-column accumulator FIFO (paper Fig 11c): how many
    #: pending partial sums one column can hold during a K-chunk sequence.
    #: ``None`` sizes the FIFO to the job (the idealized accounting used
    #: for paper calibration); a fixed depth forces streams longer than
    #: the FIFO to M-tile, re-loading every weight tile once per M-pass.
    acc_fifo_depth: int | None = None
    data_buffer_kb: float = 256.0
    routing_buffer_kb: float = 64.0
    weight_buffer_kb: float = 24.0
    onchip_memory_mb: float = 8.0
    voltage_v: float = 1.05
    technology_nm: int = 32

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigError("array dimensions must be positive")
        if self.clock_mhz <= 0:
            raise ConfigError("clock frequency must be positive")
        if min(self.data_bits, self.weight_bits, self.acc_bits) < 2:
            raise ConfigError("bit widths must be at least 2")
        if self.acc_bits < self.data_bits + self.weight_bits:
            raise ConfigError(
                "accumulator must hold a full data x weight product"
            )
        if self.data_bus_words < 1 or self.weight_bus_words < 1:
            raise ConfigError("bus widths must be positive")
        if self.acc_fifo_depth is not None and self.acc_fifo_depth < 1:
            raise ConfigError("accumulator FIFO depth must be positive")

    @property
    def num_pes(self) -> int:
        """Number of processing elements."""
        return self.rows * self.cols

    @property
    def cycle_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e3 / self.clock_mhz

    @property
    def peak_macs_per_second(self) -> float:
        """Peak MAC throughput."""
        return self.num_pes * self.clock_mhz * 1e6

    def cycles_to_us(self, cycles: int | float) -> float:
        """Convert a cycle count to microseconds."""
        return cycles * self.cycle_ns / 1e3

    def cycles_to_ms(self, cycles: int | float) -> float:
        """Convert a cycle count to milliseconds."""
        return cycles * self.cycle_ns / 1e6

    def with_array(self, rows: int, cols: int) -> "AcceleratorConfig":
        """A copy with a different systolic array size (ablations)."""
        return replace(self, rows=rows, cols=cols)

    def without_weight_reuse(self) -> "AcceleratorConfig":
        """A copy with the Weight2 double-buffer removed (ablation)."""
        return replace(self, weight_double_buffer=False)

    def with_fifo_depth(self, depth: int | None) -> "AcceleratorConfig":
        """A copy with a fixed (or re-idealized) accumulator FIFO depth."""
        return replace(self, acc_fifo_depth=depth)


def paper_config() -> AcceleratorConfig:
    """The synthesized configuration of paper Table II."""
    return AcceleratorConfig()
