"""The activation unit (paper Fig 11d-g).

One activation unit sits under each accumulator (one per array column).  It
contains four parallel datapaths — ReLU, norm, squash and softmax — and an
output multiplexer selecting the active one.  The 25-bit accumulator values
are reduced to 8 bits on entry (Section IV-C).

Latencies (paper Section IV-C), for an ``n``-element input array:

========  =====================  =============================
function  latency (cycles)       source
========  =====================  =============================
ReLU      1                      trivial comparator
Norm      n + 1                  square LUT + accumulate + sqrt
Squash    n + 2                  one cycle after the norm
Softmax   2 n                    exp pass + divide pass
========  =====================  =============================

The arithmetic delegates to the golden quantized operators in
:mod:`repro.capsnet.hwops`, so the hardware pipeline and the quantized
reference cannot diverge.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.capsnet.hwops import (
    HardwareLuts,
    QuantizedFormats,
    hw_norm,
    hw_relu,
    hw_softmax,
    hw_squash,
)
from repro.errors import SimulationError
from repro.fixedpoint.arith import requantize
from repro.fixedpoint.formats import QFormat


class ActivationMode(enum.Enum):
    """Selectable activation datapaths (the multiplexer of Fig 11d)."""

    NONE = "none"
    RELU = "relu"
    NORM = "norm"
    SQUASH = "squash"
    SOFTMAX = "softmax"


def activation_latency(mode: ActivationMode, n: int) -> int:
    """Latency in cycles of one activation over an ``n``-element array."""
    if n < 1:
        raise SimulationError("activation arrays must be non-empty")
    if mode is ActivationMode.NONE:
        return 0
    if mode is ActivationMode.RELU:
        return 1
    if mode is ActivationMode.NORM:
        return n + 1
    if mode is ActivationMode.SQUASH:
        return n + 2
    if mode is ActivationMode.SOFTMAX:
        return 2 * n
    raise SimulationError(f"unknown activation mode {mode!r}")


def batched_activation_latency(
    mode: ActivationMode, n: int, groups: int, units: int
) -> int:
    """Cycles to process ``groups`` independent ``n``-element arrays.

    Groups distribute over ``units`` parallel activation units (one per
    array column); each unit pipelines its assigned groups back to back.
    """
    if groups < 0 or units < 1:
        raise SimulationError("invalid activation batch")
    per_unit = math.ceil(groups / units)
    return per_unit * activation_latency(mode, n)


class ActivationUnit:
    """Bit-accurate activation unit shared across all columns.

    The physical design instantiates one unit per column; arrays processed
    here are laid out so that the column dimension is vectorized, and the
    latency helpers account for the per-column parallelism.
    """

    def __init__(self, formats: QuantizedFormats, luts: HardwareLuts | None = None) -> None:
        self.formats = formats
        self.luts = luts if luts is not None else HardwareLuts.build(formats)

    def relu(self, acc_raw: np.ndarray, acc_fmt: QFormat, out_fmt: QFormat) -> np.ndarray:
        """ReLU on accumulator values, reduced to the 8-bit output format."""
        return requantize(hw_relu(acc_raw), acc_fmt, out_fmt)

    def passthrough(
        self, acc_raw: np.ndarray, acc_fmt: QFormat, out_fmt: QFormat
    ) -> np.ndarray:
        """Width reduction without nonlinearity (used by FC / update stages)."""
        return requantize(acc_raw, acc_fmt, out_fmt)

    def norm(self, vec_raw: np.ndarray, in_fmt: QFormat) -> tuple[np.ndarray, np.ndarray]:
        """Norm unit output ``(norm, sum_of_squares)`` over the last axis."""
        return hw_norm(vec_raw, in_fmt, self.luts, self.formats)

    def squash(self, vec_raw: np.ndarray, in_fmt: QFormat) -> np.ndarray:
        """Squash unit output over the last axis of ``vec_raw``."""
        return hw_squash(vec_raw, in_fmt, self.luts, self.formats)

    def softmax(self, logits_raw: np.ndarray, axis: int = -1) -> np.ndarray:
        """Softmax unit output along ``axis``."""
        return hw_softmax(logits_raw, self.luts, self.formats, axis=axis)

    def batched_latency(
        self, mode: ActivationMode, n: int, groups: int, units: int
    ) -> int:
        """See :func:`batched_activation_latency`."""
        return batched_activation_latency(mode, n, groups, units)
