"""Shape-level stage descriptions of every CapsuleNet operation (Fig 12/14).

A :class:`StageShape` captures what the control unit schedules for one
inference stage: the GEMMs executed on the systolic array (dimensions,
repetition count and operand sources), the activation work, and any bulk
buffer transfers.  The performance model turns these into cycles; the
executable lowering in :mod:`repro.mapping.execute` materializes them with
real data.

Mappings reproduced from the paper:

* **Conv1 / PrimaryCaps** (Fig 14a/b, Fig 12a): convolution lowered to a
  weight-stationary GEMM — filters held in the array, input data streamed
  and reused across the filter (the Weight2 register).  ``M`` = output
  positions, ``K`` = input channels x kernel area, ``N`` = output channels.
  The paper's row-by-row traversal (A, B) then channel traversal (C, D)
  fixes the loop order; the accumulator-minimizing variant that finishes
  one output channel before the next is available as
  ``policy="channel_serial"`` (ablation).
* **ClassCaps FC** (Fig 14c): every input capsule has its own ``out_dim x
  in_dim`` matrix per class, so weights cannot be reused across capsules;
  one small GEMM per input capsule with the capsule vector stationary-
  streamed against its 160 weight rows.
* **Routing scenarios** (Fig 12b/c/d): the sum streams predictions from
  the data buffer (first iteration) or the horizontal feedback path
  (later iterations — the paper's data-reuse optimization), with coupling
  coefficients on the weight port from the routing buffer; the update
  reuses predictions via feedback against the capsule outputs; softmax and
  squash run in the activation units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.capsnet.config import CapsNetConfig
from repro.errors import MappingError
from repro.hw.activation import ActivationMode


@dataclass(frozen=True)
class GemmShape:
    """A batch of identical GEMMs executed back to back."""

    m: int
    k: int
    n: int
    count: int = 1
    data_source: str = "data_buffer"
    weight_source: str = "weight_buffer"
    #: Whether the weight operand is shared by every image of a batch.
    #: Shared weights let a batch stack into the ``M`` stream (tile loads
    #: amortize); per-image weights (routing coefficients) replicate the
    #: whole GEMM per image instead.
    weight_shared: bool = True

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n, self.count) < 1:
            raise MappingError("GEMM shape dimensions must be positive")

    @property
    def macs(self) -> int:
        """Useful multiply-accumulates across the batch."""
        return self.m * self.k * self.n * self.count


@dataclass(frozen=True)
class ActivationWork:
    """Activation-unit work: ``groups`` arrays of ``n`` elements.

    ``units`` is the number of activation units that can work in parallel:
    ``None`` means one per array column (element-local operations such as
    ReLU).  Vector operations whose input spans several columns — capsule
    squashes and the routing softmax, whose operand vectors are produced
    across different column accumulators — serialize through a single unit
    (``units=1``), the conservative reading of the paper's per-column
    activation units.
    """

    mode: ActivationMode
    n: int
    groups: int = 1
    units: int | None = None

    def __post_init__(self) -> None:
        if self.n < 1 or self.groups < 1:
            raise MappingError("activation work must be non-empty")
        if self.units is not None and self.units < 1:
            raise MappingError("units must be positive when given")


@dataclass(frozen=True)
class StageShape:
    """One scheduled stage: GEMMs + activations + bulk transfers."""

    name: str
    gemms: tuple[GemmShape, ...] = ()
    activations: tuple[ActivationWork, ...] = ()
    #: Words moved over a buffer port (16 words/cycle) outside GEMM
    #: streaming — e.g. staging predictions into the data buffer.
    transfer_words: int = 0

    @property
    def macs(self) -> int:
        """Total useful MACs in the stage."""
        return sum(shape.macs for shape in self.gemms)


def batch_stage(stage: StageShape, batch: int) -> StageShape:
    """The stage as scheduled for a ``batch``-image mini-batch.

    Weight-shared GEMMs stack the batch into their ``M`` stream (one tile
    load per batch — the batched execution engine's amortization);
    per-image-weight GEMMs repeat ``batch`` times.  Activation work and
    bulk transfers scale linearly with the batch.
    """
    if batch < 1:
        raise MappingError("batch size must be positive")
    if batch == 1:
        return stage
    gemms = tuple(
        replace(shape, m=shape.m * batch)
        if shape.weight_shared
        else replace(shape, count=shape.count * batch)
        for shape in stage.gemms
    )
    activations = tuple(
        replace(work, groups=work.groups * batch) for work in stage.activations
    )
    return StageShape(
        name=stage.name,
        gemms=gemms,
        activations=activations,
        transfer_words=stage.transfer_words * batch,
    )


# ---- layer stages ------------------------------------------------------------


def conv_stage(
    config: CapsNetConfig,
    layer: str,
    policy: str = "channel_parallel",
) -> StageShape:
    """Convolution stage shape for ``"conv1"`` or ``"primarycaps"``.

    ``channel_parallel`` places output channels across array columns (the
    throughput mapping); ``channel_serial`` computes one output channel at
    a time (the paper's accumulator-minimizing traversal, Fig 14b note),
    costing column utilization.
    """
    if layer == "conv1":
        spec = config.conv1
        out_size = config.conv1_out_size
        out_channels = spec.out_channels
        kernel_area = spec.kernel_size**2
        in_channels = spec.in_channels
        activation = ActivationWork(
            ActivationMode.RELU, n=1, groups=out_size**2 * out_channels
        )
    elif layer == "primarycaps":
        spec = config.primary
        out_size = config.primary_out_size
        out_channels = spec.conv_out_channels
        kernel_area = spec.kernel_size**2
        in_channels = spec.in_channels
        activation = ActivationWork(
            ActivationMode.SQUASH,
            n=config.primary.capsule_dim,
            groups=config.num_primary_capsules,
            units=1,
        )
    else:
        raise MappingError(f"unknown convolution layer {layer!r}")

    m = out_size**2
    k = in_channels * kernel_area
    if policy == "channel_parallel":
        gemm = GemmShape(m=m, k=k, n=out_channels)
    elif policy == "channel_serial":
        gemm = GemmShape(m=m, k=k, n=1, count=out_channels)
    else:
        raise MappingError(f"unknown conv mapping policy {policy!r}")
    return StageShape(name=layer, gemms=(gemm,), activations=(activation,))


def classcaps_fc_stage(config: CapsNetConfig) -> StageShape:
    """The ClassCaps prediction (FC) stage: one GEMM per input capsule.

    For capsule ``i`` the stationary operand is the capsule vector
    ``u[i]`` (``K = capsule_dim`` rows) and its ``num_classes * out_dim``
    weight columns stream through the weight port — weights are unique per
    capsule, so this stage is weight-bandwidth-bound (the paper measures it
    slightly *slower* than the GPU, Fig 17 "FC: 14% slower").
    """
    spec = config.classcaps
    gemm = GemmShape(
        m=1,
        k=config.primary.capsule_dim,
        n=spec.num_classes * spec.out_dim,
        count=config.num_primary_capsules,
    )
    return StageShape(name="classcaps_fc", gemms=(gemm,))


def load_stage(config: CapsNetConfig) -> StageShape:
    """The routing "Load" step: staging operands for the routing loop.

    Moves the primary capsule outputs into the data buffer and the
    initialized coupling coefficients into the routing buffer.
    """
    u_words = config.num_primary_capsules * config.primary.capsule_dim
    c_words = config.coupling_coefficient_count
    return StageShape(name="load", transfer_words=u_words + c_words)


# ---- routing stages ----------------------------------------------------------


def routing_sum_stage(config: CapsNetConfig, iteration: int) -> StageShape:
    """Sum generation ``s_j = sum_i c_ij u_hat_ij`` (Fig 12b / 12d).

    One GEMM per output capsule: ``M = out_dim`` prediction rows against
    the capsule's coupling column (``K`` = input capsules).  In iteration 1
    predictions stream from the data buffer (Fig 12b); later iterations
    reuse them through the horizontal feedback path (Fig 12d).
    """
    source = "data_buffer" if iteration == 1 else "feedback"
    gemm = GemmShape(
        m=config.classcaps.out_dim,
        k=config.num_primary_capsules,
        n=1,
        count=config.classcaps.num_classes,
        data_source=source,
        weight_source="routing_buffer",
        weight_shared=False,
    )
    return StageShape(name=f"sum{iteration}", gemms=(gemm,))


def routing_squash_stage(config: CapsNetConfig, iteration: int) -> StageShape:
    """Squashing of the ``num_classes`` summed capsules."""
    work = ActivationWork(
        ActivationMode.SQUASH,
        n=config.classcaps.out_dim,
        groups=config.classcaps.num_classes,
        units=1,
    )
    v_words = config.classcaps.num_classes * config.classcaps.out_dim
    return StageShape(name=f"squash{iteration}", activations=(work,), transfer_words=v_words)


def routing_update_stage(config: CapsNetConfig, iteration: int) -> StageShape:
    """Logit update ``b_ij += u_hat_ij . v_j`` (Fig 12c).

    Predictions reuse the horizontal feedback; the squashed outputs arrive
    from the routing buffer on the weight port.  One GEMM per output
    capsule: ``M`` = input capsules, ``K`` = capsule dimension.
    """
    gemm = GemmShape(
        m=config.num_primary_capsules,
        k=config.classcaps.out_dim,
        n=1,
        count=config.classcaps.num_classes,
        data_source="feedback",
        weight_source="routing_buffer",
        weight_shared=False,
    )
    b_words = config.coupling_coefficient_count
    return StageShape(name=f"update{iteration}", gemms=(gemm,), transfer_words=b_words)


def routing_softmax_stage(config: CapsNetConfig, iteration: int, optimized: bool) -> StageShape:
    """Softmax over each input capsule's logit row (Fig 12c).

    With the CapsAcc routing optimization the first iteration's softmax is
    skipped entirely: the coupling coefficients are initialized directly
    (a single transfer of the uniform value), saving the full softmax pass.
    """
    c_words = config.coupling_coefficient_count
    if iteration == 1 and optimized:
        return StageShape(name="softmax1 (skipped)", transfer_words=c_words)
    work = ActivationWork(
        ActivationMode.SOFTMAX,
        n=config.classcaps.num_classes,
        groups=config.num_primary_capsules,
        units=1,
    )
    return StageShape(
        name=f"softmax{iteration}", activations=(work,), transfer_words=2 * c_words
    )


def routing_stages(config: CapsNetConfig, optimized: bool = True) -> list[StageShape]:
    """All routing stages in execution order (the Fig 9/17 sequence)."""
    stages: list[StageShape] = []
    iterations = config.classcaps.routing_iterations
    for iteration in range(1, iterations + 1):
        stages.append(routing_softmax_stage(config, iteration, optimized))
        stages.append(routing_sum_stage(config, iteration))
        stages.append(routing_squash_stage(config, iteration))
        if iteration < iterations:
            stages.append(routing_update_stage(config, iteration))
    return stages


def full_inference_stages(
    config: CapsNetConfig,
    optimized_routing: bool = True,
    conv_policy: str = "channel_parallel",
) -> list[StageShape]:
    """Every stage of a complete inference pass, in order."""
    stages = [
        conv_stage(config, "conv1", policy=conv_policy),
        conv_stage(config, "primarycaps", policy=conv_policy),
        load_stage(config),
        classcaps_fc_stage(config),
    ]
    stages.extend(routing_stages(config, optimized=optimized_routing))
    return stages


def stage_layer(name: str) -> str:
    """Map a stage name to its paper layer (for Fig 16 aggregation)."""
    if name == "conv1":
        return "Conv1"
    if name == "primarycaps":
        return "PrimaryCaps"
    return "ClassCaps"


def transfer_cycles(words: int, bus_words: int) -> int:
    """Cycles to move ``words`` over a ``bus_words``-wide port."""
    if words == 0:
        return 0
    return math.ceil(words / bus_words)
