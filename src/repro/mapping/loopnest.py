"""The mapping loop nest of paper Fig 13.

The paper expresses every CapsuleNet operation as an eight-deep loop nest::

    for l in output capsules:
      for k in output channels:
        for j in input capsules:
          for i in input channels:
            for g in output columns:
              for f in output rows:
                for c in kernel/input columns:
                  for r in kernel/input rows:
                    Sum += Weight * Data

:class:`LoopNest` represents the nest symbolically; per-layer instances are
used to cross-check the MAC counts of the GEMM lowering (the two must agree
exactly — asserted in tests) and to document each layer's traversal order
(the A/B/C/D arrows of Fig 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig
from repro.errors import MappingError

#: Canonical loop names, outermost first, as printed in Fig 13.
LOOP_ORDER = ("l", "k", "j", "i", "g", "f", "c", "r")

LOOP_DESCRIPTIONS = {
    "l": "output capsules",
    "k": "output channels",
    "j": "input capsules",
    "i": "input channels",
    "g": "output columns in a feature map",
    "f": "output rows in a feature map",
    "c": "kernel/input columns",
    "r": "kernel/input rows",
}


@dataclass(frozen=True)
class Loop:
    """One loop level: a dimension name and its trip count."""

    name: str
    count: int

    def __post_init__(self) -> None:
        if self.name not in LOOP_ORDER:
            raise MappingError(f"unknown loop dimension {self.name!r}")
        if self.count < 1:
            raise MappingError(f"loop {self.name!r} needs a positive trip count")

    @property
    def description(self) -> str:
        """Human-readable meaning of the dimension."""
        return LOOP_DESCRIPTIONS[self.name]


@dataclass(frozen=True)
class LoopNest:
    """An ordered loop nest describing one layer's MAC iteration space."""

    name: str
    loops: tuple[Loop, ...]

    def __post_init__(self) -> None:
        names = [loop.name for loop in self.loops]
        if len(set(names)) != len(names):
            raise MappingError("duplicate loop dimensions in nest")
        order = [name for name in LOOP_ORDER if name in names]
        if names != order:
            raise MappingError(
                f"loops must follow the Fig 13 order {LOOP_ORDER}, got {names}"
            )

    @property
    def total_macs(self) -> int:
        """Product of all trip counts: MACs executed by the nest."""
        total = 1
        for loop in self.loops:
            total *= loop.count
        return total

    def trip(self, name: str) -> int:
        """Trip count of a dimension (1 when absent)."""
        for loop in self.loops:
            if loop.name == name:
                return loop.count
        return 1


def capsule_loop_nest(config: CapsNetConfig, layer: str) -> LoopNest:
    """The Fig 13 nest instantiated for one layer of ``config``.

    ``layer`` is ``"conv1"``, ``"primarycaps"`` or ``"classcaps"`` (the FC
    prediction step; routing steps have their own shapes).
    """
    if layer == "conv1":
        spec = config.conv1
        return LoopNest(
            "conv1",
            (
                Loop("k", spec.out_channels),
                Loop("i", spec.in_channels),
                Loop("g", config.conv1_out_size),
                Loop("f", config.conv1_out_size),
                Loop("c", spec.kernel_size),
                Loop("r", spec.kernel_size),
            ),
        )
    if layer == "primarycaps":
        spec = config.primary
        return LoopNest(
            "primarycaps",
            (
                Loop("k", spec.conv_out_channels),
                Loop("i", spec.in_channels),
                Loop("g", config.primary_out_size),
                Loop("f", config.primary_out_size),
                Loop("c", spec.kernel_size),
                Loop("r", spec.kernel_size),
            ),
        )
    if layer == "classcaps":
        return LoopNest(
            "classcaps",
            (
                Loop("l", config.classcaps.num_classes),
                Loop("k", config.classcaps.out_dim),
                Loop("j", config.num_primary_capsules),
                Loop("i", config.primary.capsule_dim),
            ),
        )
    raise MappingError(f"unknown layer {layer!r}")
