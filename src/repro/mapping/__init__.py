"""Dataflow mappings of CapsuleNet operations onto the accelerator.

Implements paper Section V:

* :mod:`repro.mapping.loopnest` — the mapping loop nest of Fig 13.
* :mod:`repro.mapping.shapes` — shape-level stage descriptions (GEMM
  dimensions, operand sources, activation work) for every layer (Fig 14)
  and routing scenario (Fig 12); consumed by the performance model.
* :mod:`repro.mapping.execute` — executable lowering: runs an actual
  quantized inference through the cycle-level accelerator, producing
  results that are bit-identical to :class:`repro.capsnet.quantized.
  QuantizedCapsuleNet` (the functional-compliance proof).
"""

from repro.mapping.loopnest import Loop, LoopNest, capsule_loop_nest
from repro.mapping.shapes import (
    ActivationWork,
    GemmShape,
    StageShape,
    classcaps_fc_stage,
    conv_stage,
    full_inference_stages,
    load_stage,
    routing_stages,
)
from repro.mapping.execute import MappedInference, MappedResult

__all__ = [
    "Loop",
    "LoopNest",
    "capsule_loop_nest",
    "GemmShape",
    "ActivationWork",
    "StageShape",
    "conv_stage",
    "classcaps_fc_stage",
    "routing_stages",
    "load_stage",
    "full_inference_stages",
    "MappedInference",
    "MappedResult",
]
