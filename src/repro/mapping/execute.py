"""Executable lowering: run a quantized inference through the accelerator.

:class:`MappedInference` lowers every stage of a
:class:`~repro.capsnet.quantized.QuantizedCapsuleNet` onto
:class:`~repro.hw.accelerator.CapsAccAccelerator` GEMM jobs and activation
unit calls, following the paper's dataflow mappings (Section V).  The
results are **bit-identical** to the quantized reference — the reproduction
of the paper's statement that the hardware is "fully functionally compliant
with the original CapsuleNet design", which is why the paper reports no
separate accuracy numbers.  The integration tests assert this equivalence
end to end.

The lowering also accumulates cycle statistics per stage, which the tests
cross-check against the analytical performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.capsnet.ops import im2col
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ShapeError
from repro.fixedpoint.arith import requantize, saturate_raw
from repro.fixedpoint.quantize import to_raw
from repro.hw.accelerator import CapsAccAccelerator, GemmJob
from repro.hw.activation import ActivationUnit
from repro.hw.stats import CycleStats


@dataclass
class MappedResult:
    """Outputs and per-stage statistics of one mapped inference."""

    conv1_raw: np.ndarray
    primary_raw: np.ndarray
    u_hat_raw: np.ndarray
    class_caps_raw: np.ndarray
    coupling_raw: np.ndarray
    stage_stats: dict[str, CycleStats] = field(default_factory=dict)

    @property
    def total_stats(self) -> CycleStats:
        """Summed statistics over all stages."""
        total = CycleStats()
        for stats in self.stage_stats.values():
            total = total + stats
        return total


class MappedInference:
    """Runs a quantized CapsuleNet on the cycle-level accelerator."""

    def __init__(
        self,
        qnet: QuantizedCapsuleNet,
        accelerator: CapsAccAccelerator | None = None,
        engine: str = "fast",
        conv_policy: str = "channel_parallel",
    ) -> None:
        self.qnet = qnet
        if accelerator is None:
            accelerator = CapsAccAccelerator(formats=qnet.formats)
        self.accelerator = accelerator
        # Share the quantized model's ROMs so both paths are the same bits.
        self.activation = ActivationUnit(qnet.formats, qnet.luts)
        self.engine = engine
        if conv_policy not in ("channel_parallel", "channel_serial"):
            raise ShapeError(f"unknown conv mapping policy {conv_policy!r}")
        self.conv_policy = conv_policy

    # ---- stages ---------------------------------------------------------------

    def _conv_gemm(
        self,
        name: str,
        x_raw: np.ndarray,
        weight_raw: np.ndarray,
        bias_raw: np.ndarray,
        stride: int,
        data_fmt,
        weight_fmt,
        acc_fmt,
    ) -> tuple[np.ndarray, CycleStats]:
        """Lower one convolution to im2col GEMM job(s) (Fig 12a / 14a-b).

        ``channel_parallel`` issues one GEMM with output channels across
        columns; ``channel_serial`` (the paper's accumulator-minimizing
        traversal) issues one single-column GEMM per output channel —
        bit-identical results, different cycle cost.
        """
        kernel_size = weight_raw.shape[2]
        patches = im2col(np.asarray(x_raw, dtype=np.int64), kernel_size, stride)
        wmat = weight_raw.reshape(weight_raw.shape[0], -1).T  # (K, N)
        if self.conv_policy == "channel_parallel":
            job = GemmJob(name, patches, wmat, data_fmt, weight_fmt, acc_fmt)
            result = self.accelerator.run_gemm(job, engine=self.engine)
            acc = result.acc
            stats = result.stats
        else:
            acc = np.zeros((patches.shape[0], wmat.shape[1]), dtype=np.int64)
            stats = CycleStats()
            for channel in range(wmat.shape[1]):
                job = GemmJob(
                    f"{name}_ch{channel}",
                    patches,
                    wmat[:, channel : channel + 1],
                    data_fmt,
                    weight_fmt,
                    acc_fmt,
                )
                result = self.accelerator.run_gemm(job, engine=self.engine)
                acc[:, channel : channel + 1] = result.acc
                stats = stats + result.stats
        acc = saturate_raw(acc + bias_raw[np.newaxis, :], acc_fmt)
        return acc, stats

    def run(self, image: np.ndarray) -> MappedResult:
        """Execute one full inference pass on the accelerator."""
        qnet = self.qnet
        fmts = qnet.formats
        config = qnet.config
        if image.ndim == 2:
            image = image[np.newaxis]
        expected = (config.in_channels, config.image_size, config.image_size)
        if image.shape != expected:
            raise ShapeError(f"image shape {image.shape} != {expected}")
        stage_stats: dict[str, CycleStats] = {}

        # ---- Conv1 (Fig 12a) --------------------------------------------------
        image_raw = to_raw(image, fmts.input)
        conv1_acc_fmt = fmts.acc(fmts.input, fmts.conv1_weight)
        conv1_acc, stats = self._conv_gemm(
            "conv1",
            image_raw,
            qnet.raw_weights["conv1_w"],
            qnet.raw_weights["conv1_b"],
            config.conv1.stride,
            fmts.input,
            fmts.conv1_weight,
            conv1_acc_fmt,
        )
        stage_stats["conv1"] = stats
        conv1_out = self.activation.relu(conv1_acc, conv1_acc_fmt, fmts.conv1_out)
        size = config.conv1_out_size
        conv1_raw = conv1_out.T.reshape(config.conv1.out_channels, size, size)

        # ---- PrimaryCaps (Fig 12a) ---------------------------------------------
        primary_acc_fmt = fmts.acc(fmts.conv1_out, fmts.primary_weight)
        primary_acc, stats = self._conv_gemm(
            "primarycaps",
            conv1_raw,
            qnet.raw_weights["primary_w"],
            qnet.raw_weights["primary_b"],
            config.primary.stride,
            fmts.conv1_out,
            fmts.primary_weight,
            primary_acc_fmt,
        )
        stage_stats["primarycaps"] = stats
        preact_flat = requantize(primary_acc, primary_acc_fmt, fmts.primary_preact)
        spec = config.primary
        out_size = config.primary_out_size
        preact = preact_flat.T.reshape(spec.conv_out_channels, out_size, out_size)
        grouped = preact.reshape(spec.capsule_channels, spec.capsule_dim, out_size, out_size)
        capsules = grouped.transpose(2, 3, 0, 1).reshape(-1, spec.capsule_dim)
        primary_raw = self.activation.squash(capsules, fmts.primary_preact)

        # ---- ClassCaps FC (Fig 14c) --------------------------------------------
        u_hat_raw, stats = self._classcaps_fc(primary_raw)
        stage_stats["classcaps_fc"] = stats

        # ---- Routing (Fig 12b/c/d) ----------------------------------------------
        v_raw, c_raw, routing_stats = self._route(u_hat_raw)
        stage_stats.update(routing_stats)

        return MappedResult(
            conv1_raw=conv1_raw,
            primary_raw=primary_raw,
            u_hat_raw=u_hat_raw,
            class_caps_raw=v_raw,
            coupling_raw=c_raw,
            stage_stats=stage_stats,
        )

    def _classcaps_fc(self, primary_raw: np.ndarray) -> tuple[np.ndarray, CycleStats]:
        """One GEMM per input capsule against its private weight matrix."""
        qnet = self.qnet
        fmts = qnet.formats
        config = qnet.config
        acc_fmt = fmts.acc(fmts.caps_data, fmts.classcaps_weight)
        num_in = config.num_primary_capsules
        num_out = config.classcaps.num_classes
        out_dim = config.classcaps.out_dim
        in_dim = config.primary.capsule_dim
        w = qnet.raw_weights["classcaps_w"]
        u_hat = np.zeros((num_in, num_out, out_dim), dtype=np.int64)
        total = CycleStats()
        for i in range(num_in):
            wmat = w[i].reshape(num_out * out_dim, in_dim).T  # (K, N)
            job = GemmJob(
                f"fc_capsule_{i}",
                primary_raw[i : i + 1],
                wmat,
                fmts.caps_data,
                fmts.classcaps_weight,
                acc_fmt,
            )
            result = self.accelerator.run_gemm(job, engine=self.engine)
            u_hat[i] = requantize(result.acc, acc_fmt, fmts.caps_data).reshape(
                num_out, out_dim
            )
            total = total + result.stats
        return u_hat, total

    def _route(
        self, u_hat_raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, dict[str, CycleStats]]:
        """Quantized routing using GEMM jobs and the activation units."""
        qnet = self.qnet
        fmts = qnet.formats
        config = qnet.config
        num_in, num_out, out_dim = u_hat_raw.shape
        iterations = config.classcaps.routing_iterations
        sum_acc_fmt = fmts.acc(fmts.caps_data, fmts.coupling)
        upd_acc_fmt = fmts.acc(fmts.caps_data, fmts.caps_data)
        stats: dict[str, CycleStats] = {}
        b_raw = np.zeros((num_in, num_out), dtype=np.int64)

        if qnet.optimized_routing:
            c_raw = np.full(
                (num_in, num_out), qnet._uniform_coupling_code(num_out), dtype=np.int64
            )
        else:
            c_raw = self.activation.softmax(b_raw, axis=1)

        v_raw = np.zeros((num_out, out_dim), dtype=np.int64)
        for iteration in range(1, iterations + 1):
            if iteration > 1:
                c_raw = self.activation.softmax(b_raw, axis=1)
            # Sum: one GEMM per output capsule; predictions arrive from the
            # data buffer first, from the feedback path afterwards.
            source = "data_buffer" if iteration == 1 else "feedback"
            s_raw = np.zeros((num_out, out_dim), dtype=np.int64)
            sum_stats = CycleStats()
            for j in range(num_out):
                job = GemmJob(
                    f"sum{iteration}_caps{j}",
                    u_hat_raw[:, j, :].T,  # (out_dim, num_in)
                    c_raw[:, j : j + 1],  # (num_in, 1)
                    fmts.caps_data,
                    fmts.coupling,
                    sum_acc_fmt,
                    data_source=source,
                    weight_source="routing_buffer",
                )
                result = self.accelerator.run_gemm(job, engine=self.engine)
                s_raw[j] = requantize(
                    result.acc[:, 0], sum_acc_fmt, fmts.primary_preact
                )
                sum_stats = sum_stats + result.stats
            stats[f"sum{iteration}"] = sum_stats
            v_raw = self.activation.squash(s_raw, fmts.primary_preact)
            if iteration < iterations:
                update_stats = CycleStats()
                delta = np.zeros((num_in, num_out), dtype=np.int64)
                for j in range(num_out):
                    job = GemmJob(
                        f"update{iteration}_caps{j}",
                        u_hat_raw[:, j, :],  # (num_in, out_dim)
                        v_raw[j][:, np.newaxis],  # (out_dim, 1)
                        fmts.caps_data,
                        fmts.caps_data,
                        upd_acc_fmt,
                        data_source="feedback",
                        weight_source="routing_buffer",
                    )
                    result = self.accelerator.run_gemm(job, engine=self.engine)
                    delta[:, j] = requantize(result.acc[:, 0], upd_acc_fmt, fmts.logits)
                    update_stats = update_stats + result.stats
                stats[f"update{iteration}"] = update_stats
                b_raw = saturate_raw(b_raw + delta, fmts.logits)
        return v_raw, c_raw, stats
