"""CapsAcc reproduction: a CapsuleNet accelerator simulator with data reuse.

This package reproduces *CapsAcc: An Efficient Hardware Accelerator for
CapsuleNets with Data Reuse* (Marchisio, Hanif, Shafique — DATE 2019) in pure
Python.  It contains:

``repro.fixedpoint``
    Q-format fixed-point arithmetic, saturating MACs and the hardware lookup
    tables (squash, exp, square) used by the accelerator datapath.
``repro.capsnet``
    A from-scratch functional CapsuleNet (Conv1, PrimaryCaps, ClassCaps,
    squashing, routing-by-agreement) in float and 8-bit quantized form.
``repro.data``
    MNIST substrate: a procedural synthetic digit generator plus an
    idx-format loader for real MNIST files when available.
``repro.hw``
    Cycle-stepped, bit-accurate micro-architecture simulator: processing
    elements, the systolic array, accumulators, activation units and buffers.
``repro.mapping``
    The paper's dataflow mappings (Fig 13 loop nest, Fig 14 layer mappings,
    Fig 12 routing scenarios) expressed as schedules for the simulator.
``repro.perf``
    Analytical cycle model (validated against ``repro.hw``) and the GPU
    baseline performance model that substitutes the paper's GTX1070.
``repro.synthesis``
    32nm CMOS area / power / frequency model for Table II/III and Fig 18.
``repro.experiments``
    One driver per paper table and figure, plus paper-value comparisons.
"""

from repro.version import __version__

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.capsnet.model import CapsuleNet
from repro.hw.config import AcceleratorConfig
from repro.perf.model import CapsAccPerformanceModel
from repro.perf.gpu import GpuModel, gtx1070_paper_profile

__all__ = [
    "__version__",
    "CapsNetConfig",
    "mnist_capsnet_config",
    "CapsuleNet",
    "AcceleratorConfig",
    "CapsAccPerformanceModel",
    "GpuModel",
    "gtx1070_paper_profile",
]
