"""Command-line interface for the CapsAcc reproduction.

Usage::

    python -m repro.cli list                 # available artifacts
    python -m repro.cli run table1 fig16     # regenerate specific artifacts
    python -m repro.cli run all              # everything (incl. training)
    python -m repro.cli sweep --array 8 32   # design-space sweep (analytic tier)
    python -m repro.cli sweep --array 8 16 --window 1 2 --prestage 1 4 \
        --processes 4 --json sweep.json      # window/prestage/array DSE
    python -m repro.cli sweep --tier serving --policy fifo deadline  # fast-sim tier
    python -m repro.cli info                 # network + accelerator summary
    python -m repro.cli compile mnist --check     # graph -> ISA, golden-checked
    python -m repro.cli compile mlp --json mlp.json   # dump a compiled program
    python -m repro.cli simulate --batch-size 8   # batched engine simulation
    python -m repro.cli simulate --network cnn --batch-size 8  # zoo baseline
    python -m repro.cli simulate --batch-size 8 --images 32 --pipeline
    python -m repro.cli serve-sim --rate 400 --arrays 2   # serving simulator
    python -m repro.cli serve-sim --pipeline --trace-file arrivals.jsonl
    python -m repro.cli serve-sim --fast --requests 1000000   # streaming stats
    python -m repro.cli serve --rate 8000 --requests 2000 --max-batch 128
    python -m repro.cli serve --replay-virtual --requests 500  # decisions gate
    python -m repro.cli serve --listen 127.0.0.1:8707   # JSONL request socket

The CLI is a thin shell over :mod:`repro.experiments`; everything it prints
is available programmatically.
"""

from __future__ import annotations

import argparse
import sys

from repro.capsnet.config import mnist_capsnet_config
from repro.experiments import ablations, accuracy, runner
from repro.hw.config import AcceleratorConfig
from repro.perf.model import CapsAccPerformanceModel
from repro.version import __version__


def _cmd_list(_: argparse.Namespace) -> int:
    print("Available artifacts:")
    for key in runner.STANDARD_DRIVERS:
        print(f"  {key}")
    print("  ablations")
    print("  accuracy")
    print("  all")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    requested = args.artifacts
    if "all" in requested:
        suite = runner.run_all()
        print(suite.report_text())
        return 0
    unknown = [
        name
        for name in requested
        if name not in runner.STANDARD_DRIVERS and name not in ("ablations", "accuracy")
    ]
    if unknown:
        print(f"unknown artifacts: {', '.join(unknown)}", file=sys.stderr)
        return 2
    reports = []
    for name in requested:
        if name == "ablations":
            reports.append(ablations.format_report(ablations.run_all()))
        elif name == "accuracy":
            reports.append(accuracy.format_report(accuracy.run()))
        else:
            driver = runner.STANDARD_DRIVERS[name]
            reports.append(driver.format_report(driver.run()))
    print(("\n\n" + "=" * 72 + "\n\n").join(reports))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.hw.pipeline import DEFAULT_PRESTAGE_DEPTH, DEFAULT_WINDOW
    from repro.sweep import SweepSpec, run_sweep

    if args.smoke:
        networks = args.network or ["tiny"]
        arrays_axis = args.array or [4, 8]
        windows = args.window or [1, 2]
        prestages = args.prestage or [1, 4]
        requests = args.requests or 512
    else:
        networks = args.network or ["mnist"]
        arrays_axis = args.array or [8, 16, 32]
        windows = args.window or [DEFAULT_WINDOW]
        prestages = args.prestage or [DEFAULT_PRESTAGE_DEPTH]
        requests = args.requests or 2000
    network = networks[0]
    axes: dict = {}
    if len(networks) > 1:
        # Several networks sweep the model-zoo axis (outermost).
        axes["network"] = tuple(networks)
    axes["array"] = tuple(arrays_axis)
    if args.tier == "analytic":
        if (
            args.policy
            or args.rate_multiplier
            or args.crash_rate
            or args.max_attempts
            or args.corrupt_rate
            or args.integrity
        ):
            print(
                "sweep: --policy/--rate-multiplier/--crash-rate/--max-attempts/"
                "--corrupt-rate/--integrity"
                " are serving-tier axes (pass --tier serving)",
                file=sys.stderr,
            )
            return 2
        axes["window"] = tuple(windows)
        axes["prestage_depth"] = tuple(prestages)
        axes["batch"] = tuple(args.batch or [1])
    else:
        if args.batch:
            print(
                "sweep: --batch is an analytic-tier axis (the serving tier"
                " forms batches dynamically)",
                file=sys.stderr,
            )
            return 2
        # Window/prestage only matter with warm (pipelined) costs; sweep
        # them only when asked, so the default grid stays meaningful.
        if args.window or (args.pipeline and args.smoke):
            axes["window"] = tuple(windows)
        if args.prestage or (args.pipeline and args.smoke):
            axes["prestage_depth"] = tuple(prestages)
        if args.policy:
            axes["policy"] = tuple(args.policy)
        if args.rate_multiplier:
            axes["rate_multiplier"] = tuple(args.rate_multiplier)
        if args.crash_rate:
            axes["crash_rate"] = tuple(args.crash_rate)
        if args.max_attempts:
            axes["max_attempts"] = tuple(args.max_attempts)
        if args.corrupt_rate:
            axes["corrupt_rate"] = tuple(args.corrupt_rate)
        if args.integrity:
            axes["integrity"] = tuple(args.integrity)
    try:
        spec = SweepSpec(
            tier=args.tier,
            network=network,
            axes=axes,
            requests=requests,
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            deadline_ms=args.deadline_ms,
            arrays=args.arrays,
            pipeline=args.pipeline,
            seed=args.seed,
        )
        result = run_sweep(spec, processes=args.processes)
    except ConfigError as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    print(result.format_table())
    if args.json:
        result.write_json(args.json)
        print(f"wrote {args.json}")
    if args.csv:
        result.write_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    network = mnist_capsnet_config()
    accel = AcceleratorConfig()
    perf = CapsAccPerformanceModel(accelerator=accel, network=network).run()
    print(f"repro {__version__} — CapsAcc (DATE 2019) reproduction")
    print(f"Network: MNIST CapsuleNet, {network.total_parameter_count:,} parameters,")
    print(
        f"  {network.num_primary_capsules} primary capsules x"
        f" {network.primary.capsule_dim}D ->"
        f" {network.classcaps.num_classes} class capsules x"
        f" {network.classcaps.out_dim}D"
    )
    print(
        f"Accelerator: {accel.rows}x{accel.cols} PEs @ {accel.clock_mhz:.0f} MHz,"
        f" {accel.data_bits}-bit data, {accel.acc_bits}-bit accumulation"
    )
    print(
        f"Modelled inference: {perf.total_time_ms:.3f} ms"
        f" ({perf.utilization() * 100:.0f}% PE utilization)"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.compiler.zoo import get_network
    from repro.data.synthetic import SyntheticDigits
    from repro.hw.scheduler import BatchScheduler, LayerReport, PipelinedStreamScheduler

    if args.batch_size < 1 or args.images is not None and args.images < 1:
        print("batch size and image count must be positive", file=sys.stderr)
        return 2
    compiled = get_network(args.network)
    count = args.images if args.images is not None else args.batch_size
    dataset = SyntheticDigits(
        size=compiled.input_shape[-1], seed=args.seed
    ).generate(count)
    images = dataset.images
    if compiled.input_shape[0] != 1:
        images = np.repeat(images[:, np.newaxis], compiled.input_shape[0], axis=1)

    if args.pipeline:
        pipelined = PipelinedStreamScheduler(compiled, engine=args.engine)
        config = pipelined.accelerator.config
        batches = [
            images[lo : lo + args.batch_size]
            for lo in range(0, count, args.batch_size)
        ]
        start = time.perf_counter()
        stream = pipelined.run_stream(batches)
        wall = time.perf_counter() - start
        timing = stream.timing
        print(
            f"Pipelined stream simulation: {count} images,"
            f" batch size {args.batch_size}, {len(batches)} batches,"
            f" {args.network} network, {args.engine} engine"
            f" (window {pipelined.window}, prestage {pipelined.prestage_depth} tiles)"
        )
        print(f"{'batch':>6s} {'start':>12s} {'finish':>12s} {'marginal':>12s}")
        for bt in timing.batches:
            print(
                f"{bt.index:6d} {bt.start_cycle:12d} {bt.finish_cycle:12d}"
                f" {bt.marginal_cycles:12d}"
            )
        cold = timing.cold_cycles / timing.batches[0].images
        warm = timing.cycles_per_image(steady=True)
        steady_label = (
            "steady-state"
            if timing.converged
            else "steady-state (approximate: stream shorter than 6 batches)"
        )
        print(
            f"Cold: {cold:,.0f} cycles/image; {steady_label}:"
            f" {warm:,.0f} cycles/image"
            f" = {config.clock_mhz * 1e6 / warm:,.0f} images/s at"
            f" {config.clock_mhz:.0f} MHz"
        )
        print(
            f"Stream speedup over per-batch double-buffered scheduling:"
            f" {stream.pipelined_speedup():.2f}x"
            f" ({timing.finish_cycles:,d} vs {stream.overlapped_cycles:,d} cycles)"
        )
        print(f"Simulator wall clock: {wall:.3f} s = {count / wall:,.1f} images/s")
        predictions = stream.predictions
        accuracy = float(np.mean(predictions == dataset.labels))
        shown = predictions[:16].tolist()
        suffix = f" ... ({count} total)" if count > 16 else ""
        print(f"Predictions: {shown}{suffix} (synthetic-label accuracy {accuracy:.0%})")
        return 0

    scheduler = BatchScheduler(compiled, engine=args.engine)
    config = scheduler.accelerator.config

    layers: dict[str, LayerReport] = {}
    predictions = []
    start = time.perf_counter()
    for lo in range(0, count, args.batch_size):
        result = scheduler.run_batch(images[lo : lo + args.batch_size])
        predictions.append(result.predictions)
        for name, report in result.layers.items():
            layers.setdefault(name, LayerReport(name=name)).merge(report)
    wall = time.perf_counter() - start
    predictions = np.concatenate(predictions)

    total = LayerReport(name="total")
    for report in layers.values():
        total.merge(report)
    print(
        f"Batched simulation: {count} images, batch size {args.batch_size},"
        f" {args.network} network, {args.engine} engine"
    )
    print(f"{'layer':14s} {'cycles':>10s} {'w/ reuse':>10s} {'jobs':>6s} {'util':>6s}")
    for report in list(layers.values()) + [total]:
        print(
            f"{report.name:14s} {report.stats.total_cycles:10d}"
            f" {report.overlapped_cycles:10d} {report.jobs:6d}"
            f" {report.utilization(config.num_pes):5.1%}"
        )
    cycles_per_image = total.overlapped_cycles / count
    modeled = config.clock_mhz * 1e6 / cycles_per_image
    print(f"Modeled: {cycles_per_image:,.0f} cycles/image"
          f" = {config.cycles_to_us(cycles_per_image):.1f} us/image"
          f" = {modeled:,.0f} images/s at {config.clock_mhz:.0f} MHz")
    print(f"Simulator wall clock: {wall:.3f} s = {count / wall:,.1f} images/s")
    accuracy = float(np.mean(predictions == dataset.labels))
    shown = predictions[:16].tolist()
    suffix = f" ... ({count} total)" if count > 16 else ""
    print(f"Predictions: {shown}{suffix} (synthetic-label accuracy {accuracy:.0%})")
    return 0


def _zoo_names() -> tuple[str, ...]:
    from repro.compiler.zoo import zoo_names

    return zoo_names()


def _cmd_compile(args: argparse.Namespace) -> int:
    from pathlib import Path

    import numpy as np

    from repro.compiler import (
        check_network,
        compile_graph,
        get_network,
        graph_from_json,
        program_batch_cycles,
    )
    from repro.data.synthetic import SyntheticDigits
    from repro.errors import CompileError, ConfigError, GraphError, ShapeError

    try:
        network = None
        if args.graph is not None:
            if args.network is not None:
                raise ConfigError("pass a zoo network name or --graph, not both")
            graph = graph_from_json(Path(args.graph).read_text())
            program = compile_graph(graph)
        elif args.network is not None:
            network = get_network(args.network)
            program = network.program
        else:
            raise ConfigError(
                f"compile needs a zoo network ({', '.join(_zoo_names())})"
                " or --graph FILE"
            )
        config = AcceleratorConfig()
        cycles = program_batch_cycles(config, program, args.batch)
        print(program.text())
        print(
            f"; batch {args.batch} on {config.rows}x{config.cols}:"
            f" {cycles['overlapped']:,d} cycles overlapped,"
            f" {cycles['sequential']:,d} sequential"
            f" ({len(program.gemm_instructions())} array jobs)"
        )
        if args.check:
            if network is None:
                raise ConfigError(
                    "--check needs a zoo network (a bare graph has no"
                    " golden parameters)"
                )
            shape = network.input_shape
            images = SyntheticDigits(size=shape[-1], seed=args.seed).generate(
                args.check_images
            ).images
            if shape[0] != 1:
                images = np.repeat(images[:, np.newaxis], shape[0], axis=1)
            summary = check_network(network, images)
            print(
                f"; golden check: {summary['images']} images,"
                f" {summary['outputs_checked']} stored outputs bit-identical"
                " to the graph interpretation"
            )
        if args.json:
            Path(args.json).write_text(program.to_json() + "\n")
            print(f"wrote {args.json}")
    except (CompileError, ConfigError, GraphError, ShapeError, OSError) as error:
        print(f"compile: {error}", file=sys.stderr)
        return 2
    return 0


def _parse_tenant_spec(text: str) -> dict:
    """Parse one ``--tenant`` value: comma-separated ``key=value`` pairs."""
    from repro.errors import ConfigError

    known = {
        "name",
        "rate",
        "requests",
        "trace",
        "network",
        "deadline-ms",
        "weight",
    }
    spec: dict = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in known:
            raise ConfigError(
                f"bad tenant field {item!r} (known keys: {sorted(known)})"
            )
        spec[key] = value.strip()
    if "name" not in spec:
        raise ConfigError(f"tenant spec {text!r} needs a name=... field")
    return spec


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.compiler.zoo import get_network
    from repro.data.synthetic import SyntheticDigits
    from repro.errors import ConfigError
    from repro.obs import RecordingTracer, export_trace, pipeline_op_lane
    from repro.serve import (
        AnalyticBatchCost,
        ScheduledBatchCost,
        ServerConfig,
        ServingSimulator,
        TenantSpec,
        load_trace_file,
        make_trace,
    )

    def spec_value(spec: dict, key: str, default, convert):
        raw = spec.get(key)
        if raw is None:
            return default
        try:
            return convert(raw)
        except ValueError as error:
            raise ConfigError(
                f"tenant {spec['name']}: bad {key}={raw!r} ({error})"
            ) from error

    try:
        accel_config = AcceleratorConfig(acc_fifo_depth=args.fifo_depth)
        cost_by_network: dict[str, object] = {}

        def build_cost(network_name: str):
            # One cost model (and per-batch-size memo) per distinct network.
            # Every network comes from the model zoo; the analytic model
            # prices the paper CapsNets through the validated closed-form
            # perf model and everything else straight off its compiled
            # instruction stream.
            if network_name not in cost_by_network:
                if args.cost == "analytic":
                    network = (
                        get_network(network_name).config
                        if network_name in ("mnist", "tiny")
                        else get_network(network_name)
                    )
                    cost_by_network[network_name] = AnalyticBatchCost(
                        network=network,
                        accel_config=accel_config,
                        pipeline=args.pipeline,
                    )
                else:
                    cost_by_network[network_name] = ScheduledBatchCost(
                        qnet=get_network(network_name),
                        accel_config=accel_config,
                        accounting=args.accounting,
                        pipeline=args.pipeline,
                    )
            return cost_by_network[network_name]

        if args.cost == "analytic":
            if args.execute:
                raise ConfigError("--execute needs the scheduled cost model")
            if args.accounting != "overlapped":
                raise ConfigError(
                    "--accounting only applies to --cost scheduled (the"
                    " analytic model always costs the overlapped schedule)"
                )
        cost = build_cost(args.network)

        server = ServerConfig.from_cli_args(args, cost, accel_config=accel_config)
        tracer = RecordingTracer() if args.trace_out else None

        # One Generator seeds everything — the arrival traces and (in
        # execute mode) the request images — so a run is reproducible end
        # to end.
        rng = np.random.default_rng(args.seed)
        if args.tenant:
            if args.execute:
                raise ConfigError("--execute is single-tenant only")
            if args.trace_file is not None:
                raise ConfigError("--trace-file is single-tenant only")
            tenants = []
            for text in args.tenant:
                spec = _parse_tenant_spec(text)
                kind = spec.get("trace", args.trace)
                rate = spec_value(spec, "rate", args.rate, float)
                count = spec_value(spec, "requests", args.requests, int)
                trace_kwargs = (
                    {"burst_size": args.burst_size} if kind == "bursty" else {}
                )
                tenant_network = spec.get("network", args.network)
                deadline_ms = spec_value(spec, "deadline-ms", None, float)
                tenants.append(
                    TenantSpec(
                        name=spec["name"],
                        trace=make_trace(kind, rate, count, rng, **trace_kwargs),
                        cost=(
                            build_cost(tenant_network)
                            if tenant_network != args.network
                            else None
                        ),
                        deadline_us=(
                            deadline_ms * 1000.0 if deadline_ms is not None else None
                        ),
                        weight=spec_value(spec, "weight", 1.0, float),
                    )
                )
            simulator = ServingSimulator(server=server, tenants=tenants, tracer=tracer)
            report = simulator.run(
                with_crosscheck=False,
                record_requests=not args.fast,
                latency_bin_us=args.latency_bin_us,
            )
        else:
            if args.trace_file is not None:
                trace = load_trace_file(args.trace_file)
                requests = trace.count
            else:
                trace_kwargs = (
                    {"burst_size": args.burst_size} if args.trace == "bursty" else {}
                )
                trace = make_trace(
                    args.trace, args.rate, args.requests, rng, **trace_kwargs
                )
                requests = args.requests
            images = None
            if args.execute:
                shape = get_network(args.network).input_shape
                images = SyntheticDigits(size=shape[-1], rng=rng).generate(
                    requests
                ).images
                if shape[0] != 1:
                    # Grayscale synthetic digits replicated across the
                    # network's input channels (e.g. the CIFAR-shape net).
                    images = np.repeat(images[:, np.newaxis], shape[0], axis=1)
            simulator = ServingSimulator(
                trace,
                server=server,
                images=images,
                execute=args.execute,
                tracer=tracer,
            )
            report = simulator.run(
                with_crosscheck=args.cost == "scheduled",
                record_requests=not args.fast,
                latency_bin_us=args.latency_bin_us,
            )
    except ConfigError as error:
        print(f"serve-sim: {error}", file=sys.stderr)
        return 2
    print(report.format_table())
    if report.crosscheck:
        worst = max(entry["rel_error"] for entry in report.crosscheck.values())
        print(
            f"  perf-model crosscheck: {len(report.crosscheck)} batch size(s),"
            f" worst relative error {worst:.2%}"
        )
    elif args.cost == "scheduled" and args.accounting == "sequential":
        print("  perf-model crosscheck skipped (it models the overlapped schedule)")
    if report.predictions is not None:
        shown = report.predictions[:16].tolist()
        suffix = f" ... ({report.completed} total)" if report.completed > 16 else ""
        print(f"  predictions: {shown}{suffix}")
    if tracer is not None:
        # The op drill-down lane (paper Fig. 11) needs the memoized
        # pipelined schedule, which only the pipeline=True scheduled
        # cost carries; the default export stays schema-identical to
        # `repro serve --trace-out`.
        op_lane = None
        if args.pipeline and hasattr(cost, "pipeline_ops"):
            op_lane = pipeline_op_lane(cost, args.max_batch)
        export_trace(tracer, args.trace_out, op_lane=op_lane)
        print(f"wrote {args.trace_out} ({len(tracer.events)} events)")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import time

    import numpy as np

    from repro.compiler.zoo import get_network
    from repro.data.synthetic import SyntheticDigits
    from repro.errors import ConfigError
    from repro.obs import RecordingTracer, ServingMetrics, export_trace, serve_metrics
    from repro.serve import (
        ScheduledBatchCost,
        ServerConfig,
        ServingSimulator,
        load_trace_file,
        make_trace,
    )
    from repro.serve.compare import compare_reports, decision_diffs
    from repro.serve.runtime import MeasuredBatchCost, ServingRuntime, replay_virtual
    from repro.serve.trace import ArrivalTrace
    from repro.serve.workers import (
        CompiledStreamExecutor,
        InlineEngineExecutor,
        ProcessWorkerPool,
    )

    def parse_hostport(text: str, flag: str) -> tuple[str, int]:
        host, _, port_text = text.rpartition(":")
        try:
            return host or "127.0.0.1", int(port_text)
        except ValueError as error:
            raise ConfigError(f"{flag} expects HOST:PORT, got {text!r}") from error

    try:
        compiled = get_network(args.network)
        accel_config = AcceleratorConfig(acc_fifo_depth=args.fifo_depth)
        rng = np.random.default_rng(args.seed)
        if args.trace_file is not None:
            trace = load_trace_file(args.trace_file)
        else:
            trace_kwargs = (
                {"burst_size": args.burst_size} if args.trace == "bursty" else {}
            )
            trace = make_trace(args.trace, args.rate, args.requests, rng, **trace_kwargs)
        tracer = RecordingTracer() if args.trace_out else None

        if args.replay_virtual:
            # Deterministic mode: the runtime engine in virtual time, priced
            # by the exact scheduled cost, checked decision-for-decision
            # against the discrete-event simulator.
            if args.metrics_listen:
                raise ConfigError(
                    "--metrics-listen needs the wall-clock runtime (virtual"
                    " replay has no scrape interval)"
                )
            cost = ScheduledBatchCost(
                qnet=compiled, accel_config=accel_config, pipeline=args.pipeline
            )
            server = ServerConfig.from_cli_args(args, cost, accel_config=accel_config)
            live = replay_virtual(server, trace, tracer=tracer)
            sim = ServingSimulator(trace, server=server).run()
            diffs = decision_diffs(sim, live)
            print(live.format_table())
            if diffs:
                print(f"  VIRTUAL REPLAY DIVERGED from the simulator ({len(diffs)} diffs):")
                for diff in diffs[:10]:
                    print(f"    {diff}")
                return 1
            print(
                f"  virtual replay matches the simulator decision-for-decision"
                f" ({live.completed} served, {live.batch_count} batches)"
            )
            if tracer is not None:
                export_trace(tracer, args.trace_out)
                print(f"wrote {args.trace_out} ({len(tracer.events)} events)")
            if args.json:
                with open(args.json, "w") as handle:
                    json.dump(live.to_dict(), handle, indent=2)
                print(f"wrote {args.json}")
            return 0

        if args.pipeline:
            raise ConfigError(
                "--pipeline is simulation-only (a live host has no warm-cost"
                " model); use --replay-virtual or serve-sim"
            )
        if args.array_sizes:
            raise ConfigError(
                "--array-sizes is simulation-only (live arrays are homogeneous"
                " execution slots)"
            )
        if args.trace_out and args.listen is not None:
            raise ConfigError(
                "--trace-out needs a bounded run (the socket server never"
                " finishes a trace); use the load-generation mode"
            )
        metrics = ServingMetrics() if args.metrics_listen else None

        # The hand-tuned batched engine serves the plain single-channel
        # CapsNets; every other zoo entry runs its compiled instruction
        # stream (inline only — worker processes rebuild from a config).
        pure_capsnet = (
            compiled.qnet is not None
            and "res_w" not in compiled.params
            and compiled.input_shape[0] == 1
        )
        if args.workers == "process":
            if not pure_capsnet:
                raise ConfigError(
                    "--workers process serves the single-channel CapsNet zoo"
                    " entries; use --workers inline for other zoo networks"
                )
            executor = ProcessWorkerPool(
                compiled.config, arrays=args.arrays, max_batch=args.max_batch
            )
        elif pure_capsnet:
            executor = InlineEngineExecutor(compiled.config)
        else:
            executor = CompiledStreamExecutor(compiled)
        try:
            calibration = SyntheticDigits(
                size=compiled.input_shape[-1], rng=rng
            ).generate(min(512, max(args.max_batch, 64))).images
            sizes = [s for s in (1, 2, 4, 8, 16, 32, 64, 128, 256) if s <= args.max_batch]
            cost = MeasuredBatchCost.calibrate(
                executor, calibration, sizes=sizes, config=accel_config
            )
            server = ServerConfig.from_cli_args(args, cost, accel_config=accel_config)

            if args.listen is not None:
                host, port = parse_hostport(args.listen, "--listen")

                async def serve_forever() -> None:
                    runtime = ServingRuntime(
                        server,
                        executor=executor,
                        max_pending=args.max_pending,
                        metrics=metrics,
                    )
                    if args.metrics_listen:
                        m_host, m_port = parse_hostport(
                            args.metrics_listen, "--metrics-listen"
                        )
                        await serve_metrics(metrics, m_host, m_port)
                        print(f"metrics on http://{m_host}:{m_port}/metrics")
                    socket_server = await runtime.serve_socket(host, port)
                    bound = socket_server.sockets[0].getsockname()
                    print(
                        f"serving {args.network} on {bound[0]}:{bound[1]}"
                        f" ({server.describe()}; ctrl-c to stop)"
                    )
                    async with socket_server:
                        await socket_server.serve_forever()

                try:
                    asyncio.run(serve_forever())
                except KeyboardInterrupt:
                    print("stopped")
                return 0

            async def run_load():
                runtime = ServingRuntime(
                    server,
                    executor=executor,
                    max_pending=args.max_pending,
                    tracer=tracer,
                    metrics=metrics,
                )
                metrics_server = None
                if args.metrics_listen:
                    m_host, m_port = parse_hostport(
                        args.metrics_listen, "--metrics-listen"
                    )
                    metrics_server = await serve_metrics(metrics, m_host, m_port)
                    print(f"metrics on http://{m_host}:{m_port}/metrics")
                wall_start = time.perf_counter()
                await runtime.run_load(trace)
                await runtime.drain()
                wall = time.perf_counter() - wall_start
                report = runtime.report(
                    trace_name=trace.name,
                    offered_rps=trace.offered_rps,
                    wall_seconds=wall,
                )
                await runtime.stop()
                if metrics_server is not None:
                    metrics_server.close()
                    await metrics_server.wait_closed()
                return report

            live = asyncio.run(run_load())
            print(live.format_table())
            if tracer is not None:
                export_trace(tracer, args.trace_out)
                print(f"wrote {args.trace_out} ({len(tracer.events)} events)")
            served = live.served
            live_rps = 0.0
            if served:
                span_us = max(r.done_us for r in served) - min(
                    r.arrival_us for r in served
                )
                if span_us > 0:
                    live_rps = len(served) / span_us * 1e6
                print(
                    f"  live throughput: {live_rps:,.0f} req/s"
                    f" over {span_us / 1e6:.2f} s of wall clock"
                )
            crosscheck = None
            if args.crosscheck:
                # Re-simulate the recorded arrivals with in-situ batch
                # costs: the simulator should predict the live latency
                # distribution.
                insitu = MeasuredBatchCost.from_report(live, config=accel_config)
                sim_server = ServerConfig.from_cli_args(
                    args, insitu, accel_config=accel_config
                )
                arrivals = np.array(sorted(r.arrival_us for r in live.requests))
                arrivals -= arrivals[0]
                sim = ServingSimulator(
                    ArrivalTrace(times_us=arrivals, name="live-arrivals"),
                    server=sim_server,
                ).run()
                crosscheck = compare_reports(sim, live, rel_tol=0.2)
                for metric in ("p50_us", "p99_us"):
                    entry = crosscheck[metric]
                    print(
                        f"  sim-vs-live {metric}: sim={entry['sim']:,.0f}"
                        f" live={entry['live']:,.0f} ratio={entry['ratio']:.2f}"
                    )
                verdict = "within" if crosscheck["within_tol"] else "OUTSIDE"
                print(f"  sim-vs-live crosscheck: {verdict} 20% tolerance")
            if args.json:
                payload = live.to_dict()
                payload["live_rps"] = live_rps
                payload["sim_vs_live"] = crosscheck
                with open(args.json, "w") as handle:
                    json.dump(payload, handle, indent=2)
                print(f"wrote {args.json}")
            if crosscheck is not None and not crosscheck["within_tol"]:
                return 1
        finally:
            executor.close()
    except ConfigError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    from repro.serve.policies import add_server_arguments

    parser = argparse.ArgumentParser(
        prog="repro", description="CapsAcc (DATE 2019) reproduction toolkit"
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available artifacts").set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="regenerate paper artifacts")
    run_parser.add_argument("artifacts", nargs="+", help="artifact ids or 'all'")
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = sub.add_parser(
        "sweep",
        help="design-space sweep: array / window / prestage grids through the"
        " analytic stream model or the fast serving simulator",
    )
    sweep_parser.add_argument(
        "--tier",
        choices=("analytic", "serving"),
        default="analytic",
        help="cheap closed-form tier, or the accurate fast-simulator tier",
    )
    sweep_parser.add_argument(
        "--array", type=int, nargs="+", default=None, help="array sizes (NxN)"
    )
    sweep_parser.add_argument(
        "--window", type=int, nargs="+", default=None, help="pipeline windows"
    )
    sweep_parser.add_argument(
        "--prestage", type=int, nargs="+", default=None, help="prestage FIFO depths"
    )
    sweep_parser.add_argument(
        "--batch", type=int, nargs="+", default=None, help="batch sizes (analytic tier)"
    )
    sweep_parser.add_argument(
        "--policy",
        nargs="+",
        choices=("fifo", "deadline", "greedy"),
        default=None,
        help="serving-policy axis (serving tier)",
    )
    sweep_parser.add_argument(
        "--rate-multiplier",
        type=float,
        nargs="+",
        default=None,
        help="offered-rate axis, as multiples of batch-1 capacity (serving tier)",
    )
    sweep_parser.add_argument(
        "--crash-rate",
        type=float,
        nargs="+",
        default=None,
        help="fault-injection crash-probability axis (serving tier)",
    )
    sweep_parser.add_argument(
        "--max-attempts",
        type=int,
        nargs="+",
        default=None,
        help="retry-budget axis: attempts per request under faults (serving tier)",
    )
    sweep_parser.add_argument(
        "--corrupt-rate",
        type=float,
        nargs="+",
        default=None,
        help="silent-corruption injection-probability axis (serving tier)",
    )
    sweep_parser.add_argument(
        "--integrity",
        nargs="+",
        choices=("none", "checksum", "checksum+canary"),
        default=None,
        help="integrity check-mode axis countering corruption (serving tier)",
    )
    sweep_parser.add_argument(
        "--network",
        nargs="+",
        choices=_zoo_names(),
        default=None,
        help="model-zoo network(s); several values sweep the network axis"
        " (default mnist; tiny with --smoke)",
    )
    sweep_parser.add_argument(
        "--requests", type=int, default=None, help="trace length per serving point"
    )
    sweep_parser.add_argument("--max-batch", type=int, default=8)
    sweep_parser.add_argument("--max-wait-us", type=float, default=2000.0)
    sweep_parser.add_argument("--deadline-ms", type=float, default=None)
    sweep_parser.add_argument(
        "--arrays", type=int, default=1, help="arrays per serving point"
    )
    sweep_parser.add_argument(
        "--pipeline",
        action="store_true",
        help="serving tier: charge warm (stream-pipelined) batch costs",
    )
    sweep_parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="fan sweep points out across this many worker processes",
    )
    sweep_parser.add_argument("--seed", type=int, default=7)
    sweep_parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny network and a small grid (CI gate)",
    )
    sweep_parser.add_argument("--json", type=str, default=None, help="write artifact JSON")
    sweep_parser.add_argument("--csv", type=str, default=None, help="write rows CSV")
    sweep_parser.set_defaults(func=_cmd_sweep)

    compile_parser = sub.add_parser(
        "compile",
        help="compile a model-zoo network or a JSON graph file to the"
        " accelerator ISA and print the instruction stream",
    )
    compile_parser.add_argument(
        "network",
        nargs="?",
        choices=_zoo_names(),
        default=None,
        help="model-zoo network to compile",
    )
    compile_parser.add_argument(
        "--graph",
        type=str,
        default=None,
        metavar="FILE",
        help="compile an IR graph from its JSON serialization instead",
    )
    compile_parser.add_argument(
        "--batch", type=int, default=1, help="batch size for the cycle summary"
    )
    compile_parser.add_argument(
        "--check",
        action="store_true",
        help="run the compiled stream on synthetic images and assert every"
        " stored output is bit-identical to the golden graph interpretation",
    )
    compile_parser.add_argument(
        "--check-images", type=int, default=4, help="images for --check"
    )
    compile_parser.add_argument(
        "--seed", type=int, default=7, help="synthetic image seed for --check"
    )
    compile_parser.add_argument(
        "--json", type=str, default=None, help="write the compiled program JSON"
    )
    compile_parser.set_defaults(func=_cmd_compile)

    sim_parser = sub.add_parser(
        "simulate", help="run the batched execution engine on synthetic images"
    )
    sim_parser.add_argument(
        "--batch-size", type=int, default=1, help="images per scheduled batch"
    )
    sim_parser.add_argument(
        "--images", type=int, default=None, help="total images (default: one batch)"
    )
    sim_parser.add_argument(
        "--network",
        choices=_zoo_names(),
        default="mnist",
        help="model-zoo network to simulate",
    )
    sim_parser.add_argument(
        "--engine",
        choices=("fast", "stepped"),
        default="fast",
        help="execution engine (stepped is clock-edge accurate but slow)",
    )
    sim_parser.add_argument(
        "--pipeline",
        action="store_true",
        help="stream-pipeline across batches (cross-batch weight prestaging)",
    )
    sim_parser.add_argument("--seed", type=int, default=7, help="synthetic data seed")
    sim_parser.set_defaults(func=_cmd_simulate)

    serve_parser = sub.add_parser(
        "serve-sim",
        help="discrete-event serving simulation (dynamic batching, N arrays)",
    )
    # The policy/pool surface is shared with `repro serve` so the two
    # front-ends cannot drift apart flag by flag.
    add_server_arguments(serve_parser, network_default="mnist")
    serve_parser.add_argument(
        "--rate", type=float, default=400.0, help="mean arrival rate (requests/s)"
    )
    serve_parser.add_argument(
        "--requests", type=int, default=64, help="requests in the trace"
    )
    serve_parser.add_argument(
        "--trace",
        choices=("poisson", "bursty", "uniform"),
        default="poisson",
        help="arrival process",
    )
    serve_parser.add_argument(
        "--trace-file",
        type=str,
        default=None,
        help="replay recorded arrival times from a .jsonl/.csv file"
        " (overrides --trace/--rate/--requests)",
    )
    serve_parser.add_argument(
        "--burst-size", type=int, default=8, help="requests per burst (bursty trace)"
    )
    serve_parser.add_argument(
        "--tenant",
        action="append",
        default=None,
        metavar="SPEC",
        help="add a tenant (repeatable): comma-separated key=value pairs,"
        " e.g. name=a,rate=400,requests=64,network=tiny,deadline-ms=10,"
        "weight=2 (unset keys inherit the top-level flags)",
    )
    serve_parser.add_argument(
        "--cost",
        choices=("scheduled", "analytic"),
        default="scheduled",
        help="batch cost model (scheduled = bit-exact batched engine)",
    )
    serve_parser.add_argument(
        "--accounting",
        choices=("overlapped", "sequential"),
        default="overlapped",
        help="cycle accounting charged per batch",
    )
    serve_parser.add_argument(
        "--execute",
        action="store_true",
        help="run every batch through the engine on real images (predictions)",
    )
    serve_parser.add_argument(
        "--fast",
        action="store_true",
        help="streaming fast path (record_requests=False): identical counts,"
        " O(1) memory, percentiles at histogram resolution — for long traces",
    )
    serve_parser.add_argument(
        "--latency-bin-us",
        type=float,
        default=50.0,
        help="latency histogram bin width for --fast (microseconds)",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=7, help="seed for the trace and image generator"
    )
    serve_parser.add_argument("--json", type=str, default=None, help="write report JSON")
    serve_parser.set_defaults(func=_cmd_serve_sim)

    live_parser = sub.add_parser(
        "serve",
        help="live serving runtime: real requests through the quantized engine"
        " under the same policies as serve-sim",
    )
    add_server_arguments(live_parser, network_default="tiny")
    live_parser.add_argument(
        "--rate", type=float, default=8000.0, help="offered load (requests/s)"
    )
    live_parser.add_argument(
        "--requests", type=int, default=2000, help="requests in the generated trace"
    )
    live_parser.add_argument(
        "--trace",
        choices=("poisson", "bursty", "uniform"),
        default="uniform",
        help="arrival process for the offered load",
    )
    live_parser.add_argument(
        "--trace-file",
        type=str,
        default=None,
        help="replay recorded arrival times from a .jsonl/.csv file"
        " (overrides --trace/--rate/--requests)",
    )
    live_parser.add_argument(
        "--burst-size", type=int, default=8, help="requests per burst (bursty trace)"
    )
    live_parser.add_argument(
        "--workers",
        choices=("inline", "process"),
        default="inline",
        help="execution back-end: the engine in-process, or one worker"
        " process per array over shared memory",
    )
    live_parser.add_argument(
        "--max-pending",
        type=int,
        default=2048,
        help="backpressure bound on queued + in-flight requests",
    )
    live_parser.add_argument(
        "--listen",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="serve a JSONL request socket instead of generating load",
    )
    live_parser.add_argument(
        "--metrics-listen",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="expose live Prometheus metrics (counters, gauges, windowed"
        " p50/p99) over HTTP while the run is in flight",
    )
    live_parser.add_argument(
        "--replay-virtual",
        action="store_true",
        help="replay the trace through the runtime engine in virtual time and"
        " crosscheck every policy decision against the simulator",
    )
    live_parser.add_argument(
        "--crosscheck",
        action="store_true",
        help="after the live run, simulate the recorded arrivals with in-situ"
        " measured batch costs and compare latency percentiles",
    )
    live_parser.add_argument(
        "--seed", type=int, default=7, help="seed for the trace and image generator"
    )
    live_parser.add_argument("--json", type=str, default=None, help="write report JSON")
    live_parser.set_defaults(func=_cmd_serve)

    sub.add_parser("info", help="network and accelerator summary").set_defaults(
        func=_cmd_info
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
