"""Loader for MNIST idx files, with synthetic fallback.

``load_mnist_idx`` parses the original idx1/idx3 formats (optionally
gzipped).  ``load_dataset`` looks for real MNIST under common locations and
falls back to :class:`repro.data.synthetic.SyntheticDigits` when absent, so
every experiment runs unmodified with or without the real dataset.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticDigits
from repro.errors import DataError

#: Default filenames of the MNIST distribution.
MNIST_FILES = {
    "train_images": "train-images-idx3-ubyte",
    "train_labels": "train-labels-idx1-ubyte",
    "test_images": "t10k-images-idx3-ubyte",
    "test_labels": "t10k-labels-idx1-ubyte",
}


def _open_maybe_gzip(path: Path):
    gz = path.with_name(path.name + ".gz")
    if path.exists():
        return open(path, "rb")
    if gz.exists():
        return gzip.open(gz, "rb")
    raise DataError(f"missing MNIST file {path} (or {gz})")


def _read_idx(path: Path) -> np.ndarray:
    """Parse one idx file into a numpy array."""
    with _open_maybe_gzip(path) as handle:
        magic = struct.unpack(">I", handle.read(4))[0]
        dtype_code = (magic >> 8) & 0xFF
        ndim = magic & 0xFF
        if dtype_code != 0x08:
            raise DataError(f"unsupported idx dtype code 0x{dtype_code:02x} in {path}")
        shape = struct.unpack(f">{ndim}I", handle.read(4 * ndim))
        data = np.frombuffer(handle.read(), dtype=np.uint8)
    expected = int(np.prod(shape))
    if data.size != expected:
        raise DataError(f"idx payload size {data.size} != header {expected} in {path}")
    return data.reshape(shape)


def load_mnist_idx(directory: str | Path) -> tuple[Dataset, Dataset]:
    """Load real MNIST train/test datasets from idx files in ``directory``."""
    directory = Path(directory)
    train_images = _read_idx(directory / MNIST_FILES["train_images"]).astype(np.float64) / 255.0
    train_labels = _read_idx(directory / MNIST_FILES["train_labels"]).astype(np.int64)
    test_images = _read_idx(directory / MNIST_FILES["test_images"]).astype(np.float64) / 255.0
    test_labels = _read_idx(directory / MNIST_FILES["test_labels"]).astype(np.int64)
    return (
        Dataset(train_images, train_labels, name="mnist"),
        Dataset(test_images, test_labels, name="mnist"),
    )


def load_dataset(
    mnist_dir: str | Path | None = None,
    train_count: int = 400,
    test_count: int = 200,
    seed: int = 7,
) -> tuple[Dataset, Dataset]:
    """Return (train, test) datasets: real MNIST if available, else synthetic.

    Parameters
    ----------
    mnist_dir:
        Directory containing idx files; also tried: ``./data/mnist``.
    train_count / test_count:
        Sizes used when generating the synthetic fallback (real MNIST is
        returned in full).
    seed:
        Seed for the synthetic generator.
    """
    candidates = []
    if mnist_dir is not None:
        candidates.append(Path(mnist_dir))
    candidates.append(Path("data/mnist"))
    for candidate in candidates:
        try:
            return load_mnist_idx(candidate)
        except DataError:
            continue
    generator = SyntheticDigits(seed=seed)
    combined = generator.generate(train_count + test_count)
    train_fraction = train_count / (train_count + test_count)
    return combined.split(train_fraction, seed=seed)
