"""MNIST data substrate.

The paper evaluates on MNIST.  This environment has no network access, so
:mod:`repro.data.synthetic` provides a procedural 28x28 digit generator
(stroke-rendered digits with affine jitter and noise) that exercises every
code path of the model and accelerator identically to real data.  When real
MNIST idx files are available locally, :mod:`repro.data.mnist` loads them
instead (``load_dataset`` prefers real data automatically).
"""

from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticDigits, render_digit
from repro.data.mnist import load_dataset, load_mnist_idx

__all__ = [
    "Dataset",
    "SyntheticDigits",
    "render_digit",
    "load_dataset",
    "load_mnist_idx",
]
