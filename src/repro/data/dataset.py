"""A minimal dataset container shared by loaders and generators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError


@dataclass(frozen=True)
class Dataset:
    """A labelled image dataset.

    Attributes
    ----------
    images:
        Float array of shape ``(N, H, W)`` with values in ``[0, 1]``.
    labels:
        Integer array of shape ``(N,)``.
    name:
        Human-readable origin (``"synthetic"`` or ``"mnist"``).
    """

    images: np.ndarray
    labels: np.ndarray
    name: str

    def __post_init__(self) -> None:
        if self.images.ndim != 3:
            raise DataError(f"images must be (N, H, W), got shape {self.images.shape}")
        if self.labels.shape != (self.images.shape[0],):
            raise DataError("labels must have one entry per image")

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def image_size(self) -> int:
        """Spatial size (images are square)."""
        return self.images.shape[1]

    @property
    def num_classes(self) -> int:
        """Number of distinct labels."""
        return int(self.labels.max()) + 1 if len(self) else 0

    def take(self, count: int) -> "Dataset":
        """First ``count`` examples as a new dataset."""
        return Dataset(self.images[:count], self.labels[:count], self.name)

    def split(self, train_fraction: float, seed: int = 0) -> tuple["Dataset", "Dataset"]:
        """Shuffle deterministically and split into train / test."""
        if not 0.0 < train_fraction < 1.0:
            raise DataError("train_fraction must lie strictly between 0 and 1")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        train_idx, test_idx = order[:cut], order[cut:]
        train = Dataset(self.images[train_idx], self.labels[train_idx], self.name)
        test = Dataset(self.images[test_idx], self.labels[test_idx], self.name)
        return train, test
