"""Procedural synthetic MNIST-like digit generator.

Each digit class is defined by stroke geometry (polylines and elliptical
arcs in the unit square), rasterized with a Gaussian pen onto a 28x28 grid,
then perturbed with a random affine transform (rotation, scale, shear,
translation) and pixel noise.  The result is a deterministic, classifiable
dataset in ``[0, 1]`` that exercises the CapsuleNet and accelerator exactly
like real MNIST (the hardware is input-agnostic; only value ranges matter,
and those match).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError


def _arc(
    cx: float, cy: float, rx: float, ry: float, start_deg: float, end_deg: float, points: int = 40
) -> np.ndarray:
    """Sampled elliptical arc as an ``(N, 2)`` polyline."""
    theta = np.radians(np.linspace(start_deg, end_deg, points))
    return np.stack([cx + rx * np.cos(theta), cy + ry * np.sin(theta)], axis=1)


def _line(*points: tuple[float, float]) -> np.ndarray:
    """Polyline through the given control points."""
    return np.asarray(points, dtype=np.float64)


#: Stroke geometry per digit, in unit coordinates (x right, y down).
DIGIT_STROKES: dict[int, list[np.ndarray]] = {
    0: [_arc(0.50, 0.50, 0.26, 0.38, 0, 360, 72)],
    1: [_line((0.36, 0.24), (0.56, 0.08), (0.56, 0.92))],
    2: [
        _arc(0.50, 0.28, 0.24, 0.20, 170, -20, 36),
        _line((0.72, 0.33), (0.28, 0.90)),
        _line((0.28, 0.90), (0.76, 0.90)),
    ],
    3: [
        _arc(0.46, 0.29, 0.24, 0.20, 150, -80, 36),
        _arc(0.46, 0.70, 0.27, 0.23, 80, -150, 36),
    ],
    4: [
        _line((0.66, 0.08), (0.24, 0.60), (0.80, 0.60)),
        _line((0.62, 0.34), (0.62, 0.94)),
    ],
    5: [
        _line((0.74, 0.10), (0.32, 0.10), (0.30, 0.46)),
        _arc(0.47, 0.66, 0.26, 0.24, 140, -130, 40),
    ],
    6: [
        _line((0.64, 0.08), (0.38, 0.46)),
        _arc(0.48, 0.68, 0.22, 0.23, 0, 360, 60),
    ],
    7: [_line((0.24, 0.10), (0.78, 0.10), (0.44, 0.92))],
    8: [
        _arc(0.50, 0.29, 0.19, 0.18, 0, 360, 52),
        _arc(0.50, 0.71, 0.23, 0.22, 0, 360, 60),
    ],
    9: [
        _arc(0.53, 0.32, 0.21, 0.21, 0, 360, 56),
        _line((0.74, 0.34), (0.58, 0.92)),
    ],
}


def _densify(polyline: np.ndarray, step: float = 0.01) -> np.ndarray:
    """Resample a polyline so consecutive points are at most ``step`` apart."""
    points = [polyline[0]]
    for start, end in zip(polyline[:-1], polyline[1:]):
        span = np.linalg.norm(end - start)
        count = max(int(np.ceil(span / step)), 1)
        for t in np.linspace(0.0, 1.0, count + 1)[1:]:
            points.append(start + t * (end - start))
    return np.asarray(points)


def _rasterize(strokes: list[np.ndarray], size: int, pen_sigma: float) -> np.ndarray:
    """Render strokes with a Gaussian pen onto a ``size x size`` image."""
    image = np.zeros((size, size), dtype=np.float64)
    ys, xs = np.mgrid[0:size, 0:size]
    for polyline in strokes:
        dense = _densify(polyline) * (size - 1)
        for x, y in dense:
            image += np.exp(-(((xs - x) ** 2 + (ys - y) ** 2) / (2.0 * pen_sigma**2)))
    peak = image.max()
    if peak > 0:
        image = np.minimum(image / (0.6 * peak), 1.0)
    return image


def _affine_sample(image: np.ndarray, matrix: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Apply an inverse-mapped affine warp with bilinear sampling."""
    size = image.shape[0]
    center = (size - 1) / 2.0
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    coords = np.stack([xs - center, ys - center], axis=0).reshape(2, -1)
    inverse = np.linalg.inv(matrix)
    src = inverse @ (coords - shift[:, np.newaxis])
    sx = src[0] + center
    sy = src[1] + center
    x0 = np.floor(sx).astype(np.int64)
    y0 = np.floor(sy).astype(np.int64)
    fx = sx - x0
    fy = sy - y0
    out = np.zeros(sx.shape, dtype=np.float64)
    for dy in (0, 1):
        for dx in (0, 1):
            xi = x0 + dx
            yi = y0 + dy
            weight = (fx if dx else 1 - fx) * (fy if dy else 1 - fy)
            valid = (xi >= 0) & (xi < size) & (yi >= 0) & (yi < size)
            contribution = np.zeros_like(out)
            contribution[valid] = image[yi[valid], xi[valid]]
            out += weight * contribution
    return out.reshape(size, size)


def render_digit(
    digit: int,
    size: int = 28,
    rng: np.random.Generator | None = None,
    jitter: float = 1.0,
    pen_sigma: float = 1.0,
) -> np.ndarray:
    """Render one digit image with optional random affine jitter.

    Parameters
    ----------
    digit:
        Class 0-9.
    size:
        Output image side length.
    rng:
        Randomness source; ``None`` renders the canonical (unjittered) digit.
    jitter:
        Strength multiplier for the affine and noise perturbations.
    pen_sigma:
        Gaussian pen radius in pixels.
    """
    if digit not in DIGIT_STROKES:
        raise DataError(f"unknown digit class {digit}")
    image = _rasterize(DIGIT_STROKES[digit], size, pen_sigma)
    if rng is None or jitter == 0.0:
        return image
    angle = rng.uniform(-0.20, 0.20) * jitter
    scale = 1.0 + rng.uniform(-0.10, 0.10) * jitter
    shear = rng.uniform(-0.08, 0.08) * jitter
    cos, sin = np.cos(angle), np.sin(angle)
    matrix = scale * np.array([[cos, -sin + shear], [sin, cos]])
    shift = rng.uniform(-1.5, 1.5, size=2) * jitter
    warped = _affine_sample(image, matrix, shift)
    noise = rng.normal(0.0, 0.02 * jitter, size=warped.shape)
    return np.clip(warped + noise, 0.0, 1.0)


class SyntheticDigits:
    """Deterministic generator of labelled synthetic digit datasets.

    Randomness comes from a single :class:`numpy.random.Generator`: pass
    ``rng`` to share one stream with other consumers (e.g. the serving
    simulator's arrival trace, so one CLI seed reproduces a whole run), or
    leave it ``None`` to derive a fresh stream from ``seed`` on every
    :meth:`generate` call (two calls then yield identical datasets).
    """

    def __init__(
        self,
        size: int = 28,
        seed: int = 7,
        jitter: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if size < 12:
            raise DataError("digit rendering needs at least a 12-pixel canvas")
        self.size = size
        self.seed = seed
        self.jitter = jitter
        self.rng = rng

    def generate(self, count: int, classes: tuple[int, ...] | None = None) -> Dataset:
        """Generate ``count`` images cycling uniformly over ``classes``."""
        if count < 1:
            raise DataError("count must be positive")
        classes = classes if classes is not None else tuple(range(10))
        rng = self.rng if self.rng is not None else np.random.default_rng(self.seed)
        images = np.empty((count, self.size, self.size), dtype=np.float64)
        labels = np.empty(count, dtype=np.int64)
        for index in range(count):
            digit = classes[index % len(classes)]
            images[index] = render_digit(digit, self.size, rng, jitter=self.jitter)
            labels[index] = digit
        return Dataset(images, labels, name="synthetic")
