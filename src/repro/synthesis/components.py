"""Structural area estimates for every CapsAcc component (Table III rows).

Each estimator counts the gates / storage bits implied by the architecture
configuration and converts them to area with the technology densities.  The
component list matches the paper's Table III: Accumulator, Activation,
Data Buffer, Routing Buffer, Weight Buffer, Systolic Array, Other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fixedpoint.luts import lut_inventory
from repro.hw.config import AcceleratorConfig
from repro.synthesis.tech import (
    TECH_32NM,
    TechnologyParameters,
    adder_gates,
    multiplier_gates,
    mux_gates,
    register_gates,
)

#: Routing/wiring overhead applied on top of raw standard-cell area.
WIRING_FACTOR = 1.2

#: FIFO depth of each accumulator (outputs pending per column); sized for
#: the largest tile pass of the MNIST network (Conv1 streams 400 outputs).
DEFAULT_ACCUMULATOR_DEPTH = 512


@dataclass(frozen=True)
class ComponentEstimate:
    """Area estimate for one architecture component."""

    name: str
    kind: str
    area_um2: float

    @property
    def area_mm2(self) -> float:
        """Area in square millimetres."""
        return self.area_um2 / 1e6


def pe_gates(config: AcceleratorConfig) -> int:
    """NAND2-equivalents of one processing element (Fig 11b).

    Multiplier (data x weight), partial-sum adder, the four registers
    (data, weight1, weight2, partial sum) and input multiplexers.
    """
    gates = multiplier_gates(config.data_bits, config.weight_bits)
    gates += adder_gates(config.acc_bits)
    gates += register_gates(config.data_bits)  # data register
    gates += register_gates(config.weight_bits) * 2  # weight shift + hold
    gates += register_gates(config.acc_bits)  # partial-sum register
    gates += mux_gates(config.data_bits) + mux_gates(config.weight_bits)
    return gates


def systolic_array_area(
    config: AcceleratorConfig, tech: TechnologyParameters = TECH_32NM
) -> ComponentEstimate:
    """Area of the full PE array."""
    total_gates = pe_gates(config) * config.num_pes
    area = total_gates * tech.gate_area_um2 * WIRING_FACTOR
    return ComponentEstimate("Systolic Array", "logic", area)


def accumulator_area(
    config: AcceleratorConfig,
    tech: TechnologyParameters = TECH_32NM,
    depth: int = DEFAULT_ACCUMULATOR_DEPTH,
) -> ComponentEstimate:
    """Area of the per-column FIFO accumulators (Fig 11c)."""
    fifo_bits = depth * config.acc_bits
    per_column = fifo_bits * tech.regfile_bit_area_um2
    per_column += (
        adder_gates(config.acc_bits) + mux_gates(config.acc_bits) + register_gates(8)
    ) * tech.gate_area_um2 * WIRING_FACTOR
    return ComponentEstimate("Accumulator", "regfile", per_column * config.cols)


def activation_area(
    config: AcceleratorConfig, tech: TechnologyParameters = TECH_32NM
) -> ComponentEstimate:
    """Area of the activation units (Fig 11d-g): ROMs plus datapaths.

    Each of the ``cols`` units carries the squash, square and exp ROMs and
    the norm/softmax datapaths (accumulation registers, adders, divider).
    """
    rom_bits = sum(lut_inventory().values())
    rom_area = rom_bits * tech.rom_bit_area_um2
    datapath_gates = (
        adder_gates(16) * 2  # norm and softmax accumulation
        + register_gates(16) * 3  # square, exp and output registers
        + adder_gates(24)  # divider (iterative) core adder
        + mux_gates(config.data_bits, ways=4)  # output select (Fig 11d)
        + 200  # sqrt and control logic
    )
    datapath_area = datapath_gates * tech.gate_area_um2 * WIRING_FACTOR
    return ComponentEstimate(
        "Activation", "rom", (rom_area + datapath_area) * config.cols
    )


def buffer_area(
    name: str, size_kb: float, tech: TechnologyParameters = TECH_32NM
) -> ComponentEstimate:
    """Area of one SRAM buffer."""
    bits = size_kb * 1024 * 8
    return ComponentEstimate(name, "sram", bits * tech.sram_bit_area_um2)


def control_area(
    config: AcceleratorConfig, tech: TechnologyParameters = TECH_32NM
) -> ComponentEstimate:
    """Area of the control unit and glue logic ("Other" in Table III)."""
    gates = 1500 + 10 * (config.rows + config.cols)
    return ComponentEstimate("Other", "control", gates * tech.gate_area_um2)


def synthesize_components(
    config: AcceleratorConfig | None = None,
    tech: TechnologyParameters = TECH_32NM,
    accumulator_depth: int = DEFAULT_ACCUMULATOR_DEPTH,
) -> list[ComponentEstimate]:
    """Full component list in the paper's Table III order."""
    config = config if config is not None else AcceleratorConfig()
    return [
        accumulator_area(config, tech, depth=accumulator_depth),
        activation_area(config, tech),
        buffer_area("Data Buffer", config.data_buffer_kb, tech),
        buffer_area("Routing Buffer", config.routing_buffer_kb, tech),
        buffer_area("Weight Buffer", config.weight_buffer_kb, tech),
        systolic_array_area(config, tech),
        control_area(config, tech),
    ]


def total_area_mm2(components: list[ComponentEstimate]) -> float:
    """Summed area in mm^2 (the paper's Table II area is this sum)."""
    return sum(component.area_mm2 for component in components)
