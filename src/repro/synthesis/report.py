"""Synthesis reports: Table II, Table III and the Fig 18 breakdowns."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.config import AcceleratorConfig
from repro.perf.calibration import PAPER_TABLE2, PAPER_TABLE3
from repro.synthesis.components import (
    ComponentEstimate,
    synthesize_components,
    total_area_mm2,
)
from repro.synthesis.power import component_power_mw, total_power_mw
from repro.synthesis.tech import TECH_32NM, TechnologyParameters


@dataclass
class SynthesisReport:
    """Area/power report for one accelerator configuration."""

    config: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    tech: TechnologyParameters = TECH_32NM

    def __post_init__(self) -> None:
        self.components: list[ComponentEstimate] = synthesize_components(
            self.config, self.tech
        )
        self.power_mw: dict[str, float] = component_power_mw(
            self.components,
            self.tech,
            voltage_v=self.config.voltage_v,
            clock_mhz=self.config.clock_mhz,
        )

    # ---- Table II -------------------------------------------------------------

    def table2(self) -> dict[str, float]:
        """Synthesized accelerator parameters (paper Table II)."""
        return {
            "technology_nm": self.config.technology_nm,
            "voltage_v": self.config.voltage_v,
            "area_mm2": total_area_mm2(self.components),
            "power_mw": total_power_mw(
                self.components,
                self.tech,
                voltage_v=self.config.voltage_v,
                clock_mhz=self.config.clock_mhz,
            ),
            "clock_mhz": self.config.clock_mhz,
            "bit_width": self.config.data_bits,
            "onchip_memory_mb": self.config.onchip_memory_mb,
        }

    # ---- Table III ------------------------------------------------------------

    def table3(self) -> list[tuple[str, float, float]]:
        """Per-component ``(name, area_um2, power_mw)`` rows (paper Table III)."""
        return [
            (component.name, component.area_um2, self.power_mw[component.name])
            for component in self.components
        ]

    # ---- Fig 18 ---------------------------------------------------------------

    def area_breakdown(self) -> dict[str, float]:
        """Fraction of total area per component (Fig 18a)."""
        total = sum(component.area_um2 for component in self.components)
        return {
            component.name: component.area_um2 / total for component in self.components
        }

    def power_breakdown(self) -> dict[str, float]:
        """Fraction of total power per component (Fig 18b)."""
        total = sum(self.power_mw.values())
        return {name: power / total for name, power in self.power_mw.items()}

    # ---- paper comparison -------------------------------------------------------

    def compare_table3(self) -> list[dict]:
        """Measured-vs-paper rows for every Table III component."""
        rows = []
        for name, area_um2, power_mw in self.table3():
            paper = PAPER_TABLE3.get(name, {})
            rows.append(
                {
                    "component": name,
                    "area_um2": area_um2,
                    "paper_area_um2": paper.get("area_um2"),
                    "power_mw": power_mw,
                    "paper_power_mw": paper.get("power_mw"),
                }
            )
        return rows

    def compare_table2(self) -> list[dict]:
        """Measured-vs-paper rows for the Table II parameters."""
        ours = self.table2()
        return [
            {"parameter": key, "ours": ours[key], "paper": PAPER_TABLE2.get(key)}
            for key in ours
        ]
