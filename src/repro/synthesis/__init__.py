"""32nm CMOS synthesis model: area, power and energy (Tables II/III, Fig 18).

The paper synthesizes CapsAcc with Synopsys Design Compiler in a 32nm
library and reports per-component area and power.  This package substitutes
that flow with an analytical model:

* :mod:`repro.synthesis.tech` — technology parameters (gate, SRAM, register
  file and ROM densities; power densities; access energies) for 32nm, with
  first-order scaling to neighbouring nodes for ablations.
* :mod:`repro.synthesis.components` — structural gate/bit counts for every
  architecture component (PE datapath, accumulator FIFOs, activation ROMs,
  buffers, control).
* :mod:`repro.synthesis.power` — power from area/activity and energy per
  inference from simulated access counts.
* :mod:`repro.synthesis.report` — Table II / Table III / Fig 18 generation
  and paper comparison.

Calibration: the component models are first-principles (gate counts times
a routed-gate area); the single fitted constant per storage kind (SRAM /
register file / ROM bit area) is chosen once so the 32nm defaults land near
Table III, and is reported in the docs.  The *breakdown shape* — buffers
dominating, the systolic array about a quarter of the budget — follows
from structure, not fitting.
"""

from repro.synthesis.tech import TechnologyParameters, TECH_32NM, scaled_technology
from repro.synthesis.components import ComponentEstimate, synthesize_components
from repro.synthesis.power import component_power_mw, energy_per_inference_uj
from repro.synthesis.report import SynthesisReport

__all__ = [
    "TechnologyParameters",
    "TECH_32NM",
    "scaled_technology",
    "ComponentEstimate",
    "synthesize_components",
    "component_power_mw",
    "energy_per_inference_uj",
    "SynthesisReport",
]
