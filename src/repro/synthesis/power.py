"""Power and energy estimation.

Two complementary models:

* **Power from area** — each component dissipates ``area x density x
  (V / V_nom)^2 x (f / f_nom)`` with per-kind densities fitted once to the
  paper's Table III (power per area is nearly uniform there).  This yields
  the steady-state inference power of Table II / Fig 18.
* **Energy from activity** — dynamic energy per inference integrates the
  simulator's access counters (MACs, buffer words, LUT lookups) against
  per-event energies; used by the energy-per-inference extension
  experiment and the ablation sweeps.
"""

from __future__ import annotations

from repro.hw.config import AcceleratorConfig
from repro.hw.stats import CycleStats
from repro.synthesis.components import ComponentEstimate
from repro.synthesis.tech import TECH_32NM, TechnologyParameters


def component_power_mw(
    components: list[ComponentEstimate],
    tech: TechnologyParameters = TECH_32NM,
    voltage_v: float | None = None,
    clock_mhz: float | None = None,
) -> dict[str, float]:
    """Per-component power in milliwatts."""
    voltage = voltage_v if voltage_v is not None else tech.nominal_voltage_v
    clock = clock_mhz if clock_mhz is not None else tech.nominal_clock_mhz
    voltage_scale = (voltage / tech.nominal_voltage_v) ** 2
    clock_scale = clock / tech.nominal_clock_mhz
    return {
        component.name: component.area_mm2
        * tech.density(component.kind)
        * voltage_scale
        * clock_scale
        for component in components
    }


def total_power_mw(
    components: list[ComponentEstimate],
    tech: TechnologyParameters = TECH_32NM,
    voltage_v: float | None = None,
    clock_mhz: float | None = None,
) -> float:
    """Total accelerator power in milliwatts."""
    return sum(component_power_mw(components, tech, voltage_v, clock_mhz).values())


#: Mapping of access-counter categories to technology energy events.
_ACCESS_EVENTS = {
    "data_buffer.read": "sram_access",
    "data_buffer.write": "sram_access",
    "weight_buffer.read": "sram_access",
    "weight_buffer.write": "sram_access",
    "routing_buffer.read": "sram_access",
    "routing_buffer.write": "sram_access",
    "accumulator.write": "regfile_access",
    "activation.ops": "lut_access",
    "memory.read": "memory_access",
    "memory.write": "memory_access",
}


def energy_per_inference_uj(
    stats: CycleStats,
    tech: TechnologyParameters = TECH_32NM,
) -> dict[str, float]:
    """Dynamic energy per inference in microjoules, by contributor.

    ``stats`` aggregates one full inference (MAC count plus buffer access
    counters, as produced by the performance model or the simulator).
    """
    energy = {"mac": stats.mac_count * tech.access_energy("mac") * 1e-6}
    for category, words in stats.accesses.items():
        event = _ACCESS_EVENTS.get(category, "sram_access")
        key = category.split(".")[0]
        energy[key] = energy.get(key, 0.0) + words * tech.access_energy(event) * 1e-6
    return energy


def average_power_mw(
    stats: CycleStats,
    config: AcceleratorConfig,
    tech: TechnologyParameters = TECH_32NM,
) -> float:
    """Dynamic power implied by per-inference energy and latency."""
    total_uj = sum(energy_per_inference_uj(stats, tech).values())
    seconds = stats.total_cycles / (config.clock_mhz * 1e6)
    if seconds == 0:
        return 0.0
    return total_uj * 1e-6 / seconds * 1e3
