"""Technology parameters for the synthesis model.

``TECH_32NM`` reproduces the paper's 32nm node at 1.05 V.  Densities are
routed (post-layout-equivalent) values:

* ``gate_area_um2`` — area of one NAND2-equivalent including routing
  overhead (~2.4 um^2 at 32nm).
* ``sram_bit_area_um2`` — effective SRAM macro density including periphery
  (~0.55 um^2/bit for the buffer-sized macros used here).
* ``regfile_bit_area_um2`` — register-file density (FIFO storage).
* ``rom_bit_area_um2`` — ROM density (activation lookup tables).

Power densities (mW/mm^2 at nominal voltage and clock) are fitted once to
the paper's Table III (power per area is nearly uniform at ~70 mW/mm^2
across its components, with the ROM-heavy activation unit lower).  Access
energies feed the energy-per-inference extension experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class TechnologyParameters:
    """One CMOS technology point."""

    name: str
    node_nm: int
    nominal_voltage_v: float
    nominal_clock_mhz: float
    gate_area_um2: float
    sram_bit_area_um2: float
    regfile_bit_area_um2: float
    rom_bit_area_um2: float
    #: Power density per component kind, mW per mm^2 at nominal V and f.
    power_density_mw_per_mm2: dict
    #: Dynamic access energies in pJ (8-bit word granularity).
    energy_pj: dict

    def density(self, kind: str) -> float:
        """Power density for a component kind."""
        if kind not in self.power_density_mw_per_mm2:
            raise ConfigError(f"no power density for component kind {kind!r}")
        return self.power_density_mw_per_mm2[kind]

    def access_energy(self, event: str) -> float:
        """Energy in pJ for one counted event."""
        if event not in self.energy_pj:
            raise ConfigError(f"no access energy for event {event!r}")
        return self.energy_pj[event]


TECH_32NM = TechnologyParameters(
    name="32nm generic",
    node_nm=32,
    nominal_voltage_v=1.05,
    nominal_clock_mhz=250.0,
    gate_area_um2=2.4,
    sram_bit_area_um2=0.55,
    regfile_bit_area_um2=1.20,
    rom_bit_area_um2=0.10,
    power_density_mw_per_mm2={
        "logic": 68.0,
        "sram": 72.0,
        "regfile": 73.0,
        "rom": 42.0,
        "control": 30.0,
    },
    energy_pj={
        "mac": 0.9,
        "sram_access": 1.2,
        "regfile_access": 0.8,
        "lut_access": 0.4,
        "memory_access": 6.0,
    },
)


def scaled_technology(node_nm: int, base: TechnologyParameters = TECH_32NM) -> TechnologyParameters:
    """First-order Dennard-style scaling of a technology point.

    Area scales with the square of the feature-size ratio; energies scale
    with the ratio; power densities are kept constant (a conservative
    post-Dennard assumption).  Intended for ablation sweeps, not sign-off.
    """
    if node_nm < 5 or node_nm > 250:
        raise ConfigError(f"implausible technology node {node_nm}nm")
    ratio = node_nm / base.node_nm
    area_scale = ratio**2
    return replace(
        base,
        name=f"{node_nm}nm scaled",
        node_nm=node_nm,
        gate_area_um2=base.gate_area_um2 * area_scale,
        sram_bit_area_um2=base.sram_bit_area_um2 * area_scale,
        regfile_bit_area_um2=base.regfile_bit_area_um2 * area_scale,
        rom_bit_area_um2=base.rom_bit_area_um2 * area_scale,
        energy_pj={key: value * ratio for key, value in base.energy_pj.items()},
    )


# ---- gate-count building blocks ------------------------------------------------


def multiplier_gates(bits_a: int, bits_b: int) -> int:
    """NAND2-equivalents of an array multiplier (one FA per partial bit)."""
    full_adders = bits_a * bits_b
    return full_adders * 7


def adder_gates(bits: int) -> int:
    """NAND2-equivalents of a ripple/carry-select adder."""
    return bits * 7


def register_gates(bits: int) -> int:
    """NAND2-equivalents of a flip-flop register."""
    return bits * 5


def mux_gates(bits: int, ways: int = 2) -> int:
    """NAND2-equivalents of a ``ways``-to-1 multiplexer."""
    return bits * (ways - 1) * 3
