"""Vectorized float <-> raw fixed-point conversion.

The converters operate on numpy arrays (or scalars) and return ``int64`` raw
arrays, which comfortably hold every format used by CapsAcc (max 50-bit
products).  Saturating behaviour matches a hardware clamp; the non-saturating
mode raises so silent overflow cannot corrupt a simulation.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import SaturationError
from repro.fixedpoint.formats import QFormat


class Rounding(enum.Enum):
    """Rounding mode applied when a real value falls between raw codes.

    ``NEAREST`` rounds half away from zero (the behaviour of an adder-based
    hardware rounder that adds 0.5 ulp before truncation of the magnitude);
    ``FLOOR`` truncates toward negative infinity (dropping fraction bits in
    two's complement); ``ZERO`` truncates toward zero.
    """

    NEAREST = "nearest"
    FLOOR = "floor"
    ZERO = "zero"


def _round(scaled: np.ndarray, rounding: Rounding) -> np.ndarray:
    if rounding is Rounding.NEAREST:
        return np.where(scaled >= 0, np.floor(scaled + 0.5), np.ceil(scaled - 0.5))
    if rounding is Rounding.FLOOR:
        return np.floor(scaled)
    if rounding is Rounding.ZERO:
        return np.trunc(scaled)
    raise ValueError(f"unknown rounding mode {rounding!r}")


def to_raw(
    values: np.ndarray | float,
    fmt: QFormat,
    rounding: Rounding = Rounding.NEAREST,
    saturate: bool = True,
) -> np.ndarray:
    """Convert real values to raw integers in ``fmt``.

    Parameters
    ----------
    values:
        Array-like of real numbers.
    fmt:
        Target fixed-point format.
    rounding:
        How to resolve values between representable codes.
    saturate:
        Clamp out-of-range values to the format limits when true; raise
        :class:`~repro.errors.SaturationError` otherwise.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of raw codes with the same shape as ``values``.
    """
    arr = np.asarray(values, dtype=np.float64)
    scaled = arr * (1 << fmt.frac_bits) if fmt.frac_bits >= 0 else arr / (1 << -fmt.frac_bits)
    raw = _round(scaled, rounding)
    if saturate:
        raw = np.clip(raw, fmt.raw_min, fmt.raw_max)
    else:
        if np.any(raw < fmt.raw_min) or np.any(raw > fmt.raw_max):
            raise SaturationError(
                f"value out of range for {fmt.describe()} and saturation disabled"
            )
    return raw.astype(np.int64)


def from_raw(raw: np.ndarray | int, fmt: QFormat) -> np.ndarray:
    """Convert raw integers in ``fmt`` back to real values (float64)."""
    arr = np.asarray(raw, dtype=np.float64)
    if fmt.frac_bits >= 0:
        return arr / (1 << fmt.frac_bits)
    return arr * (1 << -fmt.frac_bits)


def quantize(
    values: np.ndarray | float,
    fmt: QFormat,
    rounding: Rounding = Rounding.NEAREST,
    saturate: bool = True,
) -> np.ndarray:
    """Round-trip real values through ``fmt`` (quantization in one call)."""
    return from_raw(to_raw(values, fmt, rounding=rounding, saturate=saturate), fmt)


def quantization_error_bound(fmt: QFormat, rounding: Rounding = Rounding.NEAREST) -> float:
    """Worst-case absolute error for in-range values quantized into ``fmt``."""
    if rounding is Rounding.NEAREST:
        return fmt.resolution / 2.0
    return fmt.resolution
