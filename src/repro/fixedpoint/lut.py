"""Generic lookup-table builders for the activation datapath.

The CapsAcc activation unit implements squash, exp and square with ROM
lookup tables (paper Figures 11e-11g).  :class:`LookupTable` models a
single-input ROM; :class:`LookupTable2D` models the two-input squash ROM
whose address is the concatenation of the data and norm buses.

Tables are materialized as numpy arrays indexed by the *unsigned* reading of
the raw input bus, exactly as a hardware ROM would be addressed, and report
their storage footprint for the synthesis model.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import Rounding, from_raw, to_raw


def _address(raw: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Unsigned ROM address for a (possibly signed) raw bus value."""
    mask = (1 << fmt.total_bits) - 1
    return np.asarray(raw, dtype=np.int64) & mask


def _all_raw_codes(fmt: QFormat) -> np.ndarray:
    """Every raw code of ``fmt`` ordered by its unsigned address."""
    addresses = np.arange(fmt.num_codes, dtype=np.int64)
    if not fmt.signed:
        return addresses
    # Addresses above raw_max encode negative values in two's complement.
    return np.where(addresses > fmt.raw_max, addresses - fmt.num_codes, addresses)


class LookupTable:
    """A single-input ROM mapping ``in_fmt`` raw codes to ``out_fmt`` codes.

    Parameters
    ----------
    func:
        Vectorized real-valued function the ROM approximates.
    in_fmt / out_fmt:
        Input and output bus formats.
    rounding:
        Rounding used when building table entries.
    name:
        Identifier used by the synthesis model and reports.
    """

    def __init__(
        self,
        func: Callable[[np.ndarray], np.ndarray],
        in_fmt: QFormat,
        out_fmt: QFormat,
        rounding: Rounding = Rounding.NEAREST,
        name: str = "lut",
    ) -> None:
        self.in_fmt = in_fmt
        self.out_fmt = out_fmt
        self.name = name
        codes = _all_raw_codes(in_fmt)
        values = func(from_raw(codes, in_fmt))
        self._table = to_raw(values, out_fmt, rounding=rounding)

    @property
    def num_entries(self) -> int:
        """Number of ROM words."""
        return self.in_fmt.num_codes

    @property
    def storage_bits(self) -> int:
        """ROM size in bits (words x output width)."""
        return self.num_entries * self.out_fmt.total_bits

    def lookup(self, raw_in: np.ndarray | int) -> np.ndarray:
        """Raw output codes for raw input codes (vectorized)."""
        return self._table[_address(raw_in, self.in_fmt)]

    def lookup_real(self, values: np.ndarray | float) -> np.ndarray:
        """Convenience: quantize real inputs, look up, return real outputs."""
        raw_in = to_raw(values, self.in_fmt)
        return from_raw(self.lookup(raw_in), self.out_fmt)


class LookupTable2D:
    """A two-input ROM addressed by the concatenation ``{a_bus, b_bus}``.

    Models the squashing LUT of Figure 11e: a 6-bit data input and a 5-bit
    norm input form an 11-bit address into an 8-bit-wide ROM.
    """

    def __init__(
        self,
        func: Callable[[np.ndarray, np.ndarray], np.ndarray],
        a_fmt: QFormat,
        b_fmt: QFormat,
        out_fmt: QFormat,
        rounding: Rounding = Rounding.NEAREST,
        name: str = "lut2d",
    ) -> None:
        self.a_fmt = a_fmt
        self.b_fmt = b_fmt
        self.out_fmt = out_fmt
        self.name = name
        a_codes = _all_raw_codes(a_fmt)
        b_codes = _all_raw_codes(b_fmt)
        a_grid, b_grid = np.meshgrid(a_codes, b_codes, indexing="ij")
        values = func(from_raw(a_grid, a_fmt), from_raw(b_grid, b_fmt))
        self._table = to_raw(values, out_fmt, rounding=rounding)

    @property
    def num_entries(self) -> int:
        """Number of ROM words."""
        return self.a_fmt.num_codes * self.b_fmt.num_codes

    @property
    def storage_bits(self) -> int:
        """ROM size in bits (words x output width)."""
        return self.num_entries * self.out_fmt.total_bits

    def lookup(self, a_raw: np.ndarray | int, b_raw: np.ndarray | int) -> np.ndarray:
        """Raw output codes for a pair of raw input buses (vectorized)."""
        return self._table[_address(a_raw, self.a_fmt), _address(b_raw, self.b_fmt)]

    def lookup_real(self, a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
        """Convenience: quantize real inputs, look up, return real outputs."""
        a_raw = to_raw(a, self.a_fmt)
        b_raw = to_raw(b, self.b_fmt)
        return from_raw(self.lookup(a_raw, b_raw), self.out_fmt)
