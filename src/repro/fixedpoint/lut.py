"""Backward-compatibility shim for :mod:`repro.fixedpoint.luts`.

The generic ROM builders historically lived here, parallel to the concrete
CapsAcc tables in ``luts.py``.  The two modules were merged; import from
:mod:`repro.fixedpoint.luts` (or the :mod:`repro.fixedpoint` package)
instead.
"""

from repro.fixedpoint.luts import (
    LookupTable as LookupTable,
    LookupTable2D as LookupTable2D,
)

__all__ = ["LookupTable", "LookupTable2D"]
