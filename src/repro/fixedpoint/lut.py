"""Deprecated backward-compatibility shim for :mod:`repro.fixedpoint.luts`.

The generic ROM builders historically lived here, parallel to the concrete
CapsAcc tables in ``luts.py``.  The two modules were merged; import from
:mod:`repro.fixedpoint.luts` (or the :mod:`repro.fixedpoint` package)
instead.  Importing this module emits a :class:`DeprecationWarning`.
"""

import warnings

from repro.fixedpoint.luts import (
    LookupTable as LookupTable,
    LookupTable2D as LookupTable2D,
)

warnings.warn(
    "repro.fixedpoint.lut is deprecated; import the ROM builders from"
    " repro.fixedpoint.luts (or the repro.fixedpoint package) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["LookupTable", "LookupTable2D"]
