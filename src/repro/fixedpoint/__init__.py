"""Fixed-point arithmetic substrate for the CapsAcc datapath.

The paper's datapath (Section IV) uses:

* 8-bit fixed-point data and weights entering each processing element,
* 25-bit fixed-point partial sums inside the systolic array and accumulator,
* a squashing lookup table with a 6-bit data input and a 5-bit norm input
  producing an 8-bit output,
* an 8-bit exponential lookup table inside the softmax unit,
* a square lookup table with 12-bit input and 8-bit output inside the norm
  unit.

This package provides the Q-format machinery and concrete datapath formats
(:mod:`repro.fixedpoint.formats`), vectorized quantizers
(:mod:`repro.fixedpoint.quantize`), saturating raw integer arithmetic
(:mod:`repro.fixedpoint.arith`) and the lookup-table builders plus concrete
CapsAcc tables (:mod:`repro.fixedpoint.luts`).  The former ``qformat`` and
``lut`` modules merged into ``formats`` and ``luts``; their deprecated
re-export shims have been removed.
"""

from repro.fixedpoint.formats import (
    ACC25,
    QFormat,
    DATA8,
    EXP_IN8,
    EXP_OUT8,
    NORM5,
    SQUARE_IN12,
    SQUARE_OUT8,
    SQUASH_IN6,
    SQUASH_OUT8,
    WEIGHT8,
)
from repro.fixedpoint.quantize import Rounding, quantize, to_raw, from_raw
from repro.fixedpoint.arith import (
    fx_add,
    fx_mul,
    fx_mac,
    product_format,
    requantize,
    saturate_raw,
)
from repro.fixedpoint.luts import (
    LookupTable,
    LookupTable2D,
    build_exp_lut,
    build_square_lut,
    build_squash_lut,
    fixed_sqrt,
)

__all__ = [
    "QFormat",
    "Rounding",
    "quantize",
    "to_raw",
    "from_raw",
    "fx_add",
    "fx_mul",
    "fx_mac",
    "product_format",
    "requantize",
    "saturate_raw",
    "LookupTable",
    "LookupTable2D",
    "build_exp_lut",
    "build_square_lut",
    "build_squash_lut",
    "fixed_sqrt",
    "DATA8",
    "WEIGHT8",
    "ACC25",
    "SQUASH_IN6",
    "NORM5",
    "SQUASH_OUT8",
    "SQUARE_IN12",
    "SQUARE_OUT8",
    "EXP_IN8",
    "EXP_OUT8",
]
