"""Q-format machinery and the concrete CapsAcc datapath formats.

A :class:`QFormat` describes a fixed-point representation by its total bit
width, the number of fractional bits and its signedness.  The *raw* integer
``r`` represents the real value ``r * 2**-frac_bits``.

The module-level constants are the concrete formats of the CapsAcc
datapath (paper Section IV).  The paper fixes the bit *widths*; the
binary-point positions are a design choice the paper leaves implicit.  The
positions below are chosen so that

* products of data and weights align exactly with the accumulator format
  (``DATA8.frac_bits + WEIGHT8.frac_bits == ACC25.frac_bits``),
* capsule activations (bounded by 1 after squashing) keep maximum precision,
* the norm input of the squash LUT covers the dynamic range observed for
  ``||s_j||`` on the MNIST CapsuleNet.

Changing these constants is supported everywhere (the bit-width ablation
sweeps them); the defaults reproduce the paper's widths.

(This module absorbed the former ``repro.fixedpoint.qformat``, which
remains importable as a thin re-export shim.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QFormatError


@dataclass(frozen=True)
class QFormat:
    """A fixed-point number format.

    Parameters
    ----------
    total_bits:
        Total width of the representation in bits, including the sign bit
        for signed formats.  Must be at least 1 (at least 2 when signed).
    frac_bits:
        Number of fractional bits.  May exceed ``total_bits`` (a format with
        only sub-unit resolution) and may be negative (a coarse format whose
        step is larger than 1); both occur in intermediate datapath values.
    signed:
        Whether the format is two's-complement signed.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise QFormatError(f"total_bits must be >= 1, got {self.total_bits}")
        if self.signed and self.total_bits < 2:
            raise QFormatError("signed formats need at least 2 bits")

    @property
    def int_bits(self) -> int:
        """Number of integer (non-fractional, non-sign) bits."""
        sign = 1 if self.signed else 0
        return self.total_bits - self.frac_bits - sign

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer."""
        if self.signed:
            return -(1 << (self.total_bits - 1))
        return 0

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer."""
        if self.signed:
            return (1 << (self.total_bits - 1)) - 1
        return (1 << self.total_bits) - 1

    @property
    def resolution(self) -> float:
        """Real-valued step between adjacent representable numbers."""
        return 2.0 ** (-self.frac_bits)

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min * self.resolution

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max * self.resolution

    @property
    def num_codes(self) -> int:
        """Number of distinct representable values (LUT addressing size)."""
        return 1 << self.total_bits

    def contains_raw(self, raw: int) -> bool:
        """Whether ``raw`` fits in this format without saturation."""
        return self.raw_min <= raw <= self.raw_max

    def wrap_raw(self, raw: int) -> int:
        """Two's-complement wrap of ``raw`` into this format's range.

        Used for LUT address decoding, where the hardware simply takes the
        low ``total_bits`` bits of the bus.
        """
        mask = (1 << self.total_bits) - 1
        value = raw & mask
        if self.signed and value > self.raw_max:
            value -= 1 << self.total_bits
        return value

    def describe(self) -> str:
        """Human-readable ``Qm.n`` style description."""
        kind = "s" if self.signed else "u"
        return (
            f"Q{kind}{self.int_bits}.{self.frac_bits}"
            f" ({self.total_bits} bits, range [{self.min_value:g}, {self.max_value:g}],"
            f" step {self.resolution:g})"
        )


#: 8-bit data entering a processing element (activations, predictions).
DATA8 = QFormat(total_bits=8, frac_bits=4)

#: 8-bit weights entering a processing element (also coupling coefficients).
WEIGHT8 = QFormat(total_bits=8, frac_bits=6)

#: 25-bit partial sums inside the systolic array and accumulator.  The
#: fractional part equals the product alignment of DATA8 x WEIGHT8.
ACC25 = QFormat(total_bits=25, frac_bits=DATA8.frac_bits + WEIGHT8.frac_bits)

#: 6-bit data input of the squashing LUT (components of s_j).
SQUASH_IN6 = QFormat(total_bits=6, frac_bits=3)

#: 5-bit norm input of the squashing LUT (||s_j|| is non-negative).  The
#: range [0, 3.875] covers the pre-squash norms observed on the CapsuleNet;
#: larger norms saturate, where the squash gain n/(1+n^2) is already flat.
NORM5 = QFormat(total_bits=5, frac_bits=3, signed=False)

#: 8-bit output of the squashing LUT; squashed components lie in (-1, 1).
SQUASH_OUT8 = QFormat(total_bits=8, frac_bits=6)

#: 12-bit input of the square LUT inside the norm unit.
SQUARE_IN12 = QFormat(total_bits=12, frac_bits=8)

#: 8-bit output of the square LUT (squares are non-negative).  The fine
#: 1/64 step preserves classification precision for capsule outputs
#: (|v| <= 1, so squares never saturate); pre-squash elements beyond |s| = 2
#: clamp, where the squash gain is insensitive to the exact norm.
SQUARE_OUT8 = QFormat(total_bits=8, frac_bits=6, signed=False)

#: 8-bit input of the exponential LUT inside the softmax unit.  The control
#: logic subtracts the row maximum first, so inputs are <= 0 and the output
#: lies in (0, 1].
EXP_IN8 = QFormat(total_bits=8, frac_bits=4)

#: 8-bit output of the exponential LUT.
EXP_OUT8 = QFormat(total_bits=8, frac_bits=7, signed=False)
