"""Concrete Q-formats of the CapsAcc datapath (paper Section IV).

The paper fixes the bit *widths*; the binary-point positions are a design
choice the paper leaves implicit.  The positions below are chosen so that

* products of data and weights align exactly with the accumulator format
  (``DATA8.frac_bits + WEIGHT8.frac_bits == ACC25.frac_bits``),
* capsule activations (bounded by 1 after squashing) keep maximum precision,
* the norm input of the squash LUT covers the dynamic range observed for
  ``||s_j||`` on the MNIST CapsuleNet.

Changing these constants is supported everywhere (the bit-width ablation
sweeps them); the defaults reproduce the paper's widths.
"""

from repro.fixedpoint.qformat import QFormat

#: 8-bit data entering a processing element (activations, predictions).
DATA8 = QFormat(total_bits=8, frac_bits=4)

#: 8-bit weights entering a processing element (also coupling coefficients).
WEIGHT8 = QFormat(total_bits=8, frac_bits=6)

#: 25-bit partial sums inside the systolic array and accumulator.  The
#: fractional part equals the product alignment of DATA8 x WEIGHT8.
ACC25 = QFormat(total_bits=25, frac_bits=DATA8.frac_bits + WEIGHT8.frac_bits)

#: 6-bit data input of the squashing LUT (components of s_j).
SQUASH_IN6 = QFormat(total_bits=6, frac_bits=3)

#: 5-bit norm input of the squashing LUT (||s_j|| is non-negative).  The
#: range [0, 3.875] covers the pre-squash norms observed on the CapsuleNet;
#: larger norms saturate, where the squash gain n/(1+n^2) is already flat.
NORM5 = QFormat(total_bits=5, frac_bits=3, signed=False)

#: 8-bit output of the squashing LUT; squashed components lie in (-1, 1).
SQUASH_OUT8 = QFormat(total_bits=8, frac_bits=6)

#: 12-bit input of the square LUT inside the norm unit.
SQUARE_IN12 = QFormat(total_bits=12, frac_bits=8)

#: 8-bit output of the square LUT (squares are non-negative).  The fine
#: 1/64 step preserves classification precision for capsule outputs
#: (|v| <= 1, so squares never saturate); pre-squash elements beyond |s| = 2
#: clamp, where the squash gain is insensitive to the exact norm.
SQUARE_OUT8 = QFormat(total_bits=8, frac_bits=6, signed=False)

#: 8-bit input of the exponential LUT inside the softmax unit.  The control
#: logic subtracts the row maximum first, so inputs are <= 0 and the output
#: lies in (0, 1].
EXP_IN8 = QFormat(total_bits=8, frac_bits=4)

#: 8-bit output of the exponential LUT.
EXP_OUT8 = QFormat(total_bits=8, frac_bits=7, signed=False)
