"""Lookup tables of the activation datapath: generic builders + CapsAcc ROMs.

The CapsAcc activation unit implements squash, exp and square with ROM
lookup tables (paper Figures 11e-11g).  :class:`LookupTable` models a
single-input ROM; :class:`LookupTable2D` models the two-input squash ROM
whose address is the concatenation of the data and norm buses.  Tables are
materialized as numpy arrays indexed by the *unsigned* reading of the raw
input bus, exactly as a hardware ROM would be addressed, and report their
storage footprint for the synthesis model.

The concrete ROM instances:

* **squash** (Fig 11e): 6-bit data and 5-bit norm in, 8-bit out.  Computes
  one output component ``v_d = s_d * ||s|| / (1 + ||s||^2)`` given the
  component ``s_d`` and the vector norm ``||s||`` (the norm arrives from the
  norm unit, so it is not recomputed inside the squash unit).
* **square** (inside the norm unit, Fig 11f): 12-bit in, 8-bit out.
* **exp** (inside the softmax unit, Fig 11g): 8-bit in, 8-bit out.

The norm unit's final square root (Fig 11f) is an exact integer square root
(:func:`fixed_sqrt`), bit-reproducible across platforms.

(This module absorbed the former ``repro.fixedpoint.lut``, which remains
importable as a thin re-export shim.)
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.fixedpoint import formats
from repro.fixedpoint.arith import saturate_raw
from repro.fixedpoint.formats import QFormat
from repro.fixedpoint.quantize import Rounding, from_raw, to_raw


def _address(raw: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Unsigned ROM address for a (possibly signed) raw bus value."""
    mask = (1 << fmt.total_bits) - 1
    return np.asarray(raw, dtype=np.int64) & mask


def _all_raw_codes(fmt: QFormat) -> np.ndarray:
    """Every raw code of ``fmt`` ordered by its unsigned address."""
    addresses = np.arange(fmt.num_codes, dtype=np.int64)
    if not fmt.signed:
        return addresses
    # Addresses above raw_max encode negative values in two's complement.
    return np.where(addresses > fmt.raw_max, addresses - fmt.num_codes, addresses)


class LookupTable:
    """A single-input ROM mapping ``in_fmt`` raw codes to ``out_fmt`` codes.

    Parameters
    ----------
    func:
        Vectorized real-valued function the ROM approximates.
    in_fmt / out_fmt:
        Input and output bus formats.
    rounding:
        Rounding used when building table entries.
    name:
        Identifier used by the synthesis model and reports.
    """

    def __init__(
        self,
        func: Callable[[np.ndarray], np.ndarray],
        in_fmt: QFormat,
        out_fmt: QFormat,
        rounding: Rounding = Rounding.NEAREST,
        name: str = "lut",
    ) -> None:
        self.in_fmt = in_fmt
        self.out_fmt = out_fmt
        self.name = name
        codes = _all_raw_codes(in_fmt)
        values = func(from_raw(codes, in_fmt))
        self._table = to_raw(values, out_fmt, rounding=rounding)

    @property
    def num_entries(self) -> int:
        """Number of ROM words."""
        return self.in_fmt.num_codes

    @property
    def storage_bits(self) -> int:
        """ROM size in bits (words x output width)."""
        return self.num_entries * self.out_fmt.total_bits

    def lookup(self, raw_in: np.ndarray | int) -> np.ndarray:
        """Raw output codes for raw input codes (vectorized)."""
        return self._table[_address(raw_in, self.in_fmt)]

    def lookup_real(self, values: np.ndarray | float) -> np.ndarray:
        """Convenience: quantize real inputs, look up, return real outputs."""
        raw_in = to_raw(values, self.in_fmt)
        return from_raw(self.lookup(raw_in), self.out_fmt)


class LookupTable2D:
    """A two-input ROM addressed by the concatenation ``{a_bus, b_bus}``.

    Models the squashing LUT of Figure 11e: a 6-bit data input and a 5-bit
    norm input form an 11-bit address into an 8-bit-wide ROM.
    """

    def __init__(
        self,
        func: Callable[[np.ndarray, np.ndarray], np.ndarray],
        a_fmt: QFormat,
        b_fmt: QFormat,
        out_fmt: QFormat,
        rounding: Rounding = Rounding.NEAREST,
        name: str = "lut2d",
    ) -> None:
        self.a_fmt = a_fmt
        self.b_fmt = b_fmt
        self.out_fmt = out_fmt
        self.name = name
        a_codes = _all_raw_codes(a_fmt)
        b_codes = _all_raw_codes(b_fmt)
        a_grid, b_grid = np.meshgrid(a_codes, b_codes, indexing="ij")
        values = func(from_raw(a_grid, a_fmt), from_raw(b_grid, b_fmt))
        self._table = to_raw(values, out_fmt, rounding=rounding)

    @property
    def num_entries(self) -> int:
        """Number of ROM words."""
        return self.a_fmt.num_codes * self.b_fmt.num_codes

    @property
    def storage_bits(self) -> int:
        """ROM size in bits (words x output width)."""
        return self.num_entries * self.out_fmt.total_bits

    def lookup(self, a_raw: np.ndarray | int, b_raw: np.ndarray | int) -> np.ndarray:
        """Raw output codes for a pair of raw input buses (vectorized)."""
        return self._table[_address(a_raw, self.a_fmt), _address(b_raw, self.b_fmt)]

    def lookup_real(self, a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
        """Convenience: quantize real inputs, look up, return real outputs."""
        a_raw = to_raw(a, self.a_fmt)
        b_raw = to_raw(b, self.b_fmt)
        return from_raw(self.lookup(a_raw, b_raw), self.out_fmt)


def squash_gain(norm: np.ndarray) -> np.ndarray:
    """The scalar factor applied to each component by the squash function.

    ``squash(s) = s * ||s|| / (1 + ||s||^2) / 1`` per component can be
    written ``v_d = s_d * g(||s||)`` with ``g(n) = n / (1 + n^2)``.
    """
    n = np.asarray(norm, dtype=np.float64)
    return n / (1.0 + n * n)


def build_squash_lut(
    data_fmt: QFormat = formats.SQUASH_IN6,
    norm_fmt: QFormat = formats.NORM5,
    out_fmt: QFormat = formats.SQUASH_OUT8,
) -> LookupTable2D:
    """Build the two-input squashing ROM of Figure 11e.

    Entries are clamped to [-1, 1]: squashed components are mathematically
    bounded by 1, but address pairs where the norm input was saturated
    upstream (large vectors clamp in the square LUT) would otherwise
    tabulate an overestimated gain.  The clamp keeps the hardware output
    inside the function's true range for every reachable address.
    """

    def entry(s_d: np.ndarray, norm: np.ndarray) -> np.ndarray:
        return np.clip(s_d * squash_gain(norm), -1.0, 1.0)

    return LookupTable2D(entry, data_fmt, norm_fmt, out_fmt, name="squash")


def build_square_lut(
    in_fmt: QFormat = formats.SQUARE_IN12,
    out_fmt: QFormat = formats.SQUARE_OUT8,
) -> LookupTable:
    """Build the square ROM used by the norm unit (Figure 11f)."""
    return LookupTable(lambda x: x * x, in_fmt, out_fmt, name="square")


def build_exp_lut(
    in_fmt: QFormat = formats.EXP_IN8,
    out_fmt: QFormat = formats.EXP_OUT8,
) -> LookupTable:
    """Build the exponential ROM used by the softmax unit (Figure 11g).

    The softmax control logic subtracts the running maximum before the
    lookup, so only non-positive inputs occur in operation; the table is
    nevertheless defined (with saturation) over the full input range.
    """

    def entry(x: np.ndarray) -> np.ndarray:
        return np.minimum(np.exp(x), out_fmt.max_value)

    return LookupTable(entry, in_fmt, out_fmt, name="exp")


def fixed_sqrt(
    raw: np.ndarray | int,
    in_fmt: QFormat,
    out_fmt: QFormat = formats.NORM5,
) -> np.ndarray:
    """Exact fixed-point square root of non-negative raw codes.

    Computes ``round(sqrt(value))`` in ``out_fmt`` using integer arithmetic
    only: the input raw code is rescaled so that the integer square root of
    the shifted operand lands directly on the output grid, then rounded to
    nearest by comparing the remainder against the midpoint.

    Negative inputs (which cannot reach a hardware norm unit) raise
    ``ValueError``.
    """
    arr = np.atleast_1d(np.asarray(raw, dtype=np.int64))
    if arr.size and arr.min() < 0:
        raise ValueError("fixed_sqrt requires non-negative input codes")
    # value = raw * 2^-f_in; out_raw = round(sqrt(value) * 2^f_out)
    #       = round(sqrt(raw * 2^(2*f_out - f_in)))
    shift = 2 * out_fmt.frac_bits - in_fmt.frac_bits
    out = np.empty(arr.shape, dtype=np.int64)
    flat_in = arr.ravel()
    flat_out = out.ravel()
    for i, code in enumerate(flat_in):
        operand = int(code) << shift if shift >= 0 else int(code) >> (-shift)
        root = math.isqrt(operand)
        # Round to nearest: bump when operand >= (root + 0.5)^2, i.e. when
        # the integer remainder operand - root^2 exceeds root.
        if operand - root * root > root:
            root += 1
        flat_out[i] = root
    result = saturate_raw(out, out_fmt)
    if np.isscalar(raw) or np.asarray(raw).ndim == 0:
        return result.reshape(())
    return result


def lut_inventory() -> dict[str, int]:
    """Storage (bits) of every ROM in the default configuration.

    Used by the synthesis model to size the activation unit.
    """
    squash = build_squash_lut()
    square = build_square_lut()
    exp = build_exp_lut()
    return {
        "squash": squash.storage_bits,
        "square": square.storage_bits,
        "exp": exp.storage_bits,
    }
