"""Q-format specification for fixed-point numbers.

A :class:`QFormat` describes a fixed-point representation by its total bit
width, the number of fractional bits and its signedness.  The *raw* integer
``r`` represents the real value ``r * 2**-frac_bits``.

The formats used by the CapsAcc datapath are defined in
:mod:`repro.fixedpoint.formats`; this module is format-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QFormatError


@dataclass(frozen=True)
class QFormat:
    """A fixed-point number format.

    Parameters
    ----------
    total_bits:
        Total width of the representation in bits, including the sign bit
        for signed formats.  Must be at least 1 (at least 2 when signed).
    frac_bits:
        Number of fractional bits.  May exceed ``total_bits`` (a format with
        only sub-unit resolution) and may be negative (a coarse format whose
        step is larger than 1); both occur in intermediate datapath values.
    signed:
        Whether the format is two's-complement signed.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise QFormatError(f"total_bits must be >= 1, got {self.total_bits}")
        if self.signed and self.total_bits < 2:
            raise QFormatError("signed formats need at least 2 bits")

    @property
    def int_bits(self) -> int:
        """Number of integer (non-fractional, non-sign) bits."""
        sign = 1 if self.signed else 0
        return self.total_bits - self.frac_bits - sign

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer."""
        if self.signed:
            return -(1 << (self.total_bits - 1))
        return 0

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer."""
        if self.signed:
            return (1 << (self.total_bits - 1)) - 1
        return (1 << self.total_bits) - 1

    @property
    def resolution(self) -> float:
        """Real-valued step between adjacent representable numbers."""
        return 2.0 ** (-self.frac_bits)

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min * self.resolution

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max * self.resolution

    @property
    def num_codes(self) -> int:
        """Number of distinct representable values (LUT addressing size)."""
        return 1 << self.total_bits

    def contains_raw(self, raw: int) -> bool:
        """Whether ``raw`` fits in this format without saturation."""
        return self.raw_min <= raw <= self.raw_max

    def wrap_raw(self, raw: int) -> int:
        """Two's-complement wrap of ``raw`` into this format's range.

        Used for LUT address decoding, where the hardware simply takes the
        low ``total_bits`` bits of the bus.
        """
        mask = (1 << self.total_bits) - 1
        value = raw & mask
        if self.signed and value > self.raw_max:
            value -= 1 << self.total_bits
        return value

    def describe(self) -> str:
        """Human-readable ``Qm.n`` style description."""
        kind = "s" if self.signed else "u"
        return (
            f"Q{kind}{self.int_bits}.{self.frac_bits}"
            f" ({self.total_bits} bits, range [{self.min_value:g}, {self.max_value:g}],"
            f" step {self.resolution:g})"
        )
