"""Deprecated backward-compatibility shim for :mod:`repro.fixedpoint.formats`.

:class:`QFormat` historically lived here, parallel to the concrete format
constants in ``formats.py``.  The two modules were merged; import from
:mod:`repro.fixedpoint.formats` (or the :mod:`repro.fixedpoint` package)
instead.  Importing this module emits a :class:`DeprecationWarning`.
"""

import warnings

from repro.fixedpoint.formats import QFormat as QFormat

warnings.warn(
    "repro.fixedpoint.qformat is deprecated; import QFormat from"
    " repro.fixedpoint.formats (or the repro.fixedpoint package) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["QFormat"]
