"""Backward-compatibility shim for :mod:`repro.fixedpoint.formats`.

:class:`QFormat` historically lived here, parallel to the concrete format
constants in ``formats.py``.  The two modules were merged; import from
:mod:`repro.fixedpoint.formats` (or the :mod:`repro.fixedpoint` package)
instead.
"""

from repro.fixedpoint.formats import QFormat as QFormat

__all__ = ["QFormat"]
