"""Saturating raw-integer arithmetic mirroring the CapsAcc datapath.

Every function operates on *raw* integer arrays (``int64``) tagged with a
:class:`~repro.fixedpoint.formats.QFormat`.  This is the layer the
bit-accurate hardware simulator computes with: the multiplier inside a
processing element is :func:`fx_mul`, the 25-bit partial-sum adder is
:func:`fx_add` with saturation, and the 25-to-8-bit reduction in front of the
activation unit is :func:`requantize`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QFormatError
from repro.fixedpoint.formats import QFormat
from repro.fixedpoint.quantize import Rounding


def product_format(a: QFormat, b: QFormat) -> QFormat:
    """Exact format of the product of values in formats ``a`` and ``b``.

    An ``n x m`` bit multiplier produces ``n + m`` bits; fraction bits add.
    The product is signed if either operand is signed.
    """
    return QFormat(
        total_bits=a.total_bits + b.total_bits,
        frac_bits=a.frac_bits + b.frac_bits,
        signed=a.signed or b.signed,
    )


def saturate_raw(raw: np.ndarray | int, fmt: QFormat) -> np.ndarray:
    """Clamp raw codes into the representable range of ``fmt``."""
    return np.clip(np.asarray(raw, dtype=np.int64), fmt.raw_min, fmt.raw_max)


def fx_mul(a_raw: np.ndarray, a_fmt: QFormat, b_raw: np.ndarray, b_fmt: QFormat):
    """Exact fixed-point multiply.

    Returns
    -------
    tuple
        ``(raw_product, product_fmt)`` where the product is exact (no
        rounding, no saturation) as produced by a full-width multiplier.
    """
    out_fmt = product_format(a_fmt, b_fmt)
    product = np.asarray(a_raw, dtype=np.int64) * np.asarray(b_raw, dtype=np.int64)
    return product, out_fmt


def align_raw(raw: np.ndarray, from_fmt: QFormat, to_frac_bits: int) -> np.ndarray:
    """Shift raw codes so they carry ``to_frac_bits`` fraction bits.

    Left shifts are exact.  Right shifts truncate toward negative infinity,
    matching a two's-complement arithmetic shift in hardware.
    """
    arr = np.asarray(raw, dtype=np.int64)
    shift = to_frac_bits - from_fmt.frac_bits
    if shift >= 0:
        return arr << shift
    return arr >> (-shift)


def fx_add(
    a_raw: np.ndarray,
    a_fmt: QFormat,
    b_raw: np.ndarray,
    b_fmt: QFormat,
    out_fmt: QFormat,
    saturate: bool = True,
) -> np.ndarray:
    """Fixed-point add with binary-point alignment into ``out_fmt``.

    Operands are aligned to ``out_fmt.frac_bits`` with arithmetic shifts and
    summed; the result saturates to ``out_fmt`` (hardware clamp) unless
    ``saturate`` is false, in which case overflow raises via
    :func:`check_fits`.
    """
    total = align_raw(a_raw, a_fmt, out_fmt.frac_bits) + align_raw(
        b_raw, b_fmt, out_fmt.frac_bits
    )
    if saturate:
        return saturate_raw(total, out_fmt)
    check_fits(total, out_fmt)
    return total


def check_fits(raw: np.ndarray, fmt: QFormat) -> None:
    """Raise :class:`QFormatError` when any raw code overflows ``fmt``."""
    arr = np.asarray(raw)
    if arr.size and (arr.min() < fmt.raw_min or arr.max() > fmt.raw_max):
        raise QFormatError(f"raw value overflows {fmt.describe()}")


def fx_mac(
    acc_raw: np.ndarray,
    acc_fmt: QFormat,
    data_raw: np.ndarray,
    data_fmt: QFormat,
    weight_raw: np.ndarray,
    weight_fmt: QFormat,
) -> np.ndarray:
    """One multiply-accumulate step of a processing element.

    Computes ``acc + data * weight`` where the product is exact and the sum
    saturates at the accumulator width (the paper's 25-bit partial sum).
    Requires the product fraction to align with the accumulator fraction,
    which holds for the shipped formats by construction.
    """
    product, prod_fmt = fx_mul(data_raw, data_fmt, weight_raw, weight_fmt)
    if prod_fmt.frac_bits != acc_fmt.frac_bits:
        product = align_raw(product, prod_fmt, acc_fmt.frac_bits)
    total = np.asarray(acc_raw, dtype=np.int64) + product
    return saturate_raw(total, acc_fmt)


def requantize(
    raw: np.ndarray,
    in_fmt: QFormat,
    out_fmt: QFormat,
    rounding: Rounding = Rounding.NEAREST,
) -> np.ndarray:
    """Reduce raw codes from ``in_fmt`` to ``out_fmt`` (round then saturate).

    This models the width reduction between the accumulator (25 bits) and
    the activation unit input (8 bits) described in Section IV-C.
    """
    arr = np.asarray(raw, dtype=np.int64)
    shift = in_fmt.frac_bits - out_fmt.frac_bits
    if shift <= 0:
        return saturate_raw(arr << (-shift), out_fmt)
    if rounding is Rounding.NEAREST:
        half = 1 << (shift - 1)
        shifted = np.where(arr >= 0, (arr + half) >> shift, -((-arr + half) >> shift))
    elif rounding is Rounding.FLOOR:
        shifted = arr >> shift
    elif rounding is Rounding.ZERO:
        shifted = np.where(arr >= 0, arr >> shift, -((-arr) >> shift))
    else:
        raise ValueError(f"unknown rounding mode {rounding!r}")
    return saturate_raw(shifted, out_fmt)
