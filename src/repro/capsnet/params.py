"""Per-layer accounting of inputs, parameters and outputs (paper Table I).

The parameter counts match the paper exactly:

* Conv1: 20,992 (9*9*1*256 weights + 256 biases)
* PrimaryCaps: 5,308,672 (9*9*256*256 weights + 256 biases)
* ClassCaps: 1,474,560 (1152*10*16*8 transformation weights)
* Coupling coefficients: 11,520 (1152*10, computed at run time)

The paper's Table I lists 102,400 as both the PrimaryCaps *output* size and
the ClassCaps *input* size; the architecturally correct value for the
stride-2 PrimaryCaps layer is 6*6*32*8 = 9,216.  Both numbers are reported
(``outputs`` = computed, ``outputs_paper`` = as printed) and the discrepancy
is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config

#: Table I values exactly as printed in the paper, for comparison.
PAPER_TABLE1 = {
    "Conv1": {"inputs": 784, "parameters": 20992, "outputs": 102400},
    "PrimaryCaps": {"inputs": 102400, "parameters": 5308672, "outputs": 102400},
    "ClassCaps": {"inputs": 102400, "parameters": 1474560, "outputs": 160},
    "Coupling Coeff": {"inputs": 160, "parameters": 11520, "outputs": 160},
}


@dataclass(frozen=True)
class LayerStats:
    """Input size, trainable parameters and output size of one layer."""

    name: str
    inputs: int
    parameters: int
    outputs: int

    def as_row(self) -> tuple[str, int, int, int]:
        """Row for the Table I report."""
        return (self.name, self.inputs, self.parameters, self.outputs)


def layer_statistics(config: CapsNetConfig | None = None) -> list[LayerStats]:
    """Compute the Table I rows from the architecture definition.

    Output sizes are the architecturally correct values; see
    :data:`PAPER_TABLE1` for the printed ones.
    """
    cfg = config if config is not None else mnist_capsnet_config()
    conv1_outputs = cfg.conv1_out_size**2 * cfg.conv1.out_channels
    primary_outputs = cfg.num_primary_capsules * cfg.primary.capsule_dim
    class_outputs = cfg.output_count
    coupling = cfg.coupling_coefficient_count
    return [
        LayerStats("Conv1", cfg.input_count, cfg.conv1.parameter_count, conv1_outputs),
        LayerStats(
            "PrimaryCaps", conv1_outputs, cfg.primary.parameter_count, primary_outputs
        ),
        LayerStats(
            "ClassCaps", primary_outputs, cfg.classcaps_weight_count, class_outputs
        ),
        LayerStats("Coupling Coeff", class_outputs, coupling, class_outputs),
    ]


def parameter_breakdown(config: CapsNetConfig | None = None) -> dict[str, float]:
    """Fraction of trainable parameters per layer (paper Fig 5).

    Includes the run-time coupling coefficients as its own slice, as the
    paper's pie chart does.  For the MNIST configuration this yields
    <1% / 78% / 22% / <1%.
    """
    stats = layer_statistics(config)
    total = sum(s.parameters for s in stats)
    return {s.name: s.parameters / total for s in stats}


def total_weight_bytes(config: CapsNetConfig | None = None, bits_per_weight: int = 8) -> int:
    """On-chip storage needed for all parameters (paper: ~8 MB at 8 bits)."""
    stats = layer_statistics(config)
    total_params = sum(s.parameters for s in stats)
    return total_params * bits_per_weight // 8
