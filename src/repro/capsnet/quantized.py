"""The 8-bit quantized CapsuleNet inference path (golden hardware model).

:class:`QuantizedCapsuleNet` executes the exact integer computation the
CapsAcc hardware performs: weights and activations quantized to 8 bits,
25-bit accumulation, ROM-based squash / exp / square, integer square root
and integer division.  Its outputs are raw integer codes plus float views
for comparison against the float reference.

The routing loop mirrors :func:`repro.capsnet.routing.routing_by_agreement`,
including the CapsAcc first-softmax skip; in the quantized domain the skip
is *still* exact because the uniform initialization ``round(2^frac / n)``
equals the hardware softmax of an all-zero logit row (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.capsnet.hwops import (
    HardwareLuts,
    QuantizedFormats,
    SaturationCounter,
    hw_norm,
    hw_relu,
    hw_softmax,
    hw_squash,
    quantized_conv2d,
)
from repro.capsnet.weights import pseudo_trained_weights, validate_weights
from repro.errors import ShapeError
from repro.fixedpoint.arith import requantize, saturate_raw
from repro.fixedpoint.quantize import from_raw, to_raw


@dataclass
class QuantizedOutput:
    """Raw-integer results of one quantized inference pass."""

    conv1_out_raw: np.ndarray
    primary_raw: np.ndarray
    u_hat_raw: np.ndarray
    class_caps_raw: np.ndarray
    coupling_raw: np.ndarray
    length_sumsq_raw: np.ndarray
    saturation: SaturationCounter
    formats: QuantizedFormats = field(default_factory=QuantizedFormats)

    @property
    def prediction(self) -> int:
        """Predicted class: argmax of the capsule sum-of-squares register."""
        return int(np.argmax(self.length_sumsq_raw))

    @property
    def class_caps(self) -> np.ndarray:
        """Class capsules as real values."""
        return from_raw(self.class_caps_raw, self.formats.caps_data)

    @property
    def primary_capsules(self) -> np.ndarray:
        """Primary capsules as real values."""
        return from_raw(self.primary_raw, self.formats.caps_data)


class QuantizedCapsuleNet:
    """8-bit fixed-point CapsuleNet matching the CapsAcc datapath.

    Parameters
    ----------
    config:
        Architecture; defaults to the paper's MNIST configuration.
    weights:
        Float weight dictionary, quantized once at construction.
    formats:
        Binary-point configuration (defaults reproduce the paper's widths).
    optimized_routing:
        Skip the first softmax (CapsAcc optimization).  Exact in the
        quantized domain as well.
    """

    def __init__(
        self,
        config: CapsNetConfig | None = None,
        weights: dict[str, np.ndarray] | None = None,
        formats: QuantizedFormats | None = None,
        optimized_routing: bool = True,
    ) -> None:
        self.config = config if config is not None else mnist_capsnet_config()
        if weights is None:
            weights = pseudo_trained_weights(self.config)
        validate_weights(self.config, weights)
        self.formats = formats if formats is not None else QuantizedFormats()
        self.luts = HardwareLuts.build(self.formats)
        self.optimized_routing = optimized_routing
        fmts = self.formats
        conv1_acc = fmts.acc(fmts.input, fmts.conv1_weight)
        primary_acc = fmts.acc(fmts.conv1_out, fmts.primary_weight)
        self.raw_weights = {
            "conv1_w": to_raw(weights["conv1_w"], fmts.conv1_weight),
            "conv1_b": to_raw(weights["conv1_b"], conv1_acc),
            "primary_w": to_raw(weights["primary_w"], fmts.primary_weight),
            "primary_b": to_raw(weights["primary_b"], primary_acc),
            "classcaps_w": to_raw(weights["classcaps_w"], fmts.classcaps_weight),
        }

    # ---- layer-by-layer quantized forward -----------------------------------

    def conv1_forward(self, image_raw: np.ndarray, counter: SaturationCounter) -> np.ndarray:
        """Conv1 + ReLU; returns raw values in ``formats.conv1_out``."""
        fmts = self.formats
        acc_fmt = fmts.acc(fmts.input, fmts.conv1_weight)
        acc = quantized_conv2d(
            image_raw,
            self.raw_weights["conv1_w"],
            self.raw_weights["conv1_b"],
            self.config.conv1.stride,
            acc_fmt,
            counter,
            site="conv1",
        )
        return requantize(hw_relu(acc), acc_fmt, fmts.conv1_out)

    def primary_forward(self, conv1_raw: np.ndarray, counter: SaturationCounter) -> np.ndarray:
        """PrimaryCaps conv + squash; returns raw capsules in ``caps_data``."""
        fmts = self.formats
        acc_fmt = fmts.acc(fmts.conv1_out, fmts.primary_weight)
        acc = quantized_conv2d(
            conv1_raw,
            self.raw_weights["primary_w"],
            self.raw_weights["primary_b"],
            self.config.primary.stride,
            acc_fmt,
            counter,
            site="primary_conv",
        )
        preact = requantize(acc, acc_fmt, fmts.primary_preact)
        spec = self.config.primary
        out_h = out_w = self.config.primary_out_size
        grouped = preact.reshape(spec.capsule_channels, spec.capsule_dim, out_h, out_w)
        capsules = grouped.transpose(2, 3, 0, 1).reshape(-1, spec.capsule_dim)
        return hw_squash(capsules, fmts.primary_preact, self.luts, fmts)

    def classcaps_predictions(
        self, primary_raw: np.ndarray, counter: SaturationCounter
    ) -> np.ndarray:
        """Prediction vectors u_hat in ``caps_data`` format.

        ``u_hat[i, j, :] = W[i, j] @ u[i]`` computed as integer dot products
        with 25-bit accumulation.
        """
        fmts = self.formats
        acc_fmt = fmts.acc(fmts.caps_data, fmts.classcaps_weight)
        w = self.raw_weights["classcaps_w"]
        acc = np.einsum("ijod,id->ijo", w, primary_raw, dtype=np.int64)
        counter.record("classcaps_fc", acc, acc_fmt)
        acc = saturate_raw(acc, acc_fmt)
        return requantize(acc, acc_fmt, fmts.caps_data)

    def route(
        self, u_hat_raw: np.ndarray, counter: SaturationCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quantized routing-by-agreement; returns ``(v_raw, c_raw)``."""
        fmts = self.formats
        num_in, num_out, _ = u_hat_raw.shape
        iterations = self.config.classcaps.routing_iterations
        b_raw = np.zeros((num_in, num_out), dtype=np.int64)
        sum_acc_fmt = fmts.acc(fmts.caps_data, fmts.coupling)
        upd_acc_fmt = fmts.acc(fmts.caps_data, fmts.caps_data)

        if self.optimized_routing:
            c_raw = np.full(
                (num_in, num_out),
                self._uniform_coupling_code(num_out),
                dtype=np.int64,
            )
        else:
            c_raw = hw_softmax(b_raw, self.luts, fmts, axis=1)

        v_raw = np.zeros((num_out, u_hat_raw.shape[2]), dtype=np.int64)
        for iteration in range(1, iterations + 1):
            if iteration > 1:
                c_raw = hw_softmax(b_raw, self.luts, fmts, axis=1)
            s_acc = np.einsum("ij,ijo->jo", c_raw, u_hat_raw, dtype=np.int64)
            counter.record("routing_sum", s_acc, sum_acc_fmt)
            s_acc = saturate_raw(s_acc, sum_acc_fmt)
            s_raw = requantize(s_acc, sum_acc_fmt, fmts.primary_preact)
            v_raw = hw_squash(s_raw, fmts.primary_preact, self.luts, fmts)
            if iteration < iterations:
                agree = np.einsum("ijo,jo->ij", u_hat_raw, v_raw, dtype=np.int64)
                counter.record("routing_update", agree, upd_acc_fmt)
                agree = saturate_raw(agree, upd_acc_fmt)
                delta = requantize(agree, upd_acc_fmt, fmts.logits)
                b_raw = saturate_raw(b_raw + delta, fmts.logits)
        return v_raw, c_raw

    def _uniform_coupling_code(self, num_out: int) -> int:
        """Raw code of the uniform coupling coefficient ``1 / num_out``.

        Matches what the hardware softmax produces on an all-zero logit row
        (same exp code for every entry, divided by ``num_out`` copies of
        itself), so the optimized and textbook variants stay bit-identical.
        """
        fmts = self.formats
        zero_row = np.zeros((1, num_out), dtype=np.int64)
        return int(hw_softmax(zero_row, self.luts, fmts, axis=1)[0, 0])

    def forward(self, image: np.ndarray) -> QuantizedOutput:
        """Run one quantized inference pass on a ``(H, W)`` or ``(C, H, W)`` image."""
        if image.ndim == 2:
            image = image[np.newaxis]
        expected = (self.config.in_channels, self.config.image_size, self.config.image_size)
        if image.shape != expected:
            raise ShapeError(f"image shape {image.shape} != {expected}")
        fmts = self.formats
        counter = SaturationCounter()
        image_raw = to_raw(image, fmts.input)
        conv1_raw = self.conv1_forward(image_raw, counter)
        primary_raw = self.primary_forward(conv1_raw, counter)
        u_hat_raw = self.classcaps_predictions(primary_raw, counter)
        v_raw, c_raw = self.route(u_hat_raw, counter)
        _, sumsq = hw_norm(v_raw, fmts.caps_data, self.luts, fmts)
        return QuantizedOutput(
            conv1_out_raw=conv1_raw,
            primary_raw=primary_raw,
            u_hat_raw=u_hat_raw,
            class_caps_raw=v_raw,
            coupling_raw=c_raw,
            length_sumsq_raw=sumsq,
            saturation=counter,
            formats=fmts,
        )

    def predict(self, image: np.ndarray) -> int:
        """Classify one image with the quantized network."""
        return self.forward(image).prediction

    def predict_batch(self, images: np.ndarray) -> np.ndarray:
        """Classify a batch of images of shape ``(N, H, W)`` or ``(N, C, H, W)``."""
        return np.array([self.predict(image) for image in images], dtype=np.int64)
