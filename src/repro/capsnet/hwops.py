"""Bit-accurate quantized operators mirroring the CapsAcc datapath.

These functions are the *golden model* of what the accelerator hardware
computes: integer GEMMs with 25-bit accumulation, the norm unit (square LUT,
accumulate, integer square root), the squash LUT, and the softmax unit (max
subtraction, exp LUT, accumulate, integer division).  The cycle-level
simulator in :mod:`repro.hw` must agree with these functions bit-for-bit —
that equivalence is the reproduction of the paper's functional-compliance
claim and is asserted by the integration tests.

All values are raw integer codes (``int64`` numpy arrays) tagged by the
formats in :class:`QuantizedFormats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.capsnet.ops import im2col
from repro.errors import ShapeError
from repro.fixedpoint import formats as F
from repro.fixedpoint.arith import requantize, saturate_raw
from repro.fixedpoint.luts import LookupTable, LookupTable2D
from repro.fixedpoint.luts import build_exp_lut, build_square_lut, build_squash_lut, fixed_sqrt
from repro.fixedpoint.formats import QFormat


@dataclass(frozen=True)
class QuantizedFormats:
    """Binary-point assignments for every tensor in the quantized network.

    Bit widths follow the paper (8-bit data/weights, 25-bit accumulators,
    6+5-bit squash LUT inputs, 12-bit square LUT input, 8-bit exp LUT);
    binary-point positions are the design choice documented in
    :mod:`repro.fixedpoint.formats`.
    """

    input: QFormat = QFormat(8, 7)
    conv1_weight: QFormat = F.WEIGHT8
    conv1_out: QFormat = QFormat(8, 4)
    primary_weight: QFormat = F.WEIGHT8
    primary_preact: QFormat = QFormat(8, 4)
    caps_data: QFormat = QFormat(8, 6)
    classcaps_weight: QFormat = F.WEIGHT8
    coupling: QFormat = F.WEIGHT8
    logits: QFormat = F.EXP_IN8
    squash_in: QFormat = F.SQUASH_IN6
    norm: QFormat = F.NORM5
    square_in: QFormat = F.SQUARE_IN12
    square_out: QFormat = F.SQUARE_OUT8
    exp_out: QFormat = F.EXP_OUT8
    acc_bits: int = 25

    def acc(self, data_fmt: QFormat, weight_fmt: QFormat) -> QFormat:
        """Accumulator format for a data/weight product chain."""
        return QFormat(self.acc_bits, data_fmt.frac_bits + weight_fmt.frac_bits)


@dataclass
class HardwareLuts:
    """The three activation ROMs, built once per format configuration."""

    squash: LookupTable2D
    square: LookupTable
    exp: LookupTable

    @classmethod
    def build(cls, fmts: QuantizedFormats | None = None) -> "HardwareLuts":
        """Construct the ROM set for a format configuration."""
        fmts = fmts if fmts is not None else QuantizedFormats()
        return cls(
            squash=build_squash_lut(fmts.squash_in, fmts.norm, fmts.caps_data),
            square=build_square_lut(fmts.square_in, fmts.square_out),
            exp=build_exp_lut(fmts.logits, fmts.exp_out),
        )


@dataclass
class SaturationCounter:
    """Diagnostic counter of values clipped by requantization/saturation."""

    events: int = 0
    total: int = 0
    sites: dict = field(default_factory=dict)

    def record(self, site: str, raw: np.ndarray, fmt: QFormat) -> None:
        """Count how many raw codes in ``raw`` lie outside ``fmt``."""
        arr = np.asarray(raw)
        clipped = int(np.count_nonzero((arr < fmt.raw_min) | (arr > fmt.raw_max)))
        self.events += clipped
        self.total += arr.size
        if clipped:
            self.sites[site] = self.sites.get(site, 0) + clipped

    @property
    def rate(self) -> float:
        """Fraction of processed values that saturated."""
        return self.events / self.total if self.total else 0.0


def quantized_matmul(
    data_raw: np.ndarray,
    weight_raw: np.ndarray,
    acc_fmt: QFormat,
    counter: SaturationCounter | None = None,
    site: str = "matmul",
) -> np.ndarray:
    """Integer GEMM ``data @ weight`` with saturation at the accumulator width.

    Products are exact in ``int64``; the final sums saturate to ``acc_fmt``
    (the 25-bit partial-sum clamp at accumulator readout).
    """
    acc = np.asarray(data_raw, dtype=np.int64) @ np.asarray(weight_raw, dtype=np.int64)
    if counter is not None:
        counter.record(site, acc, acc_fmt)
    return saturate_raw(acc, acc_fmt)


def chunked_saturating_matmul(
    data_raw: np.ndarray,
    weight_raw: np.ndarray,
    acc_fmt: QFormat,
    chunk_rows: int,
) -> np.ndarray:
    """Integer GEMM with per-K-chunk saturation, batched over leading axes.

    Reproduces the systolic array's accumulation order exactly: the K axis
    is split into chunks of ``chunk_rows`` (one weight tile's worth of
    rows); each chunk's partial product saturates to ``acc_fmt`` at the
    accumulator entry, and the running sum saturates again after every
    chunk.  ``data_raw`` is ``(..., M, K)`` and ``weight_raw`` is
    ``(K, N)`` or ``(..., K, N)`` — leading axes broadcast, so one call
    executes a whole batch of independent products (the grouped-GEMM path
    of the batched execution engine).

    When intermediates stay below 2**53 the arithmetic is performed with
    (much faster) BLAS float64 GEMMs — every value is then exactly
    representable, so results are bit-identical to int64.  When, in
    addition, no element can reach the accumulator limit at *any* chunk
    boundary, the chunk loop itself is skipped: the clipped accumulation
    degenerates to the plain product.
    """
    data = np.asarray(data_raw, dtype=np.int64)
    weights = np.asarray(weight_raw, dtype=np.int64)
    if data.shape[-1] != weights.shape[-2]:
        raise ShapeError(
            f"GEMM shapes inconsistent: data {data.shape}, weights {weights.shape}"
        )
    k = data.shape[-1]
    max_d = int(max(data.max(initial=0), -data.min(initial=0)))
    max_w = int(max(weights.max(initial=0), -weights.min(initial=0)))
    if k * max_d * max_w < 2**53:
        data_op: np.ndarray = data.astype(np.float64)
        weight_op: np.ndarray = weights.astype(np.float64)
        # No-saturation fast path: every prefix of the chunked accumulation
        # is bounded per element by sum_k |d|*|w| <= rowsum(|d|) * max|w|.
        # If that bound never reaches either accumulator limit (for
        # unsigned formats the lower limit of 0 disables the path), no
        # clip can trigger at any chunk boundary, so the plain product is
        # bit-identical to the chunked clipped accumulation — and one GEMM
        # replaces the chunk loop.  When the bound fails, go straight to
        # the chunk loop: genuinely saturating inputs shouldn't pay for a
        # second full-size bound GEMM first.
        limit = min(acc_fmt.raw_max, -acc_fmt.raw_min)
        row_bound = np.max(np.abs(data_op).sum(axis=-1), initial=0.0) * max_w
        if row_bound <= limit:
            return (data_op @ weight_op).astype(np.int64)
    elif chunk_rows * max_d * max_w < 2**53:
        data_op = data.astype(np.float64)
        weight_op = weights.astype(np.float64)
    else:
        data_op, weight_op = data, weights
    use_float = data_op.dtype == np.float64
    out_shape = np.broadcast_shapes(data.shape[:-2], weights.shape[:-2]) + (
        data.shape[-2],
        weights.shape[-1],
    )
    acc = np.zeros(out_shape, dtype=np.int64)
    for lo in range(0, k, chunk_rows):
        hi = min(lo + chunk_rows, k)
        partial = data_op[..., :, lo:hi] @ weight_op[..., lo:hi, :]
        if use_float:
            partial = partial.astype(np.int64)
        np.clip(partial, acc_fmt.raw_min, acc_fmt.raw_max, out=partial)
        acc += partial
        np.clip(acc, acc_fmt.raw_min, acc_fmt.raw_max, out=acc)
    return acc


def quantized_conv2d(
    x_raw: np.ndarray,
    weight_raw: np.ndarray,
    bias_raw: np.ndarray | None,
    stride: int,
    acc_fmt: QFormat,
    counter: SaturationCounter | None = None,
    site: str = "conv",
) -> np.ndarray:
    """Integer valid convolution; returns accumulator-format raw values.

    ``x_raw`` is ``(C, H, W)``, ``weight_raw`` is ``(O, C, K, K)``; the bias
    must already be expressed in ``acc_fmt``.
    """
    out_channels = weight_raw.shape[0]
    kernel_size = weight_raw.shape[2]
    if weight_raw.shape[2] != weight_raw.shape[3]:
        raise ShapeError("only square kernels are supported")
    patches = im2col(np.asarray(x_raw, dtype=np.int64), kernel_size, stride)
    wmat = np.asarray(weight_raw, dtype=np.int64).reshape(out_channels, -1)
    acc = patches @ wmat.T
    if bias_raw is not None:
        acc = acc + np.asarray(bias_raw, dtype=np.int64)
    if counter is not None:
        counter.record(site, acc, acc_fmt)
    acc = saturate_raw(acc, acc_fmt)
    from repro.capsnet.config import conv_output_size

    out_h = conv_output_size(x_raw.shape[1], kernel_size, stride)
    out_w = conv_output_size(x_raw.shape[2], kernel_size, stride)
    return acc.T.reshape(out_channels, out_h, out_w)


def hw_relu(raw: np.ndarray) -> np.ndarray:
    """ReLU on raw codes (sign is preserved by two's complement)."""
    return np.maximum(np.asarray(raw, dtype=np.int64), 0)


def hw_norm(
    vec_raw: np.ndarray,
    in_fmt: QFormat,
    luts: HardwareLuts,
    fmts: QuantizedFormats,
) -> tuple[np.ndarray, np.ndarray]:
    """The norm unit (paper Fig 11f) over the last axis of ``vec_raw``.

    Each component is requantized onto the square-LUT input grid, squared via
    the LUT, accumulated in an internal register, and square-rooted into the
    5-bit norm format.  Returns ``(norm_raw, sum_of_squares_raw)``; the sum
    of squares is in ``square_out`` format summed exactly (register width
    exceeds 8 bits) and is also used directly for classification, where the
    monotonicity of x^2 makes the square root unnecessary.
    """
    square_in = requantize(vec_raw, in_fmt, fmts.square_in)
    squares = luts.square.lookup(square_in)
    sumsq = np.sum(squares, axis=-1, dtype=np.int64)
    norm = fixed_sqrt(sumsq, fmts.square_out, fmts.norm)
    return norm, sumsq


def hw_squash(
    vec_raw: np.ndarray,
    in_fmt: QFormat,
    luts: HardwareLuts,
    fmts: QuantizedFormats,
) -> np.ndarray:
    """The squash unit (paper Fig 11e) over the last axis of ``vec_raw``.

    The norm arrives from the norm unit; each component is requantized onto
    the 6-bit LUT grid and looked up against the 5-bit norm, producing 8-bit
    capsule components.
    """
    norm, _ = hw_norm(vec_raw, in_fmt, luts, fmts)
    squash_in = requantize(vec_raw, in_fmt, fmts.squash_in)
    norm_b = np.broadcast_to(np.expand_dims(norm, -1), squash_in.shape)
    return luts.squash.lookup(squash_in, norm_b)


def hw_softmax(
    logits_raw: np.ndarray,
    luts: HardwareLuts,
    fmts: QuantizedFormats,
    axis: int = -1,
) -> np.ndarray:
    """The softmax unit (paper Fig 11g) along ``axis``.

    The control logic subtracts the running maximum (keeping exp-LUT inputs
    non-positive), looks up ``exp``, accumulates the denominator in a
    register, and divides with round-to-nearest integer division.  The
    output lands in the coupling-coefficient format so it can feed the
    weight port of the systolic array directly.
    """
    logits = np.asarray(logits_raw, dtype=np.int64)
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    shifted = saturate_raw(shifted, fmts.logits)
    exps = luts.exp.lookup(shifted)
    denom = np.sum(exps, axis=axis, keepdims=True, dtype=np.int64)
    scale = 1 << fmts.coupling.frac_bits
    # Round-to-nearest integer division: (2*n*scale + d) // (2*d).
    numer = 2 * exps * scale + denom
    coupling = numer // (2 * denom)
    return saturate_raw(coupling, fmts.coupling)
