"""Routing-by-agreement (paper Fig 4) and the CapsAcc optimization.

The textbook algorithm initializes the routing logits ``b_ij = 0`` and starts
every inference by computing ``c_i = softmax(b_i)`` — a softmax over all-zero
rows, which always yields the uniform distribution.  CapsAcc's algorithmic
optimization (Section V-C) therefore skips that first softmax and directly
initializes the coupling coefficients ``c_ij = 1 / num_output_capsules``.
Both variants are implemented here and are provably identical in output;
:mod:`tests.capsnet.test_routing` asserts the equality, and the performance
model charges the optimized variant zero softmax cycles in iteration one.

The routing loop structure matches the paper's measured step sequence
(Fig 9): ``softmax -> sum -> squash`` every iteration, with an ``update``
between iterations (so ``iterations - 1`` updates in total).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.capsnet.ops import softmax, squash
from repro.errors import ShapeError


@dataclass
class RoutingStep:
    """One recorded step of the routing loop (for tracing / perf models)."""

    name: str
    iteration: int
    skipped: bool = False


@dataclass
class RoutingResult:
    """Outputs of routing-by-agreement.

    Attributes
    ----------
    v:
        Output capsules, shape ``(num_out, out_dim)``.
    c:
        Final coupling coefficients, shape ``(num_in, num_out)``.
    b:
        Final routing logits, shape ``(num_in, num_out)``.
    steps:
        The executed (and skipped) steps in order, for performance tracing.
    s_history / v_history:
        Pre- and post-squash capsule states per iteration (used by the
        quantized path comparison and by tests).
    """

    v: np.ndarray
    c: np.ndarray
    b: np.ndarray
    steps: list[RoutingStep] = field(default_factory=list)
    s_history: list[np.ndarray] = field(default_factory=list)
    v_history: list[np.ndarray] = field(default_factory=list)


def routing_by_agreement(
    u_hat: np.ndarray,
    num_iterations: int = 3,
    optimized: bool = False,
) -> RoutingResult:
    """Route prediction vectors to output capsules.

    Parameters
    ----------
    u_hat:
        Prediction vectors ``u_hat[i, j, :]`` of shape
        ``(num_in, num_out, out_dim)``.
    num_iterations:
        Routing iterations (3 for the MNIST CapsuleNet).
    optimized:
        Apply the CapsAcc first-softmax skip: initialize the coupling
        coefficients uniformly instead of running a softmax over the all-zero
        logits.  Functionally identical to the textbook algorithm.

    Returns
    -------
    RoutingResult
        Final capsules, coefficients, logits and the executed step trace.
    """
    if u_hat.ndim != 3:
        raise ShapeError(f"u_hat must be (num_in, num_out, out_dim), got {u_hat.shape}")
    if num_iterations < 1:
        raise ShapeError("routing needs at least one iteration")
    num_in, num_out, _ = u_hat.shape
    b = np.zeros((num_in, num_out), dtype=u_hat.dtype)
    result = RoutingResult(v=np.empty(0), c=np.empty(0), b=b)

    c = np.full((num_in, num_out), 1.0 / num_out, dtype=u_hat.dtype)
    v = np.zeros((num_out, u_hat.shape[2]), dtype=u_hat.dtype)
    for iteration in range(1, num_iterations + 1):
        if iteration == 1 and optimized:
            # CapsAcc optimization: softmax(0) is uniform, so initialize
            # c directly and skip the computation.
            result.steps.append(RoutingStep("softmax", iteration, skipped=True))
        else:
            c = softmax(b, axis=1)
            result.steps.append(RoutingStep("softmax", iteration))
        s = np.einsum("ij,ijd->jd", c, u_hat)
        result.steps.append(RoutingStep("sum", iteration))
        v = squash(s, axis=-1)
        result.steps.append(RoutingStep("squash", iteration))
        result.s_history.append(s)
        result.v_history.append(v)
        if iteration < num_iterations:
            b = b + np.einsum("ijd,jd->ij", u_hat, v)
            result.steps.append(RoutingStep("update", iteration))

    result.v = v
    result.c = c
    result.b = b
    return result


def routing_step_sequence(num_iterations: int, optimized: bool) -> list[str]:
    """Names of routing steps in execution order (labels of paper Fig 9/17).

    The sequence is ``Softmax1, Sum1, Squash1, Update1, Softmax2, ...`` with
    no update after the final iteration.  When ``optimized`` the first
    softmax is tagged ``(skipped)``.
    """
    names: list[str] = []
    for iteration in range(1, num_iterations + 1):
        tag = " (skipped)" if iteration == 1 and optimized else ""
        names.append(f"Softmax{iteration}{tag}")
        names.append(f"Sum{iteration}")
        names.append(f"Squash{iteration}")
        if iteration < num_iterations:
            names.append(f"Update{iteration}")
    return names
