"""The complete CapsuleNet model (float reference path).

:class:`CapsuleNet` composes the three layers of paper Fig 1 and exposes the
intermediate tensors that the dataflow mappings, the quantized path and the
experiments need (conv activations, primary capsules, prediction vectors,
routing trace and class capsule lengths).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.capsnet.layers import ClassCapsLayer, Conv1Layer, PrimaryCapsLayer
from repro.capsnet.ops import capsule_lengths
from repro.capsnet.routing import RoutingResult
from repro.capsnet.weights import pseudo_trained_weights, validate_weights
from repro.errors import ShapeError


@dataclass
class ModelOutput:
    """All intermediate and final tensors of one inference pass."""

    conv1_out: np.ndarray
    primary_capsules: np.ndarray
    u_hat: np.ndarray
    routing: RoutingResult
    class_capsules: np.ndarray
    lengths: np.ndarray

    @property
    def prediction(self) -> int:
        """Predicted class (argmax of capsule lengths)."""
        return int(np.argmax(self.lengths))


class CapsuleNet:
    """The MNIST CapsuleNet of the paper (Fig 1), float reference.

    Parameters
    ----------
    config:
        Architecture; defaults to the paper's MNIST configuration.
    weights:
        Weight dictionary (see :mod:`repro.capsnet.weights`); defaults to
        deterministic pseudo-trained weights.
    optimized_routing:
        Use the CapsAcc first-softmax-skip routing variant.  Does not change
        any output (verified by tests); it changes the recorded step trace.
    """

    def __init__(
        self,
        config: CapsNetConfig | None = None,
        weights: dict[str, np.ndarray] | None = None,
        optimized_routing: bool = False,
    ) -> None:
        self.config = config if config is not None else mnist_capsnet_config()
        if weights is None:
            weights = pseudo_trained_weights(self.config)
        validate_weights(self.config, weights)
        self.weights = weights
        self.optimized_routing = optimized_routing
        self.conv1 = Conv1Layer(self.config.conv1, weights["conv1_w"], weights["conv1_b"])
        self.primary = PrimaryCapsLayer(
            self.config.primary, weights["primary_w"], weights["primary_b"]
        )
        self.classcaps = ClassCapsLayer(
            self.config.classcaps,
            weights["classcaps_w"],
            num_in_capsules=self.config.num_primary_capsules,
            in_dim=self.config.primary.capsule_dim,
        )

    def forward(self, image: np.ndarray) -> ModelOutput:
        """Run one inference pass on a ``(C, H, W)`` or ``(H, W)`` image."""
        x = self._check_image(image)
        conv1_out = self.conv1.forward(x)
        primary = self.primary.forward(conv1_out)
        u_hat = self.classcaps.predictions(primary)
        routing = self.classcaps.forward(primary, optimized_routing=self.optimized_routing)
        lengths = capsule_lengths(routing.v)
        return ModelOutput(
            conv1_out=conv1_out,
            primary_capsules=primary,
            u_hat=u_hat,
            routing=routing,
            class_capsules=routing.v,
            lengths=lengths,
        )

    def predict(self, image: np.ndarray) -> int:
        """Classify one image."""
        return self.forward(image).prediction

    def predict_batch(self, images: np.ndarray) -> np.ndarray:
        """Classify a batch of images of shape ``(N, H, W)`` or ``(N, C, H, W)``."""
        return np.array([self.predict(img) for img in images], dtype=np.int64)

    def _check_image(self, image: np.ndarray) -> np.ndarray:
        if image.ndim == 2:
            image = image[np.newaxis]
        expected = (self.config.in_channels, self.config.image_size, self.config.image_size)
        if image.shape != expected:
            raise ShapeError(f"image shape {image.shape} != {expected}")
        return np.asarray(image, dtype=np.float64)
