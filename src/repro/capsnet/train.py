"""Lightweight ClassCaps trainer for the accuracy-parity experiment.

The paper runs inference with the trained network of Sabour et al. and
reports that the hardware preserves its classification accuracy because the
datapath is functionally compliant.  To exercise that claim end to end we
need *some* trained weights.  Full CapsuleNet training (backprop through two
convolutions and unrolled routing) is out of the paper's scope; instead this
module trains only the ClassCaps transformation matrices on frozen
convolutional features — an extreme-learning-machine-style setup that
reaches high accuracy on the synthetic digits and yields a real network on
which float-vs-quantized accuracy can be compared.

The gradient is exact under fixed coupling coefficients (the coefficients
are re-estimated by routing every forward pass, coordinate-descent style):

* ``lengths[j] = ||v_j|| = n_j^2 / (1 + n_j^2)`` with ``n_j = ||s_j||``
* ``d lengths[j] / d s[j,o] = 2 s[j,o] / (1 + n_j^2)^2``
* ``d s[j,o] / d W[i,j,o,d] = c[i,j] * u[i,d]``
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.capsnet.config import CapsNetConfig
from repro.capsnet.layers import Conv1Layer, PrimaryCapsLayer
from repro.capsnet.routing import routing_by_agreement
from repro.capsnet.weights import pseudo_trained_weights
from repro.data.dataset import Dataset
from repro.errors import ConfigError


@dataclass
class TrainResult:
    """Fitted weights plus training diagnostics."""

    weights: dict[str, np.ndarray]
    loss_history: list[float] = field(default_factory=list)
    train_accuracy: float = 0.0


def extract_primary_features(
    config: CapsNetConfig, weights: dict[str, np.ndarray], images: np.ndarray
) -> np.ndarray:
    """Primary capsules for a batch of images, shape ``(N, num_caps, dim)``."""
    conv1 = Conv1Layer(config.conv1, weights["conv1_w"], weights["conv1_b"])
    primary = PrimaryCapsLayer(config.primary, weights["primary_w"], weights["primary_b"])
    features = np.empty(
        (len(images), config.num_primary_capsules, config.primary.capsule_dim)
    )
    for index, image in enumerate(images):
        x = image[np.newaxis] if image.ndim == 2 else image
        features[index] = primary.forward(conv1.forward(x))
    return features


def _margin_loss_gradient(
    lengths: np.ndarray,
    target: int,
    m_plus: float,
    m_minus: float,
    lam: float,
) -> tuple[float, np.ndarray]:
    """Margin loss value and its gradient w.r.t. the capsule lengths."""
    present = np.maximum(0.0, m_plus - lengths)
    absent = np.maximum(0.0, lengths - m_minus)
    mask = np.zeros_like(lengths)
    mask[target] = 1.0
    loss = float(np.sum(mask * present**2 + lam * (1.0 - mask) * absent**2))
    grad = -2.0 * mask * present + 2.0 * lam * (1.0 - mask) * absent
    return loss, grad


def train_classcaps(
    config: CapsNetConfig,
    features: np.ndarray,
    labels: np.ndarray,
    epochs: int = 20,
    learning_rate: float = 0.05,
    weight_decay: float = 1e-4,
    seed: int = 11,
    m_plus: float = 0.9,
    m_minus: float = 0.1,
    lam: float = 0.5,
    max_weight: float = 1.5,
) -> TrainResult:
    """Fit the ClassCaps matrices by SGD on the margin loss.

    Parameters
    ----------
    config:
        Network architecture (defines capsule counts and dimensions).
    features:
        Primary capsules per example, ``(N, num_caps, in_dim)``.
    labels:
        Class index per example.
    epochs / learning_rate / weight_decay / seed:
        Optimization hyper-parameters.
    m_plus / m_minus / lam:
        Margin-loss hyper-parameters (paper defaults).
    max_weight:
        Hard clamp keeping weights inside the 8-bit fixed-point range so the
        fitted network quantizes without saturation.
    """
    num_caps, in_dim = features.shape[1], features.shape[2]
    if num_caps != config.num_primary_capsules or in_dim != config.primary.capsule_dim:
        raise ConfigError("feature shape does not match the configuration")
    num_classes = config.classcaps.num_classes
    out_dim = config.classcaps.out_dim
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(in_dim)
    w = scale * rng.standard_normal((num_caps, num_classes, out_dim, in_dim))

    result = TrainResult(weights={})
    for _ in range(epochs):
        order = rng.permutation(len(features))
        epoch_loss = 0.0
        for index in order:
            u = features[index]
            target = int(labels[index])
            u_hat = np.einsum("ijod,id->ijo", w, u)
            routing = routing_by_agreement(
                u_hat, config.classcaps.routing_iterations, optimized=True
            )
            s = routing.s_history[-1]
            norms_sq = np.sum(s * s, axis=-1)
            lengths = norms_sq / (1.0 + norms_sq)
            loss, dl_dlen = _margin_loss_gradient(lengths, target, m_plus, m_minus, lam)
            epoch_loss += loss
            # dL/ds[j,o] = dL/dlen[j] * 2 s[j,o] / (1 + n_j^2)^2
            dl_ds = dl_dlen[:, np.newaxis] * 2.0 * s / (1.0 + norms_sq[:, np.newaxis]) ** 2
            # dL/dW[i,j,o,d] = dL/ds[j,o] * c[i,j] * u[i,d]
            grad = np.einsum("jo,ij,id->ijod", dl_ds, routing.c, u)
            w -= learning_rate * (grad + weight_decay * w)
            np.clip(w, -max_weight, max_weight, out=w)
        result.loss_history.append(epoch_loss / len(features))

    result.weights = {"classcaps_w": w}
    result.train_accuracy = evaluate_classcaps(config, w, features, labels)
    return result


def evaluate_classcaps(
    config: CapsNetConfig,
    classcaps_w: np.ndarray,
    features: np.ndarray,
    labels: np.ndarray,
) -> float:
    """Classification accuracy of ClassCaps weights on extracted features."""
    correct = 0
    for u, label in zip(features, labels):
        u_hat = np.einsum("ijod,id->ijo", classcaps_w, u)
        routing = routing_by_agreement(
            u_hat, config.classcaps.routing_iterations, optimized=True
        )
        lengths = np.linalg.norm(routing.v, axis=-1)
        if int(np.argmax(lengths)) == int(label):
            correct += 1
    return correct / len(features)


def train_on_dataset(
    config: CapsNetConfig,
    dataset: Dataset,
    epochs: int = 20,
    learning_rate: float = 0.05,
    seed: int = 11,
) -> tuple[dict[str, np.ndarray], TrainResult]:
    """Convenience: frozen-feature training on a dataset.

    Returns a complete weight dictionary (frozen conv weights + fitted
    ClassCaps weights) and the training diagnostics.
    """
    base = pseudo_trained_weights(config, seed=seed)
    features = extract_primary_features(config, base, dataset.images)
    result = train_classcaps(
        config, features, dataset.labels, epochs=epochs, learning_rate=learning_rate, seed=seed
    )
    fitted = dict(base)
    fitted["classcaps_w"] = result.weights["classcaps_w"]
    return fitted, result
