"""Numerical building blocks of the CapsuleNet (float reference).

Everything is implemented directly on numpy arrays: im2col-based valid
convolution, ReLU, the squashing nonlinearity of Equation (1), a numerically
stable softmax and the margin loss used by the lightweight trainer.

The squashing function and its derivative (paper Fig 3, peak of the
derivative at x = 1/sqrt(3) ~ 0.577, value ~ 0.6495) are exposed in scalar
form for the Fig 3 experiment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def im2col(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """Extract convolution patches from a ``(C, H, W)`` tensor.

    Returns an array of shape ``(out_h * out_w, C * kernel_size**2)`` whose
    rows are flattened receptive fields ordered row-major over output
    positions.  Works for any dtype (the quantized path reuses it on raw
    integer arrays).
    """
    if x.ndim != 3:
        raise ShapeError(f"im2col expects (C, H, W), got shape {x.shape}")
    channels, height, width = x.shape
    if height < kernel_size or width < kernel_size:
        raise ShapeError(
            f"input {height}x{width} smaller than kernel {kernel_size}"
        )
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (kernel_size, kernel_size), axis=(1, 2)
    )
    windows = windows[:, ::stride, ::stride]
    out_h, out_w = windows.shape[1], windows.shape[2]
    patches = windows.transpose(1, 2, 0, 3, 4).reshape(
        out_h * out_w, channels * kernel_size * kernel_size
    )
    return patches


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
) -> np.ndarray:
    """Valid 2-D convolution of a single image.

    Parameters
    ----------
    x:
        Input tensor of shape ``(C, H, W)``.
    weight:
        Filters of shape ``(O, C, K, K)``.
    bias:
        Optional per-output-channel bias of shape ``(O,)``.
    stride:
        Convolution stride (equal in both dimensions).

    Returns
    -------
    numpy.ndarray
        Output tensor of shape ``(O, out_h, out_w)``.
    """
    out_channels, in_channels, kernel_size, kernel_size_w = weight.shape
    if kernel_size != kernel_size_w:
        raise ShapeError("only square kernels are supported")
    if x.shape[0] != in_channels:
        raise ShapeError(
            f"input has {x.shape[0]} channels, weight expects {in_channels}"
        )
    from repro.capsnet.config import conv_output_size

    out_h = conv_output_size(x.shape[1], kernel_size, stride)
    out_w = conv_output_size(x.shape[2], kernel_size, stride)
    patches = im2col(x, kernel_size, stride)
    wmat = weight.reshape(out_channels, -1)
    out = patches @ wmat.T
    if bias is not None:
        out = out + bias
    return out.T.reshape(out_channels, out_h, out_w)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def squash(s: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Squashing nonlinearity of Equation (1), applied along ``axis``.

    ``v = (||s||^2 / (1 + ||s||^2)) * (s / ||s||) = s * ||s|| / (1 + ||s||^2)``.
    The zero vector maps to the zero vector.
    """
    norm = np.linalg.norm(s, axis=axis, keepdims=True)
    return s * norm / (1.0 + norm * norm + eps)


def squash_scalar(x: np.ndarray | float) -> np.ndarray:
    """Single-dimensional squashing (paper Fig 3): ``y = x^2 / (1 + x^2)``.

    For a one-dimensional capsule with non-negative input, the squashed
    magnitude is ``x * |x| / (1 + x^2)``; the paper plots the non-negative
    branch.
    """
    arr = np.asarray(x, dtype=np.float64)
    return arr * np.abs(arr) / (1.0 + arr * arr)


def squash_scalar_derivative(x: np.ndarray | float) -> np.ndarray:
    """First derivative of :func:`squash_scalar` for non-negative input.

    ``d/dx [x^2/(1+x^2)] = 2x / (1+x^2)^2``; its maximum sits at
    ``x = 1/sqrt(3)`` with value ``3*sqrt(3)/8 ~ 0.6495`` — the paper's
    reported peak (0.5767, 0.6495).
    """
    arr = np.asarray(x, dtype=np.float64)
    return 2.0 * np.abs(arr) / (1.0 + arr * arr) ** 2


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def capsule_lengths(v: np.ndarray, axis: int = -1) -> np.ndarray:
    """Euclidean length of each capsule vector (the class scores)."""
    return np.linalg.norm(v, axis=axis)


def margin_loss(
    lengths: np.ndarray,
    target: int,
    m_plus: float = 0.9,
    m_minus: float = 0.1,
    lam: float = 0.5,
) -> float:
    """Margin loss of Sabour et al. for a single example.

    Parameters
    ----------
    lengths:
        Capsule lengths per class, shape ``(num_classes,)``.
    target:
        Ground-truth class index.
    m_plus / m_minus / lam:
        Margin hyper-parameters (paper defaults).
    """
    present = np.maximum(0.0, m_plus - lengths) ** 2
    absent = np.maximum(0.0, lengths - m_minus) ** 2
    mask = np.zeros_like(lengths)
    mask[target] = 1.0
    losses = mask * present + lam * (1.0 - mask) * absent
    return float(np.sum(losses))
