"""CapsuleNet architecture configuration (paper Fig 1).

The MNIST CapsuleNet consists of three layers:

* **Conv1** — 9x9 convolution, 256 channels, stride 1, ReLU.
* **PrimaryCaps** — 9x9 convolution, stride 2, 32 capsule channels of
  8-dimensional capsules (256 convolution channels in total), squashing.
* **ClassCaps** — fully-connected capsule layer, one 16-dimensional capsule
  per output class, routing-by-agreement with 3 iterations.

:func:`mnist_capsnet_config` reproduces these dimensions exactly;
:func:`tiny_capsnet_config` is a scaled-down variant for fast tests that
exercises every code path with the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


def conv_output_size(input_size: int, kernel_size: int, stride: int) -> int:
    """Spatial output size of a VALID convolution."""
    if input_size < kernel_size:
        raise ConfigError(
            f"input size {input_size} smaller than kernel {kernel_size}"
        )
    return (input_size - kernel_size) // stride + 1


@dataclass(frozen=True)
class ConvLayerSpec:
    """A plain convolutional layer (Conv1)."""

    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int = 1

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel_size, self.stride) < 1:
            raise ConfigError("conv layer dimensions must be positive")

    @property
    def weight_count(self) -> int:
        """Trainable weights excluding biases."""
        return self.out_channels * self.in_channels * self.kernel_size**2

    @property
    def bias_count(self) -> int:
        """One bias per output channel."""
        return self.out_channels

    @property
    def parameter_count(self) -> int:
        """Total trainable parameters (weights + biases)."""
        return self.weight_count + self.bias_count


@dataclass(frozen=True)
class PrimaryCapsSpec:
    """The first capsule layer, implemented as a convolution.

    ``capsule_channels`` capsule types, each of dimension ``capsule_dim``,
    are produced by a convolution with ``capsule_channels * capsule_dim``
    output channels (32 * 8 = 256 for MNIST).
    """

    in_channels: int
    capsule_channels: int
    capsule_dim: int
    kernel_size: int
    stride: int = 2

    def __post_init__(self) -> None:
        dims = (
            self.in_channels,
            self.capsule_channels,
            self.capsule_dim,
            self.kernel_size,
            self.stride,
        )
        if min(dims) < 1:
            raise ConfigError("primary caps dimensions must be positive")

    @property
    def conv_out_channels(self) -> int:
        """Convolution channels implementing the capsules."""
        return self.capsule_channels * self.capsule_dim

    @property
    def weight_count(self) -> int:
        """Trainable weights excluding biases."""
        return self.conv_out_channels * self.in_channels * self.kernel_size**2

    @property
    def bias_count(self) -> int:
        """One bias per convolution output channel."""
        return self.conv_out_channels

    @property
    def parameter_count(self) -> int:
        """Total trainable parameters (weights + biases)."""
        return self.weight_count + self.bias_count


@dataclass(frozen=True)
class ClassCapsSpec:
    """The final capsule layer with routing-by-agreement."""

    num_classes: int
    out_dim: int
    routing_iterations: int = 3

    def __post_init__(self) -> None:
        if min(self.num_classes, self.out_dim, self.routing_iterations) < 1:
            raise ConfigError("class caps dimensions must be positive")


@dataclass(frozen=True)
class CapsNetConfig:
    """Complete CapsuleNet architecture description."""

    image_size: int
    in_channels: int
    conv1: ConvLayerSpec
    primary: PrimaryCapsSpec
    classcaps: ClassCapsSpec

    def __post_init__(self) -> None:
        if self.conv1.in_channels != self.in_channels:
            raise ConfigError("conv1 input channels must match image channels")
        if self.primary.in_channels != self.conv1.out_channels:
            raise ConfigError("primary caps input channels must match conv1 output")

    # ---- derived dimensions -------------------------------------------------

    @property
    def conv1_out_size(self) -> int:
        """Spatial size after Conv1."""
        return conv_output_size(self.image_size, self.conv1.kernel_size, self.conv1.stride)

    @property
    def primary_out_size(self) -> int:
        """Spatial size after the PrimaryCaps convolution."""
        return conv_output_size(
            self.conv1_out_size, self.primary.kernel_size, self.primary.stride
        )

    @property
    def num_primary_capsules(self) -> int:
        """Total number of primary capsules (spatial x capsule channels)."""
        return self.primary_out_size**2 * self.primary.capsule_channels

    @property
    def classcaps_weight_count(self) -> int:
        """Trainable weights of the ClassCaps transformation matrices."""
        return (
            self.num_primary_capsules
            * self.classcaps.num_classes
            * self.classcaps.out_dim
            * self.primary.capsule_dim
        )

    @property
    def coupling_coefficient_count(self) -> int:
        """Run-time coupling coefficients (one per input/output capsule pair)."""
        return self.num_primary_capsules * self.classcaps.num_classes

    @property
    def input_count(self) -> int:
        """Number of scalar network inputs."""
        return self.image_size**2 * self.in_channels

    @property
    def output_count(self) -> int:
        """Number of scalar network outputs (class capsule components)."""
        return self.classcaps.num_classes * self.classcaps.out_dim

    @property
    def total_parameter_count(self) -> int:
        """All trainable parameters (excluding run-time coupling coefficients)."""
        return (
            self.conv1.parameter_count
            + self.primary.parameter_count
            + self.classcaps_weight_count
        )


def mnist_capsnet_config() -> CapsNetConfig:
    """The exact MNIST CapsuleNet of the paper (Fig 1 / Table I)."""
    conv1 = ConvLayerSpec(in_channels=1, out_channels=256, kernel_size=9, stride=1)
    primary = PrimaryCapsSpec(
        in_channels=256,
        capsule_channels=32,
        capsule_dim=8,
        kernel_size=9,
        stride=2,
    )
    classcaps = ClassCapsSpec(num_classes=10, out_dim=16, routing_iterations=3)
    return CapsNetConfig(
        image_size=28, in_channels=1, conv1=conv1, primary=primary, classcaps=classcaps
    )


def custom_capsnet_config(
    image_size: int,
    num_classes: int,
    in_channels: int = 1,
    conv1_channels: int = 256,
    conv1_kernel: int = 9,
    capsule_channels: int = 32,
    capsule_dim: int = 8,
    primary_kernel: int = 9,
    primary_stride: int = 2,
    class_dim: int = 16,
    routing_iterations: int = 3,
) -> CapsNetConfig:
    """Build a CapsuleNet for an arbitrary input/dataset geometry.

    Keeps the paper's three-layer structure while letting every dimension
    scale — e.g. a 32x32x3 CIFAR-like configuration::

        custom_capsnet_config(image_size=32, num_classes=10, in_channels=3)

    The whole stack (quantized path, dataflow mappings, performance and
    synthesis models) derives from the configuration, so any valid geometry
    runs unmodified.
    """
    conv1 = ConvLayerSpec(
        in_channels=in_channels,
        out_channels=conv1_channels,
        kernel_size=conv1_kernel,
        stride=1,
    )
    primary = PrimaryCapsSpec(
        in_channels=conv1_channels,
        capsule_channels=capsule_channels,
        capsule_dim=capsule_dim,
        kernel_size=primary_kernel,
        stride=primary_stride,
    )
    classcaps = ClassCapsSpec(
        num_classes=num_classes,
        out_dim=class_dim,
        routing_iterations=routing_iterations,
    )
    return CapsNetConfig(
        image_size=image_size,
        in_channels=in_channels,
        conv1=conv1,
        primary=primary,
        classcaps=classcaps,
    )


def tiny_capsnet_config() -> CapsNetConfig:
    """A structurally identical but small network for fast tests.

    Image 12x12 -> Conv1 5x5/8ch -> 8x8 -> PrimaryCaps 5x5 stride 2,
    2 capsule channels of dimension 4 -> 2x2 spatial -> 8 primary capsules ->
    3 class capsules of dimension 6.
    """
    conv1 = ConvLayerSpec(in_channels=1, out_channels=8, kernel_size=5, stride=1)
    primary = PrimaryCapsSpec(
        in_channels=8, capsule_channels=2, capsule_dim=4, kernel_size=5, stride=2
    )
    classcaps = ClassCapsSpec(num_classes=3, out_dim=6, routing_iterations=3)
    return CapsNetConfig(
        image_size=12, in_channels=1, conv1=conv1, primary=primary, classcaps=classcaps
    )
