"""Functional CapsuleNet reference model (paper Section II).

This package implements the MNIST CapsuleNet of Sabour et al. (the paper's
workload) from scratch:

* :mod:`repro.capsnet.config` — architecture hyper-parameters and the exact
  MNIST configuration of the paper (Fig 1).
* :mod:`repro.capsnet.ops` — numpy convolution, ReLU, squashing, softmax and
  margin loss.
* :mod:`repro.capsnet.routing` — routing-by-agreement, both the textbook
  variant (Fig 4) and the CapsAcc-optimized variant that skips the first
  softmax (Section V-C).
* :mod:`repro.capsnet.layers` / :mod:`repro.capsnet.model` — layer objects
  and the full network.
* :mod:`repro.capsnet.params` — Table I accounting (inputs / trainable
  parameters / outputs per layer).
* :mod:`repro.capsnet.quantized` — the 8-bit fixed-point inference path that
  the hardware simulator reproduces bit-exactly.
* :mod:`repro.capsnet.train` — a lightweight trainer for the ClassCaps layer
  used by the accuracy-parity experiment.
"""

from repro.capsnet.config import (
    CapsNetConfig,
    ClassCapsSpec,
    ConvLayerSpec,
    PrimaryCapsSpec,
    mnist_capsnet_config,
    tiny_capsnet_config,
)
from repro.capsnet.model import CapsuleNet, ModelOutput
from repro.capsnet.routing import RoutingResult, routing_by_agreement
from repro.capsnet.params import layer_statistics, parameter_breakdown

__all__ = [
    "CapsNetConfig",
    "ConvLayerSpec",
    "PrimaryCapsSpec",
    "ClassCapsSpec",
    "mnist_capsnet_config",
    "tiny_capsnet_config",
    "CapsuleNet",
    "ModelOutput",
    "routing_by_agreement",
    "RoutingResult",
    "layer_statistics",
    "parameter_breakdown",
]
