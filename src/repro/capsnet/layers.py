"""Layer objects of the CapsuleNet (float reference path).

Each layer owns its weights, validates shapes eagerly and exposes a
``forward`` method plus introspection used by the Table I accounting and by
the dataflow mappings (which need exact dimensions, not just results).
"""

from __future__ import annotations

import numpy as np

from repro.capsnet.config import ClassCapsSpec, ConvLayerSpec, PrimaryCapsSpec
from repro.capsnet.ops import conv2d, relu, squash
from repro.capsnet.routing import RoutingResult, routing_by_agreement
from repro.errors import ShapeError


class Conv1Layer:
    """The Conv1 layer: valid convolution + ReLU."""

    def __init__(self, spec: ConvLayerSpec, weight: np.ndarray, bias: np.ndarray) -> None:
        expected = (spec.out_channels, spec.in_channels, spec.kernel_size, spec.kernel_size)
        if weight.shape != expected:
            raise ShapeError(f"conv1 weight shape {weight.shape} != {expected}")
        if bias.shape != (spec.out_channels,):
            raise ShapeError(f"conv1 bias shape {bias.shape} != ({spec.out_channels},)")
        self.spec = spec
        self.weight = weight
        self.bias = bias

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply convolution and ReLU to a ``(C, H, W)`` image."""
        return relu(conv2d(x, self.weight, self.bias, self.spec.stride))


class PrimaryCapsLayer:
    """PrimaryCaps: convolution producing capsules, then squashing.

    The convolution output ``(capsule_channels * capsule_dim, H, W)`` is
    regrouped into ``(H * W * capsule_channels, capsule_dim)`` capsules —
    channel-major within each spatial position — and squashed per capsule.
    """

    def __init__(self, spec: PrimaryCapsSpec, weight: np.ndarray, bias: np.ndarray) -> None:
        expected = (
            spec.conv_out_channels,
            spec.in_channels,
            spec.kernel_size,
            spec.kernel_size,
        )
        if weight.shape != expected:
            raise ShapeError(f"primary caps weight shape {weight.shape} != {expected}")
        if bias.shape != (spec.conv_out_channels,):
            raise ShapeError(
                f"primary caps bias shape {bias.shape} != ({spec.conv_out_channels},)"
            )
        self.spec = spec
        self.weight = weight
        self.bias = bias

    def conv_forward(self, x: np.ndarray) -> np.ndarray:
        """The raw convolution output ``(conv_out_channels, H, W)``."""
        return conv2d(x, self.weight, self.bias, self.spec.stride)

    def group_capsules(self, conv_out: np.ndarray) -> np.ndarray:
        """Regroup a convolution output into ``(num_capsules, capsule_dim)``."""
        channels, out_h, out_w = conv_out.shape
        if channels != self.spec.conv_out_channels:
            raise ShapeError(
                f"expected {self.spec.conv_out_channels} channels, got {channels}"
            )
        grouped = conv_out.reshape(
            self.spec.capsule_channels, self.spec.capsule_dim, out_h, out_w
        )
        # (capsule_channel, dim, h, w) -> (h, w, capsule_channel, dim)
        return grouped.transpose(2, 3, 0, 1).reshape(-1, self.spec.capsule_dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Produce squashed primary capsules ``(num_capsules, capsule_dim)``."""
        return squash(self.group_capsules(self.conv_forward(x)), axis=-1)


class ClassCapsLayer:
    """ClassCaps: per-pair linear predictions followed by routing."""

    def __init__(
        self,
        spec: ClassCapsSpec,
        weight: np.ndarray,
        num_in_capsules: int,
        in_dim: int,
    ) -> None:
        expected = (num_in_capsules, spec.num_classes, spec.out_dim, in_dim)
        if weight.shape != expected:
            raise ShapeError(f"class caps weight shape {weight.shape} != {expected}")
        self.spec = spec
        self.weight = weight
        self.num_in_capsules = num_in_capsules
        self.in_dim = in_dim

    def predictions(self, u: np.ndarray) -> np.ndarray:
        """Prediction vectors ``u_hat[i, j, :] = W[i, j] @ u[i]``.

        Input ``u`` has shape ``(num_in, in_dim)``; the result has shape
        ``(num_in, num_classes, out_dim)``.
        """
        if u.shape != (self.num_in_capsules, self.in_dim):
            raise ShapeError(
                f"input capsules shape {u.shape} != "
                f"({self.num_in_capsules}, {self.in_dim})"
            )
        return np.einsum("ijod,id->ijo", self.weight, u)

    def forward(self, u: np.ndarray, optimized_routing: bool = False) -> RoutingResult:
        """Run predictions and routing, returning the full routing result."""
        u_hat = self.predictions(u)
        return routing_by_agreement(
            u_hat,
            num_iterations=self.spec.routing_iterations,
            optimized=optimized_routing,
        )
