"""Batch-vectorized quantized CapsuleNet forward (bit-identical, fast).

:class:`QuantizedCapsuleNet` is the golden model: one image at a time,
layer by layer, easy to audit.  The live serving runtime
(:mod:`repro.serve.runtime`) cannot afford ~1 ms of Python overhead per
image, so :class:`BatchedQuantizedForward` executes the *same* integer
computation over a whole ``(N, H, W)`` batch at once: batched im2col
convolutions through one GEMM, class-capsule predictions and the routing
loop through batched einsums, and the ``hw_*`` operators (which already
vectorize over leading axes) applied to ``(N, ...)`` tensors.

Bit-identity with the per-image path is guaranteed, not approximate:

* every saturation / requantization / LUT step is element-wise, so
  adding a leading batch axis cannot change any value;
* integer GEMMs are evaluated in float64 only when an a-priori bound
  (``terms * max|data| * max|weight| < 2**53``) proves every partial sum
  exactly representable — the same guard
  :func:`repro.capsnet.hwops.chunked_saturating_matmul` uses — and fall
  back to exact ``int64`` einsums otherwise;
* the accumulator saturation happens after the full dot product in both
  paths (:func:`~repro.fixedpoint.arith.saturate_raw` at readout).

``tests/capsnet/test_batched_forward.py`` asserts raw-tensor equality
against :meth:`QuantizedCapsuleNet.forward` layer by layer.
"""

from __future__ import annotations

import numpy as np

# hw_norm / hw_squash / hw_softmax are element-wise or last-axis
# reductions that broadcast over leading axes; the batched path relies on
# exactly that property to reuse them on (N, ...) tensors unchanged.
from repro.capsnet.hwops import hw_norm, hw_softmax, hw_squash
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ShapeError
from repro.fixedpoint.arith import requantize, saturate_raw
from repro.fixedpoint.formats import QFormat
from repro.fixedpoint.quantize import to_raw


def _exact_matmul(data: np.ndarray, weights: np.ndarray, terms: int) -> np.ndarray:
    """``data @ weights`` in int64, via float64 BLAS when provably exact."""
    max_d = int(max(data.max(initial=0), -data.min(initial=0)))
    max_w = int(max(weights.max(initial=0), -weights.min(initial=0)))
    if terms * max_d * max_w < 2**53:
        return (data.astype(np.float64) @ weights.astype(np.float64)).astype(np.int64)
    return data @ weights


def _exact_einsum(spec: str, a: np.ndarray, b: np.ndarray, terms: int) -> np.ndarray:
    """``einsum(spec, a, b)`` in int64, via float64 when provably exact."""
    max_a = int(max(a.max(initial=0), -a.min(initial=0)))
    max_b = int(max(b.max(initial=0), -b.min(initial=0)))
    if terms * max_a * max_b < 2**53:
        return np.einsum(spec, a.astype(np.float64), b.astype(np.float64)).astype(
            np.int64
        )
    return np.einsum(spec, a, b, dtype=np.int64)


def _batched_conv2d(
    x_raw: np.ndarray,
    weight_raw: np.ndarray,
    bias_raw: np.ndarray | None,
    stride: int,
    acc_fmt: QFormat,
) -> np.ndarray:
    """Batched integer valid convolution: ``(N, C, H, W) -> (N, O, oh, ow)``.

    The batched twin of :func:`repro.capsnet.hwops.quantized_conv2d`:
    windows are gathered with :func:`numpy.lib.stride_tricks.sliding_window_view`
    (a view, no copy until the GEMM reshape) and all ``N`` images run
    through one GEMM against the flattened kernel matrix.
    """
    out_channels, in_channels, kernel, kernel_w = weight_raw.shape
    if kernel != kernel_w:
        raise ShapeError("only square kernels are supported")
    windows = np.lib.stride_tricks.sliding_window_view(
        x_raw, (kernel, kernel), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    n, _, out_h, out_w = windows.shape[:4]
    patches = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5)).reshape(
        n, out_h * out_w, in_channels * kernel * kernel
    )
    wmat = weight_raw.reshape(out_channels, -1)
    acc = _exact_matmul(patches, wmat.T, terms=patches.shape[-1])
    if bias_raw is not None:
        acc = acc + bias_raw
    acc = saturate_raw(acc, acc_fmt)
    return acc.transpose(0, 2, 1).reshape(n, out_channels, out_h, out_w)


class BatchedQuantizedForward:
    """Vectorized inference over ``(N, H, W)`` batches of one network.

    Wraps a :class:`~repro.capsnet.quantized.QuantizedCapsuleNet` (shared
    weights, LUTs and formats) and reproduces its forward pass with a
    leading batch axis.  Predictions are bit-identical to
    :meth:`QuantizedCapsuleNet.predict_batch`; throughput on the tiny
    network is ~6x higher at batch 8 and ~20x at batch 128 (the per-image
    Python overhead amortizes across the batch).
    """

    def __init__(self, qnet: QuantizedCapsuleNet) -> None:
        self.qnet = qnet
        self.config = qnet.config
        fmts = qnet.formats
        self._conv1_acc = fmts.acc(fmts.input, fmts.conv1_weight)
        self._primary_acc = fmts.acc(fmts.conv1_out, fmts.primary_weight)
        self._classcaps_acc = fmts.acc(fmts.caps_data, fmts.classcaps_weight)
        self._sum_acc = fmts.acc(fmts.caps_data, fmts.coupling)
        self._upd_acc = fmts.acc(fmts.caps_data, fmts.caps_data)

    def forward_raw(self, images: np.ndarray) -> dict[str, np.ndarray]:
        """Run the batch; return the raw tensors of every stage.

        ``images`` is ``(N, H, W)`` or ``(N, C, H, W)`` real-valued; the
        returned dict carries ``conv1_out`` / ``primary`` / ``u_hat`` /
        ``class_caps`` / ``length_sumsq`` / ``predictions``, each with a
        leading batch axis and bit-identical to the per-image path.
        """
        qnet = self.qnet
        fmts = qnet.formats
        luts = qnet.luts
        config = self.config
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[:, np.newaxis]
        expected = (config.in_channels, config.image_size, config.image_size)
        if images.shape[1:] != expected:
            raise ShapeError(f"batch image shape {images.shape[1:]} != {expected}")

        image_raw = to_raw(images, fmts.input)
        conv1_acc = _batched_conv2d(
            image_raw,
            qnet.raw_weights["conv1_w"],
            qnet.raw_weights["conv1_b"],
            config.conv1.stride,
            self._conv1_acc,
        )
        conv1_raw = requantize(
            np.maximum(conv1_acc, 0), self._conv1_acc, fmts.conv1_out
        )

        primary_acc = _batched_conv2d(
            conv1_raw,
            qnet.raw_weights["primary_w"],
            qnet.raw_weights["primary_b"],
            config.primary.stride,
            self._primary_acc,
        )
        preact = requantize(primary_acc, self._primary_acc, fmts.primary_preact)
        spec = config.primary
        out_size = config.primary_out_size
        n = preact.shape[0]
        grouped = preact.reshape(
            n, spec.capsule_channels, spec.capsule_dim, out_size, out_size
        )
        capsules = grouped.transpose(0, 3, 4, 1, 2).reshape(n, -1, spec.capsule_dim)
        primary_raw = hw_squash(capsules, fmts.primary_preact, luts, fmts)

        w = qnet.raw_weights["classcaps_w"]
        acc = _exact_einsum("ijod,nid->nijo", w, primary_raw, terms=w.shape[-1])
        acc = saturate_raw(acc, self._classcaps_acc)
        u_hat_raw = requantize(acc, self._classcaps_acc, fmts.caps_data)

        v_raw = self._route(u_hat_raw)
        _, sumsq = hw_norm(v_raw, fmts.caps_data, luts, fmts)
        return {
            "conv1_out": conv1_raw,
            "primary": primary_raw,
            "u_hat": u_hat_raw,
            "class_caps": v_raw,
            "length_sumsq": sumsq,
            "predictions": np.argmax(sumsq, axis=-1).astype(np.int64),
        }

    def _route(self, u_hat_raw: np.ndarray) -> np.ndarray:
        """Batched routing-by-agreement; returns ``(N, num_out, out_dim)``."""
        qnet = self.qnet
        fmts = qnet.formats
        luts = qnet.luts
        n, num_in, num_out, out_dim = u_hat_raw.shape
        iterations = self.config.classcaps.routing_iterations
        b_raw = np.zeros((n, num_in, num_out), dtype=np.int64)
        if qnet.optimized_routing:
            c_raw = np.full(
                (n, num_in, num_out),
                qnet._uniform_coupling_code(num_out),
                dtype=np.int64,
            )
        else:
            c_raw = hw_softmax(b_raw, luts, fmts, axis=2)
        v_raw = np.zeros((n, num_out, out_dim), dtype=np.int64)
        for iteration in range(1, iterations + 1):
            if iteration > 1:
                c_raw = hw_softmax(b_raw, luts, fmts, axis=2)
            s_acc = _exact_einsum("nij,nijo->njo", c_raw, u_hat_raw, terms=num_in)
            s_acc = saturate_raw(s_acc, self._sum_acc)
            s_raw = requantize(s_acc, self._sum_acc, fmts.primary_preact)
            v_raw = hw_squash(s_raw, fmts.primary_preact, luts, fmts)
            if iteration < iterations:
                agree = _exact_einsum("nijo,njo->nij", u_hat_raw, v_raw, terms=out_dim)
                agree = saturate_raw(agree, self._upd_acc)
                delta = requantize(agree, self._upd_acc, fmts.logits)
                b_raw = saturate_raw(b_raw + delta, fmts.logits)
        return v_raw

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Classify a batch: ``(N, H, W)`` images -> ``(N,)`` predictions."""
        return self.forward_raw(images)["predictions"]

