"""Weight generation, saving and loading.

The paper runs inference with the trained network of Sabour et al.; training
infrastructure is out of scope for both the paper and this reproduction (the
paper explicitly excludes the decoder and losses).  For dataflow, cycle and
synthesis experiments any weights of the right shape and dynamic range work;
:func:`pseudo_trained_weights` generates deterministic weights whose scale is
chosen so that activations stay inside the 8-bit fixed-point formats, as a
trained, quantization-calibrated network's would.

For the accuracy-parity experiment, :mod:`repro.capsnet.train` fits the
ClassCaps matrices on real features; the fitted weights round-trip through
:func:`save_weights` / :func:`load_weights`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.capsnet.config import CapsNetConfig
from repro.errors import ShapeError

#: Keys every weight dictionary must contain.
WEIGHT_KEYS = ("conv1_w", "conv1_b", "primary_w", "primary_b", "classcaps_w")


def weight_shapes(config: CapsNetConfig) -> dict[str, tuple[int, ...]]:
    """Expected array shape for every weight key."""
    conv1 = config.conv1
    primary = config.primary
    return {
        "conv1_w": (conv1.out_channels, conv1.in_channels, conv1.kernel_size, conv1.kernel_size),
        "conv1_b": (conv1.out_channels,),
        "primary_w": (
            primary.conv_out_channels,
            primary.in_channels,
            primary.kernel_size,
            primary.kernel_size,
        ),
        "primary_b": (primary.conv_out_channels,),
        "classcaps_w": (
            config.num_primary_capsules,
            config.classcaps.num_classes,
            config.classcaps.out_dim,
            config.primary.capsule_dim,
        ),
    }


def validate_weights(config: CapsNetConfig, weights: dict[str, np.ndarray]) -> None:
    """Raise :class:`ShapeError` unless ``weights`` matches ``config``."""
    expected = weight_shapes(config)
    for key, shape in expected.items():
        if key not in weights:
            raise ShapeError(f"missing weight array {key!r}")
        if tuple(weights[key].shape) != shape:
            raise ShapeError(
                f"weight {key!r} has shape {weights[key].shape}, expected {shape}"
            )


def pseudo_trained_weights(
    config: CapsNetConfig, seed: int = 2019, dtype=np.float64
) -> dict[str, np.ndarray]:
    """Deterministic weights with trained-network-like dynamic range.

    Fan-in-scaled normal weights keep every layer's activations within the
    8-bit fixed-point ranges used by the accelerator (verified by the
    quantization tests), mimicking a quantization-aware-calibrated network.
    """
    rng = np.random.default_rng(seed)
    shapes = weight_shapes(config)

    def fan_in_scaled(shape: tuple[int, ...], fan_in: int, gain: float) -> np.ndarray:
        return (gain / np.sqrt(fan_in)) * rng.standard_normal(shape)

    conv1_fan = config.conv1.in_channels * config.conv1.kernel_size**2
    primary_fan = config.primary.in_channels * config.primary.kernel_size**2
    weights = {
        "conv1_w": fan_in_scaled(shapes["conv1_w"], conv1_fan, gain=1.0),
        "conv1_b": np.zeros(shapes["conv1_b"]),
        "primary_w": fan_in_scaled(shapes["primary_w"], primary_fan, gain=1.0),
        "primary_b": np.zeros(shapes["primary_b"]),
        "classcaps_w": fan_in_scaled(
            shapes["classcaps_w"], config.primary.capsule_dim, gain=1.0
        ),
    }
    return {key: value.astype(dtype) for key, value in weights.items()}


def save_weights(path: str | Path, weights: dict[str, np.ndarray]) -> None:
    """Save a weight dictionary to a compressed ``.npz`` file."""
    np.savez_compressed(Path(path), **weights)


def load_weights(path: str | Path, config: CapsNetConfig | None = None) -> dict[str, np.ndarray]:
    """Load weights from ``.npz``, optionally validating against a config."""
    with np.load(Path(path)) as archive:
        weights = {key: archive[key] for key in archive.files}
    if config is not None:
        validate_weights(config, weights)
    return weights
