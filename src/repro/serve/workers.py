"""Execution back-ends for the live serving runtime.

The runtime (:mod:`repro.serve.runtime`) separates *scheduling* (the
shared serving core) from *executing* (running a formed batch through the
quantized engine).  An executor models the physical accelerator arrays:
``execute(array, images)`` classifies one contiguous image batch on one
array and returns the predictions, bit-identical to
:meth:`repro.capsnet.quantized.QuantizedCapsuleNet.predict_batch`.

Four implementations:

* :class:`InlineEngineExecutor` — the batched engine in-process.  With
  the GIL released inside numpy's GEMMs, a thread pool over this executor
  is the fastest option on small hosts and the default.
* :class:`CompiledStreamExecutor` — any model-zoo network
  (:class:`~repro.compiler.zoo.CompiledNetwork`) through its compiled
  instruction stream: residual capsule variants and baselines serve
  live without a hand-written engine.
* :class:`ProcessWorkerPool` — one OS process per array with zero-copy
  shared-memory image/prediction buffers, mirroring the simulated
  :class:`~repro.serve.dispatcher.ArrayPool` sizing.  Survives a worker
  death by raising :class:`WorkerCrashError` with the array and exit
  detail instead of hanging.
* :class:`PredictedExecutor` — no compute at all (predictions are -1):
  for exercising the scheduling/backpressure machinery at offered loads
  far above what one host can classify.

All executors share the duck-typed surface the runtime drives:
``image_size``, ``execute(array, images)``, ``close()``.
"""

from __future__ import annotations

import multiprocessing
import threading
from multiprocessing import shared_memory

import numpy as np

from repro.capsnet.batched import BatchedQuantizedForward
from repro.capsnet.config import CapsNetConfig
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ConfigError


class WorkerCrashError(RuntimeError):
    """An execution worker died mid-service (crash, kill, or lost pipe)."""


class InlineEngineExecutor:
    """Run batches through the batched quantized engine in-process.

    One engine instance serves every array: the computation is pure
    (shared read-only weights/LUTs), so concurrent calls from the
    runtime's worker threads are safe and overlap inside numpy's
    GIL-releasing kernels.
    """

    def __init__(self, network: CapsNetConfig) -> None:
        self.network = network
        self.image_size = network.image_size
        self.engine = BatchedQuantizedForward(QuantizedCapsuleNet(network))

    def execute(self, array: int, images: np.ndarray) -> np.ndarray:
        """Classify ``(N, H, W)`` images; returns ``(N,)`` predictions."""
        return self.engine.predict(images)

    def close(self) -> None:
        """Nothing to release."""


class CompiledStreamExecutor:
    """Run batches through a compiled zoo network's instruction stream.

    Serves any :class:`~repro.compiler.zoo.CompiledNetwork` — capsule
    variants and baselines alike — through the compiler's
    :class:`~repro.compiler.executor.StreamExecutor`, so a network is
    live-servable the moment it compiles.  Grayscale request images are
    replicated across the network's input channels, keeping the runtime's
    single-channel image ring network-agnostic.

    Unlike the batched engine, the stream executor's accelerator model
    accumulates buffer counters, so concurrent calls serialize through a
    lock — correctness over peak throughput for the zoo path.
    """

    def __init__(self, network) -> None:
        from repro.compiler.executor import StreamExecutor
        from repro.compiler.zoo import as_compiled

        compiled = as_compiled(network)
        self.network = compiled
        self.image_size = compiled.input_shape[-1]
        self.channels = compiled.input_shape[0]
        self._executor = StreamExecutor(
            compiled.program, compiled.params, compiled.formats, luts=compiled.luts
        )
        self._lock = threading.Lock()

    def execute(self, array: int, images: np.ndarray) -> np.ndarray:
        """Classify ``(N, H, W)`` images; returns ``(N,)`` predictions."""
        if self.channels != 1 and images.ndim == 3:
            images = np.repeat(images[:, np.newaxis], self.channels, axis=1)
        with self._lock:
            return self._executor.run_batch(images).predictions

    def execute_corrupt(
        self, array: int, images: np.ndarray, spec, verify: bool
    ) -> np.ndarray:
        """Classify with ``spec``'s seeded bit flips injected mid-stream.

        The corruption lands inside the instruction stream (weight tile,
        accumulator, or readout scores per the spec's target), so the
        served numerics are really corrupted — and ``verify`` arms the
        ABFT checksums that raise
        :class:`~repro.serve.integrity.DetectedCorruptionError` for any
        in-envelope flip.
        """
        if self.channels != 1 and images.ndim == 3:
            images = np.repeat(images[:, np.newaxis], self.channels, axis=1)
        with self._lock:
            return self._executor.run_batch(
                images, corruption=spec, verify_checksums=verify
            ).predictions

    def close(self) -> None:
        """Nothing to release."""


class PredictedExecutor:
    """Scheduling-only executor: returns -1 predictions instantly."""

    def __init__(self, image_size: int) -> None:
        self.image_size = image_size

    def execute(self, array: int, images: np.ndarray) -> np.ndarray:
        """Return placeholder predictions without computing."""
        return np.full(len(images), -1, dtype=np.int64)

    def close(self) -> None:
        """Nothing to release."""


def _worker_main(conn, shm_in_name, shm_out_name, max_batch, size, network):
    """Worker-process loop: recv batch size, classify shared images, ack."""
    engine = BatchedQuantizedForward(QuantizedCapsuleNet(network))
    shm_in = shared_memory.SharedMemory(name=shm_in_name)
    shm_out = shared_memory.SharedMemory(name=shm_out_name)
    images = np.ndarray((max_batch, size, size), dtype=np.float64, buffer=shm_in.buf)
    out = np.ndarray((max_batch,), dtype=np.int64, buffer=shm_out.buf)
    try:
        while True:
            count = conn.recv()
            if count is None:
                break
            out[:count] = engine.predict(images[:count])
            conn.send(count)
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        shm_in.close()
        shm_out.close()
        conn.close()


class ProcessWorkerPool:
    """One worker process per array, fed through shared-memory buffers.

    Each array owns a pinned ``(max_batch, H, W)`` float64 image buffer
    and a ``(max_batch,)`` int64 prediction buffer in POSIX shared
    memory, plus a control pipe carrying only the batch size — the
    images themselves never cross the pipe.  A per-array lock serializes
    the runtime's worker threads onto each array's buffers (distinct
    arrays execute concurrently in their own processes).

    A worker that dies mid-request surfaces as :class:`WorkerCrashError`
    naming the array and the process exit code, never a hang.
    """

    def __init__(
        self, network: CapsNetConfig, arrays: int, max_batch: int
    ) -> None:
        if arrays < 1:
            raise ConfigError("worker pool needs at least one array")
        if max_batch < 1:
            raise ConfigError("max_batch must be positive")
        self.network = network
        self.image_size = network.image_size
        self.max_batch = max_batch
        size = network.image_size
        self._ctx = multiprocessing.get_context("spawn")
        self._locks = [threading.Lock() for _ in range(arrays)]
        self._shm_in: list[shared_memory.SharedMemory] = []
        self._shm_out: list[shared_memory.SharedMemory] = []
        self._images: list[np.ndarray] = []
        self._out: list[np.ndarray] = []
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            for array in range(arrays):
                shm_in = shared_memory.SharedMemory(
                    create=True, size=max_batch * size * size * 8
                )
                shm_out = shared_memory.SharedMemory(create=True, size=max_batch * 8)
                self._shm_in.append(shm_in)
                self._shm_out.append(shm_out)
                self._images.append(
                    np.ndarray(
                        (max_batch, size, size), dtype=np.float64, buffer=shm_in.buf
                    )
                )
                self._out.append(
                    np.ndarray((max_batch,), dtype=np.int64, buffer=shm_out.buf)
                )
                parent, proc = self._spawn(array)
                self._conns.append(parent)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    def _spawn(self, array: int):
        """Start one worker process over ``array``'s existing buffers."""
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child,
                self._shm_in[array].name,
                self._shm_out[array].name,
                self.max_batch,
                self.image_size,
                self.network,
            ),
            daemon=True,
        )
        proc.start()
        child.close()
        return parent, proc

    def execute(self, array: int, images: np.ndarray) -> np.ndarray:
        """Classify a batch on ``array``'s worker process."""
        count = len(images)
        if count > self.max_batch:
            raise ConfigError(
                f"batch of {count} exceeds the pool's max_batch={self.max_batch}"
            )
        with self._locks[array]:
            try:
                self._images[array][:count] = images
                self._conns[array].send(count)
                acked = self._conns[array].recv()
            except (EOFError, BrokenPipeError, OSError) as error:
                proc = self._procs[array]
                proc.join(timeout=1.0)
                raise WorkerCrashError(
                    f"worker for array {array} died mid-batch"
                    f" (exitcode {proc.exitcode})"
                ) from error
            if acked != count:
                raise WorkerCrashError(
                    f"worker for array {array} acked {acked} != {count}"
                )
            return self._out[array][:count].copy()

    def crash(self, array: int) -> None:
        """Kill one worker process (test hook for crash handling)."""
        self._procs[array].kill()
        self._procs[array].join(timeout=5.0)

    def respawn(self, array: int, probe_timeout_s: float = 60.0) -> None:
        """Replace ``array``'s worker and health-probe it before reuse.

        The shared-memory buffers are reused (only the process and its
        control pipe are replaced); a one-image round trip through the
        fresh worker's real engine proves it serves before the caller
        readmits the array.  Raises :class:`WorkerCrashError` if the
        probe fails or times out.
        """
        if self._closed:
            raise ConfigError("worker pool is closed")
        with self._locks[array]:
            proc = self._procs[array]
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
            self._conns[array].close()
            parent, proc = self._spawn(array)
            self._conns[array] = parent
            self._procs[array] = proc
            self._images[array][:1] = 0.0
            try:
                parent.send(1)
                if not parent.poll(probe_timeout_s):
                    raise WorkerCrashError(
                        f"respawned worker for array {array} failed its"
                        f" health probe ({probe_timeout_s:g}s timeout)"
                    )
                acked = parent.recv()
            except (EOFError, BrokenPipeError, OSError) as error:
                raise WorkerCrashError(
                    f"respawned worker for array {array} died during its"
                    f" health probe (exitcode {proc.exitcode})"
                ) from error
            if acked != 1:
                raise WorkerCrashError(
                    f"respawned worker for array {array} acked {acked} != 1"
                )

    def close(self) -> None:
        """Stop workers and release the shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        # Views into the shared buffers must drop before unlinking.
        self._images.clear()
        self._out.clear()
        for shm in self._shm_in + self._shm_out:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
