"""Fault tolerance for the serving stack: injection, retry, quarantine.

Three pieces, shared by every driver of the
:class:`~repro.serve.core.ServingCore` (the discrete-event simulator,
the virtual-time replay, and the live asyncio runtime):

* :class:`FaultPlan` — a **seedable, declarative fault schedule**:
  crash the Nth placed batch, crash the batch carrying request K's
  first attempt, a Bernoulli per-batch crash rate, hang-before-detect
  durations, array-down windows, *silent corruption* (per-placement
  ``corrupt_rate`` / ``corrupt_batches`` bit flips into a weight tile,
  accumulator, or output — see :mod:`repro.serve.integrity` for the
  detection side), and correlated ``failure_groups`` that take a whole
  power/rack domain of arrays down in one window.  Plans are pure data
  (JSON or a ``key=value`` inline spec via :func:`load_fault_plan`),
  so a fault experiment is exactly as reproducible as the arrival
  trace driving it.
* :class:`FaultInjector` — the runtime decision engine for a plan.
  It is consulted once per *placement*, in placement order, which is
  identical across the simulator and the live runtime (both drive the
  same core); a seeded plan therefore crashes (and corrupts) the
  *same* batches in both, making sim-vs-live fault studies directly
  comparable.  Corruption draws come from a stream separate from the
  crash stream, so arming ``corrupt_rate`` never perturbs which
  batches a given ``crash_rate`` seed crashes.
* :class:`RetryPolicy` — how failures are handled regardless of where
  they came from (injected or a real worker death): per-request attempt
  budgets, exponential deadline-aware backoff for requeued work, and
  the quarantine duration before a crashed array is readmitted.

The injector only *marks* a placed batch as doomed
(``PlacedBatch.fault``); detection timing, requeue scheduling, and
recovery are driven by the clock owner — event-heap entries in the
simulator, ``call_later`` timers in the live runtime — so the core
itself stays time-source-agnostic.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import random

from repro.errors import ConfigError
from repro.serve.workers import WorkerCrashError


class InjectedCrashError(WorkerCrashError):
    """A deliberate, plan-scheduled crash (not a real worker death)."""


#: What a corruption fault flips bits in. ``weight`` and ``accumulator``
#: are inside the ABFT checksum envelope; ``output`` corrupts the final
#: scores *after* every checked GEMM, so no checksum can see it.
CORRUPT_TARGETS = ("weight", "accumulator", "output")


@dataclasses.dataclass(frozen=True)
class CorruptionSpec:
    """One batch's corruption fault, derived from the plan seed.

    ``seed`` fully determines which element of the target tensor is hit
    and which of its low 16 bits flip, so the corrupted numerics are
    bit-reproducible across drivers and reruns.
    """

    target: str = "weight"
    bits: int = 1
    seed: int = 0


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Declarative, seedable schedule of injected faults.

    ``crash_batches`` are 0-based *placement ordinals* — the Nth batch
    the core places crashes, whatever it contains.  ``crash_requests``
    crash the batch carrying that request index's **first** attempt
    (retries of the same request run clean, so the fault is transient
    by construction).  ``crash_rate`` is a per-placement Bernoulli
    draw from a ``seed``-ed generator, optionally bounded by
    ``max_crashes`` (a bounded plan is *transient*: with attempt
    budget left, every request still completes).  ``array_down``
    windows ``(array, start_us, end_us)`` crash any batch dispatched
    on that array inside the window.  ``hang_us`` delays detection:
    a crashing batch occupies its array for ``hang_us`` before the
    watchdog notices (0 means the crash surfaces when the batch's
    results were due).

    Corruption faults are silent: a corrupted batch *runs to
    completion* and returns wrong numerics instead of crashing.
    ``corrupt_batches`` are placement ordinals (like ``crash_batches``)
    and ``corrupt_rate`` a per-placement Bernoulli draw from a stream
    independent of the crash stream; ``corrupt_bits`` low-order bits of
    one ``corrupt_target`` element flip (weight tile, accumulator, or
    final output scores).  Whether anyone *notices* is the integrity
    layer's business (:mod:`repro.serve.integrity`).  A batch the plan
    both crashes and corrupts crashes — the louder fault wins.

    ``failure_groups`` model a shared power/rack domain:
    ``((arrays...), start_us, end_us)`` crashes any batch dispatched on
    *any* member array inside the window, so one event can take down
    several arrays at once.
    """

    crash_batches: tuple[int, ...] = ()
    crash_requests: tuple[int, ...] = ()
    crash_rate: float = 0.0
    max_crashes: int | None = None
    hang_us: float = 0.0
    array_down: tuple[tuple[int, float, float], ...] = ()
    corrupt_batches: tuple[int, ...] = ()
    corrupt_rate: float = 0.0
    corrupt_bits: int = 1
    corrupt_target: str = "weight"
    failure_groups: tuple[tuple[tuple[int, ...], float, float], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.crash_rate <= 1.0):
            raise ConfigError("crash_rate must be within [0, 1]")
        if self.max_crashes is not None and self.max_crashes < 0:
            raise ConfigError("max_crashes must be non-negative")
        if not (math.isfinite(self.hang_us) and self.hang_us >= 0):
            raise ConfigError("hang_us must be finite and non-negative")
        if not (0.0 <= self.corrupt_rate <= 1.0):
            raise ConfigError("corrupt_rate must be within [0, 1]")
        if not (1 <= int(self.corrupt_bits) <= 16):
            raise ConfigError("corrupt_bits must be within [1, 16]")
        if self.corrupt_target not in CORRUPT_TARGETS:
            raise ConfigError(
                f"corrupt_target must be one of {CORRUPT_TARGETS},"
                f" not {self.corrupt_target!r}"
            )
        object.__setattr__(self, "corrupt_bits", int(self.corrupt_bits))
        object.__setattr__(
            self, "crash_batches", tuple(int(b) for b in self.crash_batches)
        )
        object.__setattr__(
            self, "crash_requests", tuple(int(r) for r in self.crash_requests)
        )
        object.__setattr__(
            self, "corrupt_batches", tuple(int(b) for b in self.corrupt_batches)
        )
        windows = []
        for window in self.array_down:
            array, start, end = window
            if end <= start:
                raise ConfigError(
                    f"array_down window {window} must have end > start"
                )
            windows.append((int(array), float(start), float(end)))
        windows.sort()
        for before, after in zip(windows, windows[1:]):
            if before[0] == after[0] and after[1] < before[2]:
                raise ConfigError(
                    f"array_down windows {before} and {after} overlap on"
                    f" array {before[0]}"
                )
        object.__setattr__(self, "array_down", tuple(windows))
        groups = []
        for group in self.failure_groups:
            arrays, start, end = group
            arrays = tuple(int(a) for a in arrays)
            if not arrays:
                raise ConfigError(
                    f"failure_groups window {group} names no arrays"
                )
            if end <= start:
                raise ConfigError(
                    f"failure_groups window {group} must have end > start"
                )
            groups.append((arrays, float(start), float(end)))
        object.__setattr__(self, "failure_groups", tuple(groups))

    @property
    def empty(self) -> bool:
        """Whether this plan can never inject anything."""
        return (
            not self.crash_batches
            and not self.crash_requests
            and self.crash_rate == 0.0
            and not self.array_down
            and not self.corrupt_batches
            and self.corrupt_rate == 0.0
            and not self.failure_groups
        )

    @property
    def corrupts(self) -> bool:
        """Whether this plan can inject silent corruption."""
        return bool(self.corrupt_batches) or self.corrupt_rate > 0.0

    def detect_delay_us(self, duration_us: float) -> float:
        """How long a doomed batch occupies its array before detection."""
        return self.hang_us if self.hang_us > 0.0 else duration_us

    def to_dict(self) -> dict:
        """JSON-ready plan description (drops unset fields)."""
        out: dict = {"seed": self.seed}
        if self.crash_batches:
            out["crash_batches"] = list(self.crash_batches)
        if self.crash_requests:
            out["crash_requests"] = list(self.crash_requests)
        if self.crash_rate:
            out["crash_rate"] = self.crash_rate
        if self.max_crashes is not None:
            out["max_crashes"] = self.max_crashes
        if self.hang_us:
            out["hang_us"] = self.hang_us
        if self.array_down:
            out["array_down"] = [list(w) for w in self.array_down]
        if self.corrupt_batches:
            out["corrupt_batches"] = list(self.corrupt_batches)
        if self.corrupt_rate:
            out["corrupt_rate"] = self.corrupt_rate
        if self.corrupts:
            out["corrupt_bits"] = self.corrupt_bits
            out["corrupt_target"] = self.corrupt_target
        if self.failure_groups:
            out["failure_groups"] = [
                [list(arrays), start, end]
                for arrays, start, end in self.failure_groups
            ]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> FaultPlan:
        """Build a plan from a JSON object (unknown keys rejected)."""
        if not isinstance(data, dict):
            raise ConfigError("fault plan JSON must be an object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown fault-plan keys: {sorted(unknown)} (known: {sorted(known)})"
            )
        kwargs = dict(data)
        try:
            if "array_down" in kwargs:
                kwargs["array_down"] = tuple(
                    tuple(w) for w in kwargs["array_down"]
                )
            if "failure_groups" in kwargs:
                kwargs["failure_groups"] = tuple(
                    (tuple(g[0]), g[1], g[2]) for g in kwargs["failure_groups"]
                )
            return cls(**kwargs)
        except (TypeError, ValueError, IndexError) as error:
            raise ConfigError(f"malformed fault-plan value: {error}") from error

    def describe(self) -> str:
        """Short human-readable plan summary."""
        parts = []
        if self.crash_batches:
            parts.append(f"batches={','.join(map(str, self.crash_batches))}")
        if self.crash_requests:
            parts.append(f"requests={','.join(map(str, self.crash_requests))}")
        if self.crash_rate:
            parts.append(f"rate={self.crash_rate:g}")
        if self.max_crashes is not None:
            parts.append(f"max={self.max_crashes}")
        if self.hang_us:
            parts.append(f"hang={self.hang_us:g}us")
        if self.array_down:
            parts.append(f"down={len(self.array_down)}win")
        if self.corrupt_batches:
            parts.append(
                f"corrupt={','.join(map(str, self.corrupt_batches))}"
            )
        if self.corrupt_rate:
            parts.append(f"corrupt_rate={self.corrupt_rate:g}")
        if self.corrupts:
            parts.append(
                f"{self.corrupt_target}x{self.corrupt_bits}b"
            )
        if self.failure_groups:
            parts.append(f"groups={len(self.failure_groups)}")
        if not parts:
            return "faults:none"
        return "faults[" + " ".join(parts) + f" seed={self.seed}]"


_LIST_KEYS = {"crash_batches", "crash_requests", "corrupt_batches"}
_INT_KEYS = {"seed", "max_crashes", "corrupt_bits"}
_FLOAT_KEYS = {"crash_rate", "hang_us", "corrupt_rate"}


def _parse_inline(spec: str) -> FaultPlan:
    """Parse ``key=value,key=value`` (lists colon-separated,
    ``array_down`` windows as ``array@start:end``, ``failure_groups``
    as ``array:array@start:end`` joined by ``+``)."""
    kwargs: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(f"fault-plan entry {part!r} is not key=value")
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key in _LIST_KEYS:
                kwargs[key] = tuple(int(v) for v in value.split(":") if v)
            elif key in _INT_KEYS:
                kwargs[key] = int(value)
            elif key in _FLOAT_KEYS:
                kwargs[key] = float(value)
            elif key == "array_down":
                windows = []
                for token in value.split("+"):
                    array, _, span = token.partition("@")
                    start, _, end = span.partition(":")
                    if not (array and start and end):
                        raise ConfigError(
                            f"array_down window {token!r} must be array@start:end"
                        )
                    windows.append((int(array), float(start), float(end)))
                kwargs[key] = tuple(windows)
            elif key == "corrupt_target":
                kwargs[key] = value
            elif key == "failure_groups":
                groups = []
                for token in value.split("+"):
                    arrays, _, span = token.partition("@")
                    start, _, end = span.partition(":")
                    if not (arrays and start and end):
                        raise ConfigError(
                            f"failure_groups window {token!r} must be"
                            " array:array@start:end"
                        )
                    groups.append(
                        (
                            tuple(int(a) for a in arrays.split(":") if a),
                            float(start),
                            float(end),
                        )
                    )
                kwargs[key] = tuple(groups)
            else:
                raise ConfigError(f"unknown fault-plan key {key!r}")
        except ValueError as error:
            raise ConfigError(
                f"bad fault-plan value {part!r} ({error})"
            ) from error
    return FaultPlan(**kwargs)


def load_fault_plan(spec: str) -> FaultPlan:
    """Resolve a ``--fault-plan`` value: JSON file, inline JSON, or
    ``key=value`` shorthand (``crash_batches=1:4,seed=3``)."""
    spec = spec.strip()
    if spec.startswith("{"):
        try:
            return FaultPlan.from_dict(json.loads(spec))
        except json.JSONDecodeError as error:
            raise ConfigError(f"invalid fault-plan JSON: {error}") from error
    if spec.endswith(".json") or os.path.exists(spec):
        try:
            with open(spec) as handle:
                return FaultPlan.from_dict(json.load(handle))
        except FileNotFoundError as error:
            raise ConfigError(f"fault-plan file not found: {spec}") from error
        except json.JSONDecodeError as error:
            raise ConfigError(
                f"invalid fault-plan JSON in {spec}: {error}"
            ) from error
    return _parse_inline(spec)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How failed batches turn back into queued work.

    ``max_attempts`` is the *total* per-request attempt budget (1 means
    a crashed request fails outright).  Requeue backoff grows
    exponentially with the attempt count and is deadline-aware: a
    request is never parked past the instant its deadline would make
    the retry pointless.  ``recovery_us`` is the quarantine duration
    before a crashed array is health-probed and readmitted to the
    pool.
    """

    max_attempts: int = 3
    backoff_us: float = 200.0
    backoff_multiplier: float = 2.0
    recovery_us: float = 5000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be at least 1")
        if not (math.isfinite(self.backoff_us) and self.backoff_us >= 0):
            raise ConfigError("backoff_us must be finite and non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if not (math.isfinite(self.recovery_us) and self.recovery_us >= 0):
            raise ConfigError("recovery_us must be finite and non-negative")

    def requeue_at_us(self, now_us: float, request) -> float:
        """When a just-crashed request should re-enter its queue."""
        delay = self.backoff_us * self.backoff_multiplier**request.attempts
        at = now_us + delay
        if math.isfinite(request.deadline_us):
            # Waiting past the deadline makes the retry pointless;
            # a request already past it retries immediately (the
            # completion still counts as a miss, not an error).
            at = min(at, max(now_us, request.deadline_us))
        return at

    def describe(self) -> str:
        """Short human-readable policy summary."""
        return (
            f"retry<={self.max_attempts}"
            f"/backoff{self.backoff_us:g}us"
            f"/recover{self.recovery_us:g}us"
        )


class FaultInjector:
    """Deterministic per-placement fault decisions for one run.

    One injector per core: :meth:`decide` is called exactly once per
    placed batch, in placement order, so the ordinal counter and the
    seeded Bernoulli streams advance identically in every driver of the
    same configuration.  The decision the injector makes is stamped on
    the batch; *when* the crash or detection surfaces is the driver's
    business.  The corruption stream is seeded apart from the crash
    stream, so arming one rate never reshuffles the other's draws.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._corrupt_rng = random.Random((plan.seed + 1) * 1_000_003)
        self._crash_batches = frozenset(plan.crash_batches)
        self._crash_requests = frozenset(plan.crash_requests)
        self._corrupt_batches = frozenset(plan.corrupt_batches)
        self.ordinal = 0
        self.crashes = 0
        self.corruptions = 0

    def decide(
        self, array: int, dispatch_us: float, members
    ) -> tuple[bool, CorruptionSpec | None, bool]:
        """Decide the fate of the batch just placed (advances state).

        Returns ``(crash, corruption, correlated)``: whether the batch
        crashes, the :class:`CorruptionSpec` silently corrupting it (a
        crash dominates — a doomed batch never also corrupts), and
        whether the crash came from a correlated ``failure_groups``
        window.
        """
        plan = self.plan
        ordinal = self.ordinal
        self.ordinal += 1
        # The Bernoulli draws happen unconditionally whenever their rate
        # is set, so each random stream depends only on the placement
        # count, never on which earlier batches happened to fault.
        draw = self._rng.random() if plan.crash_rate > 0.0 else 1.0
        corrupt_draw = (
            self._corrupt_rng.random() if plan.corrupt_rate > 0.0 else 1.0
        )
        capped = (
            plan.max_crashes is not None and self.crashes >= plan.max_crashes
        )
        correlated = any(
            array in arrays and start <= dispatch_us < end
            for arrays, start, end in plan.failure_groups
        )
        crash = not capped and (
            ordinal in self._crash_batches
            or any(
                member.index in self._crash_requests and member.attempts == 0
                for member in members
            )
            or any(
                array == down and start <= dispatch_us < end
                for down, start, end in plan.array_down
            )
            or correlated
            or draw < plan.crash_rate
        )
        if crash:
            self.crashes += 1
            return True, None, correlated
        corrupt = (
            ordinal in self._corrupt_batches or corrupt_draw < plan.corrupt_rate
        )
        if not corrupt:
            return False, None, False
        self.corruptions += 1
        spec = CorruptionSpec(
            target=plan.corrupt_target,
            bits=plan.corrupt_bits,
            seed=(plan.seed * 1_000_003 + ordinal * 7_919 + 12_289)
            & 0x7FFFFFFF,
        )
        return False, spec, False

    def should_crash(self, array: int, dispatch_us: float, members) -> bool:
        """Crash-only view of :meth:`decide` (advances the same state)."""
        crash, _, _ = self.decide(array, dispatch_us, members)
        return crash


@dataclasses.dataclass
class FaultStats:
    """Run-level fault accounting, maintained by the serving core.

    The corruption counters split three ways: ``corruptions`` counts
    every silently corrupted placement, ``detected`` the ones the
    integrity layer caught (each becomes a retryable fault), and
    ``corrupted_served`` the *requests* whose corrupted results reached
    the caller undetected — the number the checksum mode drives to
    zero.  ``correlated`` counts crashes caused by a ``failure_groups``
    window; ``canaries`` / ``canary_detected`` account the periodic
    known-golden probe stream.
    """

    crashes: int = 0
    injected: int = 0
    retries: int = 0
    failed: int = 0
    quarantines: int = 0
    recoveries: int = 0
    recovery_total_us: float = 0.0
    recovery_max_us: float = 0.0
    corruptions: int = 0
    detected: int = 0
    corrupted_served: int = 0
    correlated: int = 0
    canaries: int = 0
    canary_detected: int = 0

    @property
    def any(self) -> bool:
        """Whether any fault activity happened at all."""
        return bool(
            self.crashes
            or self.retries
            or self.failed
            or self.corruptions
            or self.canaries
        )

    def to_dict(self) -> dict:
        """JSON-ready counters."""
        return {
            "crashes": self.crashes,
            "injected": self.injected,
            "retries": self.retries,
            "failed": self.failed,
            "quarantines": self.quarantines,
            "recoveries": self.recoveries,
            "recovery_total_us": self.recovery_total_us,
            "recovery_max_us": self.recovery_max_us,
            "corruptions": self.corruptions,
            "detected": self.detected,
            "corrupted_served": self.corrupted_served,
            "correlated": self.correlated,
            "canaries": self.canaries,
            "canary_detected": self.canary_detected,
        }


class FaultyExecutor:
    """Executor wrapper that injects plan-driven crashes at the call site.

    For driving a *live* executor (inline engine or process pool)
    through a :class:`FaultPlan` without the serving core in the loop —
    unit tests and standalone harnesses.  The serving runtime itself
    injects via the core's placement-ordinal decisions (so sim and live
    agree batch for batch); this wrapper makes its own per-call
    decisions with the same plan semantics, ordinal = call number.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.image_size = inner.image_size
        self._rng = random.Random(plan.seed)
        self._crash_batches = frozenset(plan.crash_batches)
        self.calls = 0
        self.crashes = 0

    def execute(self, array: int, images):
        """Run the batch on the wrapped executor, or crash per the plan."""
        plan = self.plan
        ordinal = self.calls
        self.calls += 1
        draw = self._rng.random() if plan.crash_rate > 0.0 else 1.0
        bounded = plan.max_crashes is not None and self.crashes >= plan.max_crashes
        if not bounded and (
            ordinal in self._crash_batches or draw < plan.crash_rate
        ):
            self.crashes += 1
            raise InjectedCrashError(
                f"injected crash on array {array} (call {ordinal})"
            )
        return self.inner.execute(array, images)

    def close(self) -> None:
        """Close the wrapped executor."""
        self.inner.close()
