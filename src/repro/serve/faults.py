"""Fault tolerance for the serving stack: injection, retry, quarantine.

Three pieces, shared by every driver of the
:class:`~repro.serve.core.ServingCore` (the discrete-event simulator,
the virtual-time replay, and the live asyncio runtime):

* :class:`FaultPlan` — a **seedable, declarative fault schedule**:
  crash the Nth placed batch, crash the batch carrying request K's
  first attempt, a Bernoulli per-batch crash rate, hang-before-detect
  durations, and array-down windows.  Plans are pure data (JSON or a
  ``key=value`` inline spec via :func:`load_fault_plan`), so a fault
  experiment is exactly as reproducible as the arrival trace driving
  it.
* :class:`FaultInjector` — the runtime decision engine for a plan.
  It is consulted once per *placement*, in placement order, which is
  identical across the simulator and the live runtime (both drive the
  same core); a seeded plan therefore crashes the *same* batches in
  both, making sim-vs-live fault studies directly comparable.
* :class:`RetryPolicy` — how failures are handled regardless of where
  they came from (injected or a real worker death): per-request attempt
  budgets, exponential deadline-aware backoff for requeued work, and
  the quarantine duration before a crashed array is readmitted.

The injector only *marks* a placed batch as doomed
(``PlacedBatch.fault``); detection timing, requeue scheduling, and
recovery are driven by the clock owner — event-heap entries in the
simulator, ``call_later`` timers in the live runtime — so the core
itself stays time-source-agnostic.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import random

from repro.errors import ConfigError
from repro.serve.workers import WorkerCrashError


class InjectedCrashError(WorkerCrashError):
    """A deliberate, plan-scheduled crash (not a real worker death)."""


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Declarative, seedable schedule of injected faults.

    ``crash_batches`` are 0-based *placement ordinals* — the Nth batch
    the core places crashes, whatever it contains.  ``crash_requests``
    crash the batch carrying that request index's **first** attempt
    (retries of the same request run clean, so the fault is transient
    by construction).  ``crash_rate`` is a per-placement Bernoulli
    draw from a ``seed``-ed generator, optionally bounded by
    ``max_crashes`` (a bounded plan is *transient*: with attempt
    budget left, every request still completes).  ``array_down``
    windows ``(array, start_us, end_us)`` crash any batch dispatched
    on that array inside the window.  ``hang_us`` delays detection:
    a crashing batch occupies its array for ``hang_us`` before the
    watchdog notices (0 means the crash surfaces when the batch's
    results were due).
    """

    crash_batches: tuple[int, ...] = ()
    crash_requests: tuple[int, ...] = ()
    crash_rate: float = 0.0
    max_crashes: int | None = None
    hang_us: float = 0.0
    array_down: tuple[tuple[int, float, float], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.crash_rate <= 1.0):
            raise ConfigError("crash_rate must be within [0, 1]")
        if self.max_crashes is not None and self.max_crashes < 0:
            raise ConfigError("max_crashes must be non-negative")
        if not (math.isfinite(self.hang_us) and self.hang_us >= 0):
            raise ConfigError("hang_us must be finite and non-negative")
        object.__setattr__(
            self, "crash_batches", tuple(int(b) for b in self.crash_batches)
        )
        object.__setattr__(
            self, "crash_requests", tuple(int(r) for r in self.crash_requests)
        )
        windows = []
        for window in self.array_down:
            array, start, end = window
            if end <= start:
                raise ConfigError(
                    f"array_down window {window} must have end > start"
                )
            windows.append((int(array), float(start), float(end)))
        object.__setattr__(self, "array_down", tuple(windows))

    @property
    def empty(self) -> bool:
        """Whether this plan can never inject anything."""
        return (
            not self.crash_batches
            and not self.crash_requests
            and self.crash_rate == 0.0
            and not self.array_down
        )

    def detect_delay_us(self, duration_us: float) -> float:
        """How long a doomed batch occupies its array before detection."""
        return self.hang_us if self.hang_us > 0.0 else duration_us

    def to_dict(self) -> dict:
        """JSON-ready plan description (drops unset fields)."""
        out: dict = {"seed": self.seed}
        if self.crash_batches:
            out["crash_batches"] = list(self.crash_batches)
        if self.crash_requests:
            out["crash_requests"] = list(self.crash_requests)
        if self.crash_rate:
            out["crash_rate"] = self.crash_rate
        if self.max_crashes is not None:
            out["max_crashes"] = self.max_crashes
        if self.hang_us:
            out["hang_us"] = self.hang_us
        if self.array_down:
            out["array_down"] = [list(w) for w in self.array_down]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> FaultPlan:
        """Build a plan from a JSON object (unknown keys rejected)."""
        if not isinstance(data, dict):
            raise ConfigError("fault plan JSON must be an object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown fault-plan keys: {sorted(unknown)} (known: {sorted(known)})"
            )
        kwargs = dict(data)
        if "array_down" in kwargs:
            kwargs["array_down"] = tuple(tuple(w) for w in kwargs["array_down"])
        return cls(**kwargs)

    def describe(self) -> str:
        """Short human-readable plan summary."""
        parts = []
        if self.crash_batches:
            parts.append(f"batches={','.join(map(str, self.crash_batches))}")
        if self.crash_requests:
            parts.append(f"requests={','.join(map(str, self.crash_requests))}")
        if self.crash_rate:
            parts.append(f"rate={self.crash_rate:g}")
        if self.max_crashes is not None:
            parts.append(f"max={self.max_crashes}")
        if self.hang_us:
            parts.append(f"hang={self.hang_us:g}us")
        if self.array_down:
            parts.append(f"down={len(self.array_down)}win")
        if not parts:
            return "faults:none"
        return "faults[" + " ".join(parts) + f" seed={self.seed}]"


_LIST_KEYS = {"crash_batches", "crash_requests"}
_INT_KEYS = {"seed", "max_crashes"}
_FLOAT_KEYS = {"crash_rate", "hang_us"}


def _parse_inline(spec: str) -> FaultPlan:
    """Parse ``key=value,key=value`` (lists colon-separated,
    ``array_down`` windows as ``array@start:end``)."""
    kwargs: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(f"fault-plan entry {part!r} is not key=value")
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key in _LIST_KEYS:
                kwargs[key] = tuple(int(v) for v in value.split(":") if v)
            elif key in _INT_KEYS:
                kwargs[key] = int(value)
            elif key in _FLOAT_KEYS:
                kwargs[key] = float(value)
            elif key == "array_down":
                windows = []
                for token in value.split("+"):
                    array, _, span = token.partition("@")
                    start, _, end = span.partition(":")
                    if not (array and start and end):
                        raise ConfigError(
                            f"array_down window {token!r} must be array@start:end"
                        )
                    windows.append((int(array), float(start), float(end)))
                kwargs[key] = tuple(windows)
            else:
                raise ConfigError(f"unknown fault-plan key {key!r}")
        except ValueError as error:
            raise ConfigError(
                f"bad fault-plan value {part!r} ({error})"
            ) from error
    return FaultPlan(**kwargs)


def load_fault_plan(spec: str) -> FaultPlan:
    """Resolve a ``--fault-plan`` value: JSON file, inline JSON, or
    ``key=value`` shorthand (``crash_batches=1:4,seed=3``)."""
    spec = spec.strip()
    if spec.startswith("{"):
        try:
            return FaultPlan.from_dict(json.loads(spec))
        except json.JSONDecodeError as error:
            raise ConfigError(f"invalid fault-plan JSON: {error}") from error
    if spec.endswith(".json") or os.path.exists(spec):
        try:
            with open(spec) as handle:
                return FaultPlan.from_dict(json.load(handle))
        except FileNotFoundError as error:
            raise ConfigError(f"fault-plan file not found: {spec}") from error
        except json.JSONDecodeError as error:
            raise ConfigError(
                f"invalid fault-plan JSON in {spec}: {error}"
            ) from error
    return _parse_inline(spec)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How failed batches turn back into queued work.

    ``max_attempts`` is the *total* per-request attempt budget (1 means
    a crashed request fails outright).  Requeue backoff grows
    exponentially with the attempt count and is deadline-aware: a
    request is never parked past the instant its deadline would make
    the retry pointless.  ``recovery_us`` is the quarantine duration
    before a crashed array is health-probed and readmitted to the
    pool.
    """

    max_attempts: int = 3
    backoff_us: float = 200.0
    backoff_multiplier: float = 2.0
    recovery_us: float = 5000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be at least 1")
        if not (math.isfinite(self.backoff_us) and self.backoff_us >= 0):
            raise ConfigError("backoff_us must be finite and non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if not (math.isfinite(self.recovery_us) and self.recovery_us >= 0):
            raise ConfigError("recovery_us must be finite and non-negative")

    def requeue_at_us(self, now_us: float, request) -> float:
        """When a just-crashed request should re-enter its queue."""
        delay = self.backoff_us * self.backoff_multiplier**request.attempts
        at = now_us + delay
        if math.isfinite(request.deadline_us):
            # Waiting past the deadline makes the retry pointless;
            # a request already past it retries immediately (the
            # completion still counts as a miss, not an error).
            at = min(at, max(now_us, request.deadline_us))
        return at

    def describe(self) -> str:
        """Short human-readable policy summary."""
        return (
            f"retry<={self.max_attempts}"
            f"/backoff{self.backoff_us:g}us"
            f"/recover{self.recovery_us:g}us"
        )


class FaultInjector:
    """Deterministic per-placement crash decisions for one run.

    One injector per core: :meth:`should_crash` is called exactly once
    per placed batch, in placement order, so the ordinal counter and the
    seeded Bernoulli stream advance identically in every driver of the
    same configuration.  The decision the injector makes is stamped on
    the batch; *when* the crash surfaces is the driver's business.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._crash_batches = frozenset(plan.crash_batches)
        self._crash_requests = frozenset(plan.crash_requests)
        self.ordinal = 0
        self.crashes = 0

    def should_crash(self, array: int, dispatch_us: float, members) -> bool:
        """Decide the fate of the batch just placed (advances state)."""
        plan = self.plan
        ordinal = self.ordinal
        self.ordinal += 1
        # The Bernoulli draw happens unconditionally whenever a rate is
        # set, so the random stream depends only on the placement count,
        # never on which earlier batches happened to crash.
        draw = self._rng.random() if plan.crash_rate > 0.0 else 1.0
        if plan.max_crashes is not None and self.crashes >= plan.max_crashes:
            return False
        crash = (
            ordinal in self._crash_batches
            or any(
                member.index in self._crash_requests and member.attempts == 0
                for member in members
            )
            or any(
                array == down and start <= dispatch_us < end
                for down, start, end in plan.array_down
            )
            or draw < plan.crash_rate
        )
        if crash:
            self.crashes += 1
        return crash


@dataclasses.dataclass
class FaultStats:
    """Run-level fault accounting, maintained by the serving core."""

    crashes: int = 0
    injected: int = 0
    retries: int = 0
    failed: int = 0
    quarantines: int = 0
    recoveries: int = 0
    recovery_total_us: float = 0.0
    recovery_max_us: float = 0.0

    @property
    def any(self) -> bool:
        """Whether any fault activity happened at all."""
        return bool(self.crashes or self.retries or self.failed)

    def to_dict(self) -> dict:
        """JSON-ready counters."""
        return {
            "crashes": self.crashes,
            "injected": self.injected,
            "retries": self.retries,
            "failed": self.failed,
            "quarantines": self.quarantines,
            "recoveries": self.recoveries,
            "recovery_total_us": self.recovery_total_us,
            "recovery_max_us": self.recovery_max_us,
        }


class FaultyExecutor:
    """Executor wrapper that injects plan-driven crashes at the call site.

    For driving a *live* executor (inline engine or process pool)
    through a :class:`FaultPlan` without the serving core in the loop —
    unit tests and standalone harnesses.  The serving runtime itself
    injects via the core's placement-ordinal decisions (so sim and live
    agree batch for batch); this wrapper makes its own per-call
    decisions with the same plan semantics, ordinal = call number.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.image_size = inner.image_size
        self._rng = random.Random(plan.seed)
        self._crash_batches = frozenset(plan.crash_batches)
        self.calls = 0
        self.crashes = 0

    def execute(self, array: int, images):
        """Run the batch on the wrapped executor, or crash per the plan."""
        plan = self.plan
        ordinal = self.calls
        self.calls += 1
        draw = self._rng.random() if plan.crash_rate > 0.0 else 1.0
        bounded = plan.max_crashes is not None and self.crashes >= plan.max_crashes
        if not bounded and (
            ordinal in self._crash_batches or draw < plan.crash_rate
        ):
            self.crashes += 1
            raise InjectedCrashError(
                f"injected crash on array {array} (call {ordinal})"
            )
        return self.inner.execute(array, images)

    def close(self) -> None:
        """Close the wrapped executor."""
        self.inner.close()
