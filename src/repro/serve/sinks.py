"""Completion sinks: one surface for recorded, streaming, and live runs.

Historically the serving simulator had two hard-wired result paths —
``record_requests=True`` filled per-request/per-batch tables inline, and
``record_requests=False`` folded everything into streaming histograms.
The live runtime would have needed a third.  A :class:`CompletionSink`
is the one protocol all three drive: the event loop reports arrivals,
sheds, and completed batches; the sink owns how they are materialized.

* :class:`RecordingSink` — full :class:`~repro.serve.stats.RequestRecord`
  / :class:`~repro.serve.stats.BatchRecord` tables, exact percentiles.
  The arithmetic of the per-member latency decomposition is kept
  bit-identical to the historical recorded path.
* :class:`StreamingSink` — O(1)-memory
  :class:`~repro.serve.stats.StreamingStats` histograms; counts exact,
  percentiles at histogram resolution.

Both end in the same :class:`~repro.serve.stats.ServingReport`, which is
what makes a sim-vs-live crosscheck a one-function comparison
(:mod:`repro.serve.compare`).

The ``on_batch`` contract passes per-member *inputs* (arrival, deadline,
idle-integral snapshot) plus the batch's dispatch/done instants and the
idle integral at dispatch; the sink derives each member's wait and its
batching-vs-queueing split.  ``dispatch_us``/``done_us`` are virtual
times in the simulator and wall-clock times in the live runtime — the
sink cannot tell the difference, which is the point.

Sinks aggregate *outcomes* into reports; the observability layer
(:mod:`repro.obs`) is the complementary surface for *events*: a tracer
on the serving core sees the full per-request lifecycle (including
intermediate instants sinks never learn, like batch formation and
stacked dispatch) and feeds timeline exports and live metrics.  Note
the streaming fast path supports sinks but not tracers — it bypasses
the instrumented core (see :meth:`ServingSimulator.run
<repro.serve.simulator.ServingSimulator.run>`).
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable

from repro.serve.stats import (
    DEFAULT_LATENCY_BIN_US,
    BatchRecord,
    RequestRecord,
    StreamingStats,
)


@runtime_checkable
class CompletionSink(Protocol):
    """Where a serving run's outcomes accumulate."""

    def on_arrival(
        self, arrival_us: float, deadline_us: float = math.inf, tenant: str = ""
    ) -> int:
        """Register one arriving request; returns its global index."""
        ...

    def on_shed(self, index: int) -> None:
        """Request ``index`` was rejected by admission (never served)."""
        ...

    def on_failed(self, index: int) -> None:
        """Request ``index`` terminally failed (crash budget exhausted)."""
        ...

    def on_batch(
        self,
        *,
        tenant: str,
        array: int,
        size: int,
        dispatch_us: float,
        done_us: float,
        cycles: int,
        warm: bool,
        drain_saved_us: float,
        member_indices: Sequence[int],
        member_arrivals: Sequence[float],
        member_deadlines: Sequence[float],
        member_idle_snaps: Sequence[float],
        idle_accum_us: float,
        crashed: bool = False,
    ) -> int:
        """Fold one finished batch in; returns the batch index.

        ``crashed=True`` records a batch the fault layer killed — its
        members either retried (a later ``on_batch`` overwrites them) or
        terminally failed (``on_failed`` marks them).
        """
        ...


class RecordingSink:
    """Per-request / per-batch tables (the exact-percentile path)."""

    def __init__(self) -> None:
        self.requests: list[RequestRecord] = []
        self.batches: list[BatchRecord] = []

    def on_arrival(
        self, arrival_us: float, deadline_us: float = math.inf, tenant: str = ""
    ) -> int:
        """Append a request record; returns its index."""
        index = len(self.requests)
        self.requests.append(
            RequestRecord(
                index=index,
                arrival_us=arrival_us,
                tenant=tenant,
                deadline_us=deadline_us,
            )
        )
        return index

    def on_shed(self, index: int) -> None:
        """Mark a request shed."""
        self.requests[index].shed = True

    def on_failed(self, index: int) -> None:
        """Mark a request terminally failed by the fault layer."""
        self.requests[index].failed = True

    def on_batch(
        self,
        *,
        tenant: str,
        array: int,
        size: int,
        dispatch_us: float,
        done_us: float,
        cycles: int,
        warm: bool,
        drain_saved_us: float,
        member_indices: Sequence[int],
        member_arrivals: Sequence[float],
        member_deadlines: Sequence[float],
        member_idle_snaps: Sequence[float],
        idle_accum_us: float,
        crashed: bool = False,
    ) -> int:
        """Record the batch and fill every member's decomposition."""
        batch = BatchRecord(
            index=len(self.batches),
            size=size,
            array=array,
            dispatch_us=dispatch_us,
            done_us=done_us,
            cycles=cycles,
            request_indices=list(member_indices),
            warm=warm,
            drain_saved_us=drain_saved_us,
            tenant=tenant,
            crashed=crashed,
        )
        self.batches.append(batch)
        requests = self.requests
        for index, snap in zip(member_indices, member_idle_snaps):
            record = requests[index]
            record.dispatch_us = dispatch_us
            record.done_us = done_us
            record.batch_index = batch.index
            record.drain_saved_us = drain_saved_us
            # Clamp float-epsilon residue of the idle-time integral so
            # components stay non-negative and sum to the wait.
            wait = dispatch_us - record.arrival_us
            batching = idle_accum_us - snap
            record.batching_us = min(max(batching, 0.0), wait)
            record.queueing_us = wait - record.batching_us
        return batch.index


class StreamingSink:
    """O(1)-memory histograms (the streaming-percentile path).

    ``kind``/``subbins`` select the underlying
    :class:`~repro.serve.stats.LatencyHistogram` bucketing — ``"log"``
    bounds memory under deep overload (the live runtime's default).
    """

    def __init__(
        self,
        bin_us: float = DEFAULT_LATENCY_BIN_US,
        pipeline: bool = False,
        kind: str = "linear",
        subbins: int = 32,
    ) -> None:
        self.stats = StreamingStats(
            bin_us=bin_us, pipeline=pipeline, kind=kind, subbins=subbins
        )
        #: Kept empty — the streaming representation has no tables; the
        #: attributes exist so report assembly reads any sink uniformly.
        self.requests: list[RequestRecord] = []
        self.batches: list[BatchRecord] = []
        self._next_index = 0
        self._next_batch = 0

    def on_arrival(
        self, arrival_us: float, deadline_us: float = math.inf, tenant: str = ""
    ) -> int:
        """Count one offered request; returns its index."""
        index = self._next_index
        self._next_index += 1
        self.stats.offered += 1
        return index

    def on_shed(self, index: int) -> None:
        """Count one shed request."""
        self.stats.shed += 1

    def on_failed(self, index: int) -> None:
        """Count one terminally failed request."""
        self.stats.failed += 1

    def on_batch(
        self,
        *,
        tenant: str,
        array: int,
        size: int,
        dispatch_us: float,
        done_us: float,
        cycles: int,
        warm: bool,
        drain_saved_us: float,
        member_indices: Sequence[int],
        member_arrivals: Sequence[float],
        member_deadlines: Sequence[float],
        member_idle_snaps: Sequence[float],
        idle_accum_us: float,
        crashed: bool = False,
    ) -> int:
        """Fold the batch and each member's decomposition into histograms."""
        if crashed:
            # A crashed batch served nobody: its members either retry
            # (folded by their eventual completing batch) or terminally
            # fail (counted by ``on_failed``).
            index = self._next_batch
            self._next_batch += 1
            return index
        stats = self.stats
        compute = done_us - dispatch_us
        stats.add_batch(size, warm, drain_saved_us)
        inf = math.inf
        for arrival, deadline, snap in zip(
            member_arrivals, member_deadlines, member_idle_snaps
        ):
            wait = dispatch_us - arrival
            batching = idle_accum_us - snap
            if batching < 0.0:
                batching = 0.0
            elif batching > wait:
                batching = wait
            stats.add_request(
                done_us - arrival, wait - batching, batching, compute, drain_saved_us
            )
            if deadline != inf:
                stats.served_with_deadline += 1
                if done_us > deadline:
                    stats.deadline_misses += 1
        index = self._next_batch
        self._next_batch += 1
        return index
