"""ABFT-style integrity checking: detect silent data corruption.

Crashes are loud; a flipped bit in a weight tile or an accumulator is
not — the batch completes and returns wrong predictions that would be
served as successes.  This module is the detection side of the
corruption faults a :class:`~repro.serve.faults.FaultPlan` injects:

* :class:`IntegrityPolicy` — the per-server check configuration.
  ``checksum`` arms algorithm-based fault tolerance (ABFT) column
  checksums on every compiled ``GEMM``/``GROUPED_GEMM`` plus a cheap
  per-batch output fingerprint; ``checksum+canary`` adds periodic
  canary probes with known golden outputs.  The verification work is
  priced into the cost models as an explicit overhead knob
  (``integrity=`` on :class:`~repro.serve.costs.ScheduledBatchCost` /
  :class:`~repro.serve.costs.AnalyticBatchCost`), so the throughput
  cost of checking is part of every schedule and sweep.
* ABFT helpers — :func:`column_checksums` (the Huang–Abraham column-sum
  invariant ``acc = data @ w  =>  acc @ 1 = data @ (w @ 1)`` holds
  exactly in the accelerator's int64 accumulators) and
  :func:`apply_corruption`, the seeded bit-flipper both the simulator's
  bookkeeping and the live stream executor share, so corrupted numerics
  are bit-identical across drivers.
* :class:`CanaryStream` — placement-count-driven probe requests with
  known golden outputs.  A canary costs nothing in the schedule (probes
  ride along as observability) but catches corruption modes the inline
  checksums cannot see — notably ``output``-target flips *after* the
  last checked GEMM.

Detection is deterministic given the plan and the policy:
``checksum`` catches every ``weight``/``accumulator`` flip (the column
sums are exact integer arithmetic, and a flip's low-16-bit delta can
never cancel), and never catches ``output`` flips — which is exactly
what the no-check-equivalence property test pins down.  A detected
corruption raises :class:`DetectedCorruptionError`, a
:class:`~repro.serve.workers.WorkerCrashError`, so it feeds the
existing retry/requeue/quarantine machinery unchanged.
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np

from repro.errors import ConfigError
from repro.serve.faults import CorruptionSpec, FaultPlan
from repro.serve.workers import WorkerCrashError

#: Check modes a server can arm, in increasing coverage/cost order.
CHECK_MODES = ("none", "checksum", "checksum+canary")

#: Default placements between canary probes when the mode enables them.
DEFAULT_CANARY_EVERY = 16


class DetectedCorruptionError(WorkerCrashError):
    """An integrity check caught corrupted numerics mid-batch.

    Subclassing :class:`WorkerCrashError` means every existing failure
    path — retry, requeue, quarantine, recovery — handles a detection
    exactly like a crash, which is the design: a corrupted array is as
    suspect as a crashed one.
    """


@dataclasses.dataclass(frozen=True)
class IntegrityPolicy:
    """What integrity checking a server runs, and how often canaries fire.

    ``mode`` is one of :data:`CHECK_MODES`; ``canary_every`` is the
    placement period of canary probes per array (only meaningful in
    ``checksum+canary`` mode; 0 picks :data:`DEFAULT_CANARY_EVERY`).
    """

    mode: str = "none"
    canary_every: int = 0

    def __post_init__(self) -> None:
        if self.mode not in CHECK_MODES:
            raise ConfigError(
                f"integrity mode must be one of {CHECK_MODES},"
                f" not {self.mode!r}"
            )
        if self.canary_every < 0:
            raise ConfigError("canary_every must be non-negative")
        if self.canary and self.canary_every == 0:
            object.__setattr__(self, "canary_every", DEFAULT_CANARY_EVERY)

    @property
    def enabled(self) -> bool:
        """Whether any checking is armed at all."""
        return self.mode != "none"

    @property
    def checks(self) -> bool:
        """Whether the ABFT checksum layer verifies every batch."""
        return self.mode in ("checksum", "checksum+canary")

    @property
    def canary(self) -> bool:
        """Whether periodic canary probes run."""
        return self.mode == "checksum+canary"

    def detects(self, target: str) -> bool:
        """Whether this policy catches a corruption of ``target``.

        Deterministic by construction: the column checksums are exact
        int64 arithmetic, so any in-envelope (weight tile/accumulator)
        flip is caught; ``output`` flips happen after the last checked
        GEMM and sail through every inline check.
        """
        return self.checks and target != "output"

    def describe(self) -> str:
        """Short human-readable policy summary."""
        if not self.enabled:
            return "integrity:none"
        if self.canary:
            return f"integrity[{self.mode} every={self.canary_every}]"
        return f"integrity[{self.mode}]"


# ---- ABFT numerics -------------------------------------------------------


def column_checksums(weights: np.ndarray) -> np.ndarray:
    """Column sums over the contraction axis of a weight tile.

    For a batched GEMM tile ``(k, n)`` this is the classic ABFT column
    checksum row ``1ᵀ·W``; grouped tiles ``(..., k, n)`` checksum per
    group.  Computed in int64, so comparison against a stored clean
    checksum is exact.
    """
    return np.asarray(weights, dtype=np.int64).sum(axis=-2)


def output_checksums(acc: np.ndarray) -> np.ndarray:
    """Row sums of an accumulator ``(..., m, n)`` — the output-side
    invariant ``acc @ 1``, equal to ``data @ (w @ 1)`` for a clean
    GEMM and exact in int64."""
    return np.asarray(acc, dtype=np.int64).sum(axis=-1)


def checksums_match(observed: np.ndarray, expected: np.ndarray) -> bool:
    """Exact equality of two checksum vectors."""
    return bool(np.array_equal(observed, expected))


def apply_corruption(tensor: np.ndarray, spec: CorruptionSpec) -> np.ndarray:
    """Return a copy of ``tensor`` with the spec's seeded bit flips.

    One element (chosen by ``spec.seed``) has ``spec.bits`` distinct
    low-order bits XOR-flipped.  Confining all flips to one element of
    the int64 container guarantees a non-zero delta of at most 2¹⁶−1 —
    small enough to stay inside any accumulator format's range, large
    enough that no row/column sum can cancel it — so a single call is
    *always* visible to the checksums over its tensor.
    """
    rng = random.Random(spec.seed)
    # order="C" so reshape(-1) below is a writable view whatever the
    # input tensor's memory layout (a transposed tile would otherwise
    # reshape into a copy and the flip would never land).
    out = np.array(tensor, dtype=np.int64, copy=True, order="C")
    flat = out.reshape(-1)
    index = rng.randrange(flat.size)
    mask = 0
    for bit in rng.sample(range(16), min(int(spec.bits), 16)):
        mask |= 1 << bit
    flat[index] = np.int64(int(flat[index]) ^ mask)
    return out


def batch_fingerprint(predictions: np.ndarray) -> int:
    """Cheap per-batch output fingerprint (order-sensitive int64 fold).

    The last line of defense the checksum mode adds outside the GEMMs:
    two executions of the same batch must fingerprint identically, so a
    re-executed batch can be cross-checked without storing its outputs.
    """
    arr = np.asarray(predictions, dtype=np.int64)
    weights = np.arange(1, arr.size + 1, dtype=np.int64)
    return int((arr.reshape(-1) * weights).sum() & 0x7FFFFFFFFFFFFFFF)


# ---- canary probes -------------------------------------------------------


class CanaryStream:
    """Periodic known-golden probe requests, one stream per server.

    Every ``canary_every``-th placement on an array rides a zero-cost
    canary probe along with it: a known input whose golden output is
    precomputed, so *any* corruption of the probe — including
    ``output``-target flips the inline checksums cannot see — is
    detected by direct comparison.  Whether a probe hits corrupted
    hardware is a seeded draw at the plan's ``corrupt_rate`` from a
    stream independent of both injection streams, so arming canaries
    never perturbs which batches crash or corrupt.

    Probes are placement-count driven, not clock driven, so the
    simulator and the virtual replay fire identical canary sequences.
    """

    def __init__(
        self, plan: FaultPlan, policy: IntegrityPolicy, arrays: int
    ) -> None:
        self.plan = plan
        self.policy = policy
        self.every = policy.canary_every
        self._rng = random.Random((plan.seed + 2) * 1_000_003)
        self._counts: dict[int, int] = {}

    def on_placement(self, array: int, now_us: float, stats, tracer) -> None:
        """Account one placement; maybe fire a probe (advances state)."""
        if self.every <= 0:
            return
        count = self._counts.get(array, 0) + 1
        self._counts[array] = count
        if count % self.every:
            return
        draw = self._rng.random()
        detected = self.plan.corrupt_rate > 0.0 and draw < self.plan.corrupt_rate
        stats.canaries += 1
        if detected:
            stats.canary_detected += 1
        if tracer.enabled:
            tracer.canary_probe(now_us, array, detected)
