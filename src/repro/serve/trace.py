"""Request arrival traces for the serving simulator.

A trace is a sorted array of arrival times in simulated microseconds.
Generators cover the regimes a CapsuleNet inference service sees:

* :func:`poisson_trace` — memoryless arrivals (independent users);
* :func:`bursty_trace` — Poisson bursts of near-simultaneous requests
  (shared upstream batching, page loads fanning out);
* :func:`uniform_trace` — deterministic evenly-spaced arrivals (a load
  generator in closed-loop pacing);
* :func:`replay_trace` — explicit timestamps (replaying a recorded log);
* :func:`load_trace_file` — replay timestamps recorded in a JSONL or CSV
  file (the ``repro serve-sim --trace-file`` front-end).

All randomness flows through the caller's single
:class:`numpy.random.Generator`, so one seed reproduces a whole serving
simulation (trace *and* request images) run to run.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ArrivalTrace:
    """A named, sorted sequence of request arrival times (microseconds).

    ``deadlines_us`` optionally carries one *absolute* completion
    deadline per request (``inf`` = none), aligned with ``times_us`` —
    replayed logs can record per-request SLAs; generated traces leave it
    ``None`` and the simulator stamps the serving configuration's
    relative SLA instead.
    """

    name: str
    times_us: np.ndarray
    deadlines_us: np.ndarray | None = None

    def __post_init__(self) -> None:
        times = np.asarray(self.times_us, dtype=np.float64)
        if times.ndim != 1 or times.size < 1:
            raise ConfigError("a trace needs at least one arrival time")
        if not np.all(np.isfinite(times)):
            raise ConfigError("arrival times must be finite")
        if times[0] < 0 or np.any(np.diff(times) < 0):
            raise ConfigError("arrival times must be non-negative and sorted")
        object.__setattr__(self, "times_us", times)
        if self.deadlines_us is not None:
            deadlines = np.asarray(self.deadlines_us, dtype=np.float64)
            if deadlines.shape != times.shape:
                raise ConfigError(
                    f"{deadlines.size} deadlines for {times.size} arrivals"
                )
            if np.any(np.isnan(deadlines)):
                raise ConfigError("deadlines must not be NaN (use inf for none)")
            object.__setattr__(self, "deadlines_us", deadlines)

    @property
    def count(self) -> int:
        """Number of requests in the trace."""
        return int(self.times_us.size)

    @property
    def duration_us(self) -> float:
        """Time of the last arrival."""
        return float(self.times_us[-1])

    @property
    def offered_rps(self) -> float:
        """Mean offered load in requests per second over ``[0, last]``."""
        if self.duration_us <= 0.0:
            return float("inf")
        return self.count / self.duration_us * 1e6


def _check_rate_count(rate_rps: float, count: int) -> None:
    # The inverted comparison also rejects NaN rates.
    if not (math.isfinite(rate_rps) and rate_rps > 0):
        raise ConfigError("arrival rate must be finite and positive")
    if count < 1:
        raise ConfigError("trace needs at least one request")


def poisson_trace(rate_rps: float, count: int, rng: np.random.Generator) -> ArrivalTrace:
    """Poisson arrivals: i.i.d. exponential inter-arrival gaps."""
    _check_rate_count(rate_rps, count)
    gaps = rng.exponential(scale=1e6 / rate_rps, size=count)
    return ArrivalTrace("poisson", np.cumsum(gaps))


def uniform_trace(rate_rps: float, count: int) -> ArrivalTrace:
    """Deterministic evenly-spaced arrivals at the given rate."""
    _check_rate_count(rate_rps, count)
    gap = 1e6 / rate_rps
    return ArrivalTrace("uniform", gap * np.arange(1, count + 1, dtype=np.float64))


def bursty_trace(
    rate_rps: float,
    count: int,
    rng: np.random.Generator,
    burst_size: int = 8,
    spread_us: float = 50.0,
) -> ArrivalTrace:
    """Poisson bursts of ``burst_size`` near-simultaneous requests.

    Burst epochs arrive as a Poisson process at ``rate_rps / burst_size``
    (so the mean request rate matches ``rate_rps``); requests inside a
    burst are jittered uniformly over ``spread_us`` microseconds.
    """
    _check_rate_count(rate_rps, count)
    if burst_size < 1:
        raise ConfigError("burst size must be positive")
    if spread_us < 0:
        raise ConfigError("burst spread must be non-negative")
    bursts = -(-count // burst_size)  # ceil
    epochs = np.cumsum(rng.exponential(scale=1e6 * burst_size / rate_rps, size=bursts))
    offsets = rng.uniform(0.0, spread_us, size=bursts * burst_size)
    times = np.sort((np.repeat(epochs, burst_size) + offsets)[:count])
    return ArrivalTrace("bursty", times)


def replay_trace(
    times_us: np.ndarray,
    name: str = "replay",
    deadlines_us: np.ndarray | None = None,
) -> ArrivalTrace:
    """Replay explicit arrival timestamps (sorted on ingest).

    ``deadlines_us`` (absolute, aligned with ``times_us``) is carried
    through the sort so each request keeps its own deadline.
    """
    times = np.asarray(times_us, dtype=np.float64)
    order = np.argsort(times, kind="stable")
    deadlines = (
        None
        if deadlines_us is None
        else np.asarray(deadlines_us, dtype=np.float64)[order]
    )
    return ArrivalTrace(name, times[order], deadlines)


#: Keys accepted for the arrival time in JSONL objects / CSV headers.
TRACE_TIME_KEYS = ("arrival_us", "time_us", "timestamp_us")

#: Key carrying an absolute per-request deadline in JSONL objects / CSV
#: headers (optional; requests without it have no SLA).
TRACE_DEADLINE_KEY = "deadline_us"


def _entry_time(value, where: str) -> float:
    """One arrival entry: a bare number or an object with a time key."""
    if isinstance(value, dict):
        for key in TRACE_TIME_KEYS:
            if key in value:
                value = value[key]
                break
        else:
            raise ConfigError(
                f"{where}: no arrival key (expected one of {TRACE_TIME_KEYS})"
            )
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{where}: arrival time must be a number")
    return float(value)


def _entry_deadline(value, where: str) -> float:
    """The optional absolute deadline of one arrival entry (inf = none)."""
    if not isinstance(value, dict) or TRACE_DEADLINE_KEY not in value:
        return math.inf
    deadline = value[TRACE_DEADLINE_KEY]
    if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
        raise ConfigError(f"{where}: deadline must be a number")
    return float(deadline)


def _jsonl_times(path: Path) -> tuple[list[float], list[float]]:
    times: list[float] = []
    deadlines: list[float] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            value = json.loads(line)
        except json.JSONDecodeError as error:
            raise ConfigError(f"{path}:{lineno}: invalid JSON ({error})") from error
        times.append(_entry_time(value, f"{path}:{lineno}"))
        deadlines.append(_entry_deadline(value, f"{path}:{lineno}"))
    return times, deadlines


def _json_times(path: Path) -> tuple[list[float], list[float]]:
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ConfigError(f"{path}: invalid JSON ({error})") from error
    if not isinstance(document, list):
        raise ConfigError(
            f"{path}: a .json trace must be an array of arrivals"
            " (use .jsonl for line-delimited records)"
        )
    times = [
        _entry_time(value, f"{path}[{index}]")
        for index, value in enumerate(document)
    ]
    deadlines = [
        _entry_deadline(value, f"{path}[{index}]")
        for index, value in enumerate(document)
    ]
    return times, deadlines


def _csv_times(path: Path) -> tuple[list[float], list[float]]:
    with path.open(newline="") as handle:
        rows = [row for row in csv.reader(handle) if row and any(cell.strip() for cell in row)]
    if not rows:
        return [], []
    column = 0
    deadline_column = None
    try:
        float(rows[0][column])
        body = rows
    except ValueError:
        # Header row: find a recognized arrival column (default: first).
        header = [cell.strip().lower() for cell in rows[0]]
        for key in TRACE_TIME_KEYS:
            if key in header:
                column = header.index(key)
                break
        if TRACE_DEADLINE_KEY in header:
            deadline_column = header.index(TRACE_DEADLINE_KEY)
        body = rows[1:]
    times: list[float] = []
    deadlines: list[float] = []
    for lineno, row in enumerate(body, start=1 + (body is not rows)):
        try:
            times.append(float(row[column]))
        except (ValueError, IndexError) as error:
            raise ConfigError(
                f"{path}:{lineno}: arrival time must be a number ({error})"
            ) from error
        if deadline_column is None or deadline_column >= len(row):
            # No deadline column, or this row simply omits the trailing
            # cell: the request carries no SLA.
            deadlines.append(math.inf)
        else:
            cell = row[deadline_column].strip()
            if not cell:
                deadlines.append(math.inf)
                continue
            try:
                deadlines.append(float(cell))
            except ValueError as error:
                raise ConfigError(
                    f"{path}:{lineno}: deadline must be a number ({error})"
                ) from error
    return times, deadlines


def load_trace_file(path: str | Path) -> ArrivalTrace:
    """Replay arrival times recorded in a ``.jsonl``, ``.json`` or ``.csv`` file.

    JSONL (``.jsonl``/``.ndjson``): one arrival per line, either a bare
    number (microseconds) or an object carrying one of the
    :data:`TRACE_TIME_KEYS` keys plus an optional absolute
    :data:`TRACE_DEADLINE_KEY` (per-request SLA).  ``.json``: one array
    of the same entries.  CSV: one arrival per row, with an optional
    header naming the arrival (and optionally the ``deadline_us``)
    column; the first column is used otherwise.  Timestamps are sorted
    on ingest, matching :func:`replay_trace`, deadlines riding along.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"trace file {path} does not exist")
    suffix = path.suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        times, deadlines = _jsonl_times(path)
    elif suffix == ".json":
        times, deadlines = _json_times(path)
    elif suffix == ".csv":
        times, deadlines = _csv_times(path)
    else:
        raise ConfigError(
            f"unsupported trace file type {suffix!r}"
            " (expected .jsonl, .ndjson, .json or .csv)"
        )
    if not times:
        raise ConfigError(f"trace file {path} contains no arrivals")
    carried = (
        np.asarray(deadlines) if any(math.isfinite(d) for d in deadlines) else None
    )
    return replay_trace(
        np.asarray(times), name=f"replay:{path.name}", deadlines_us=carried
    )


#: Trace kinds constructible from (rate, count, rng) — the CLI surface.
TRACE_KINDS = ("poisson", "bursty", "uniform")


def make_trace(
    kind: str,
    rate_rps: float,
    count: int,
    rng: np.random.Generator,
    **kwargs,
) -> ArrivalTrace:
    """Build a named trace kind from the CLI parameters."""
    if kind == "poisson":
        return poisson_trace(rate_rps, count, rng)
    if kind == "bursty":
        return bursty_trace(rate_rps, count, rng, **kwargs)
    if kind == "uniform":
        return uniform_trace(rate_rps, count)
    raise ConfigError(f"unknown trace kind {kind!r} (choose from {TRACE_KINDS})")
