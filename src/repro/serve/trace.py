"""Request arrival traces for the serving simulator.

A trace is a sorted array of arrival times in simulated microseconds.
Generators cover the regimes a CapsuleNet inference service sees:

* :func:`poisson_trace` — memoryless arrivals (independent users);
* :func:`bursty_trace` — Poisson bursts of near-simultaneous requests
  (shared upstream batching, page loads fanning out);
* :func:`uniform_trace` — deterministic evenly-spaced arrivals (a load
  generator in closed-loop pacing);
* :func:`replay_trace` — explicit timestamps (replaying a recorded log);
* :func:`load_trace_file` — replay timestamps recorded in a JSONL or CSV
  file (the ``repro serve-sim --trace-file`` front-end).

All randomness flows through the caller's single
:class:`numpy.random.Generator`, so one seed reproduces a whole serving
simulation (trace *and* request images) run to run.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ArrivalTrace:
    """A named, sorted sequence of request arrival times (microseconds)."""

    name: str
    times_us: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times_us, dtype=np.float64)
        if times.ndim != 1 or times.size < 1:
            raise ConfigError("a trace needs at least one arrival time")
        if not np.all(np.isfinite(times)):
            raise ConfigError("arrival times must be finite")
        if times[0] < 0 or np.any(np.diff(times) < 0):
            raise ConfigError("arrival times must be non-negative and sorted")
        object.__setattr__(self, "times_us", times)

    @property
    def count(self) -> int:
        """Number of requests in the trace."""
        return int(self.times_us.size)

    @property
    def duration_us(self) -> float:
        """Time of the last arrival."""
        return float(self.times_us[-1])

    @property
    def offered_rps(self) -> float:
        """Mean offered load in requests per second over ``[0, last]``."""
        if self.duration_us <= 0.0:
            return float("inf")
        return self.count / self.duration_us * 1e6


def _check_rate_count(rate_rps: float, count: int) -> None:
    # The inverted comparison also rejects NaN rates.
    if not (math.isfinite(rate_rps) and rate_rps > 0):
        raise ConfigError("arrival rate must be finite and positive")
    if count < 1:
        raise ConfigError("trace needs at least one request")


def poisson_trace(rate_rps: float, count: int, rng: np.random.Generator) -> ArrivalTrace:
    """Poisson arrivals: i.i.d. exponential inter-arrival gaps."""
    _check_rate_count(rate_rps, count)
    gaps = rng.exponential(scale=1e6 / rate_rps, size=count)
    return ArrivalTrace("poisson", np.cumsum(gaps))


def uniform_trace(rate_rps: float, count: int) -> ArrivalTrace:
    """Deterministic evenly-spaced arrivals at the given rate."""
    _check_rate_count(rate_rps, count)
    gap = 1e6 / rate_rps
    return ArrivalTrace("uniform", gap * np.arange(1, count + 1, dtype=np.float64))


def bursty_trace(
    rate_rps: float,
    count: int,
    rng: np.random.Generator,
    burst_size: int = 8,
    spread_us: float = 50.0,
) -> ArrivalTrace:
    """Poisson bursts of ``burst_size`` near-simultaneous requests.

    Burst epochs arrive as a Poisson process at ``rate_rps / burst_size``
    (so the mean request rate matches ``rate_rps``); requests inside a
    burst are jittered uniformly over ``spread_us`` microseconds.
    """
    _check_rate_count(rate_rps, count)
    if burst_size < 1:
        raise ConfigError("burst size must be positive")
    if spread_us < 0:
        raise ConfigError("burst spread must be non-negative")
    bursts = -(-count // burst_size)  # ceil
    epochs = np.cumsum(rng.exponential(scale=1e6 * burst_size / rate_rps, size=bursts))
    offsets = rng.uniform(0.0, spread_us, size=bursts * burst_size)
    times = np.sort((np.repeat(epochs, burst_size) + offsets)[:count])
    return ArrivalTrace("bursty", times)


def replay_trace(times_us: np.ndarray, name: str = "replay") -> ArrivalTrace:
    """Replay explicit arrival timestamps (sorted on ingest)."""
    times = np.sort(np.asarray(times_us, dtype=np.float64))
    return ArrivalTrace(name, times)


#: Keys accepted for the arrival time in JSONL objects / CSV headers.
TRACE_TIME_KEYS = ("arrival_us", "time_us", "timestamp_us")


def _entry_time(value, where: str) -> float:
    """One arrival entry: a bare number or an object with a time key."""
    if isinstance(value, dict):
        for key in TRACE_TIME_KEYS:
            if key in value:
                value = value[key]
                break
        else:
            raise ConfigError(
                f"{where}: no arrival key (expected one of {TRACE_TIME_KEYS})"
            )
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{where}: arrival time must be a number")
    return float(value)


def _jsonl_times(path: Path) -> list[float]:
    times: list[float] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            value = json.loads(line)
        except json.JSONDecodeError as error:
            raise ConfigError(f"{path}:{lineno}: invalid JSON ({error})") from error
        times.append(_entry_time(value, f"{path}:{lineno}"))
    return times


def _json_times(path: Path) -> list[float]:
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ConfigError(f"{path}: invalid JSON ({error})") from error
    if not isinstance(document, list):
        raise ConfigError(
            f"{path}: a .json trace must be an array of arrivals"
            " (use .jsonl for line-delimited records)"
        )
    return [
        _entry_time(value, f"{path}[{index}]")
        for index, value in enumerate(document)
    ]


def _csv_times(path: Path) -> list[float]:
    with path.open(newline="") as handle:
        rows = [row for row in csv.reader(handle) if row and any(cell.strip() for cell in row)]
    if not rows:
        return []
    column = 0
    try:
        float(rows[0][column])
        body = rows
    except ValueError:
        # Header row: find a recognized arrival column (default: first).
        header = [cell.strip().lower() for cell in rows[0]]
        for key in TRACE_TIME_KEYS:
            if key in header:
                column = header.index(key)
                break
        body = rows[1:]
    times: list[float] = []
    for lineno, row in enumerate(body, start=1 + (body is not rows)):
        try:
            times.append(float(row[column]))
        except (ValueError, IndexError) as error:
            raise ConfigError(
                f"{path}:{lineno}: arrival time must be a number ({error})"
            ) from error
    return times


def load_trace_file(path: str | Path) -> ArrivalTrace:
    """Replay arrival times recorded in a ``.jsonl``, ``.json`` or ``.csv`` file.

    JSONL (``.jsonl``/``.ndjson``): one arrival per line, either a bare
    number (microseconds) or an object carrying one of the
    :data:`TRACE_TIME_KEYS` keys.  ``.json``: one array of the same
    entries.  CSV: one arrival per row, with an optional header naming
    the column (the first column is used otherwise).  Timestamps are
    sorted on ingest, matching :func:`replay_trace`.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"trace file {path} does not exist")
    suffix = path.suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        times = _jsonl_times(path)
    elif suffix == ".json":
        times = _json_times(path)
    elif suffix == ".csv":
        times = _csv_times(path)
    else:
        raise ConfigError(
            f"unsupported trace file type {suffix!r}"
            " (expected .jsonl, .ndjson, .json or .csv)"
        )
    if not times:
        raise ConfigError(f"trace file {path} contains no arrivals")
    return replay_trace(np.asarray(times), name=f"replay:{path.name}")


#: Trace kinds constructible from (rate, count, rng) — the CLI surface.
TRACE_KINDS = ("poisson", "bursty", "uniform")


def make_trace(
    kind: str,
    rate_rps: float,
    count: int,
    rng: np.random.Generator,
    **kwargs,
) -> ArrivalTrace:
    """Build a named trace kind from the CLI parameters."""
    if kind == "poisson":
        return poisson_trace(rate_rps, count, rng)
    if kind == "bursty":
        return bursty_trace(rate_rps, count, rng, **kwargs)
    if kind == "uniform":
        return uniform_trace(rate_rps, count)
    raise ConfigError(f"unknown trace kind {kind!r} (choose from {TRACE_KINDS})")
