"""Request arrival traces for the serving simulator.

A trace is a sorted array of arrival times in simulated microseconds.
Generators cover the regimes a CapsuleNet inference service sees:

* :func:`poisson_trace` — memoryless arrivals (independent users);
* :func:`bursty_trace` — Poisson bursts of near-simultaneous requests
  (shared upstream batching, page loads fanning out);
* :func:`uniform_trace` — deterministic evenly-spaced arrivals (a load
  generator in closed-loop pacing);
* :func:`replay_trace` — explicit timestamps (replaying a recorded log).

All randomness flows through the caller's single
:class:`numpy.random.Generator`, so one seed reproduces a whole serving
simulation (trace *and* request images) run to run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ArrivalTrace:
    """A named, sorted sequence of request arrival times (microseconds)."""

    name: str
    times_us: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times_us, dtype=np.float64)
        if times.ndim != 1 or times.size < 1:
            raise ConfigError("a trace needs at least one arrival time")
        if not np.all(np.isfinite(times)):
            raise ConfigError("arrival times must be finite")
        if times[0] < 0 or np.any(np.diff(times) < 0):
            raise ConfigError("arrival times must be non-negative and sorted")
        object.__setattr__(self, "times_us", times)

    @property
    def count(self) -> int:
        """Number of requests in the trace."""
        return int(self.times_us.size)

    @property
    def duration_us(self) -> float:
        """Time of the last arrival."""
        return float(self.times_us[-1])

    @property
    def offered_rps(self) -> float:
        """Mean offered load in requests per second over ``[0, last]``."""
        if self.duration_us <= 0.0:
            return float("inf")
        return self.count / self.duration_us * 1e6


def _check_rate_count(rate_rps: float, count: int) -> None:
    # The inverted comparison also rejects NaN rates.
    if not (math.isfinite(rate_rps) and rate_rps > 0):
        raise ConfigError("arrival rate must be finite and positive")
    if count < 1:
        raise ConfigError("trace needs at least one request")


def poisson_trace(rate_rps: float, count: int, rng: np.random.Generator) -> ArrivalTrace:
    """Poisson arrivals: i.i.d. exponential inter-arrival gaps."""
    _check_rate_count(rate_rps, count)
    gaps = rng.exponential(scale=1e6 / rate_rps, size=count)
    return ArrivalTrace("poisson", np.cumsum(gaps))


def uniform_trace(rate_rps: float, count: int) -> ArrivalTrace:
    """Deterministic evenly-spaced arrivals at the given rate."""
    _check_rate_count(rate_rps, count)
    gap = 1e6 / rate_rps
    return ArrivalTrace("uniform", gap * np.arange(1, count + 1, dtype=np.float64))


def bursty_trace(
    rate_rps: float,
    count: int,
    rng: np.random.Generator,
    burst_size: int = 8,
    spread_us: float = 50.0,
) -> ArrivalTrace:
    """Poisson bursts of ``burst_size`` near-simultaneous requests.

    Burst epochs arrive as a Poisson process at ``rate_rps / burst_size``
    (so the mean request rate matches ``rate_rps``); requests inside a
    burst are jittered uniformly over ``spread_us`` microseconds.
    """
    _check_rate_count(rate_rps, count)
    if burst_size < 1:
        raise ConfigError("burst size must be positive")
    if spread_us < 0:
        raise ConfigError("burst spread must be non-negative")
    bursts = -(-count // burst_size)  # ceil
    epochs = np.cumsum(rng.exponential(scale=1e6 * burst_size / rate_rps, size=bursts))
    offsets = rng.uniform(0.0, spread_us, size=bursts * burst_size)
    times = np.sort((np.repeat(epochs, burst_size) + offsets)[:count])
    return ArrivalTrace("bursty", times)


def replay_trace(times_us: np.ndarray) -> ArrivalTrace:
    """Replay explicit arrival timestamps (sorted on ingest)."""
    times = np.sort(np.asarray(times_us, dtype=np.float64))
    return ArrivalTrace("replay", times)


#: Trace kinds constructible from (rate, count, rng) — the CLI surface.
TRACE_KINDS = ("poisson", "bursty", "uniform")


def make_trace(
    kind: str,
    rate_rps: float,
    count: int,
    rng: np.random.Generator,
    **kwargs,
) -> ArrivalTrace:
    """Build a named trace kind from the CLI parameters."""
    if kind == "poisson":
        return poisson_trace(rate_rps, count, rng)
    if kind == "bursty":
        return bursty_trace(rate_rps, count, rng, **kwargs)
    if kind == "uniform":
        return uniform_trace(rate_rps, count)
    raise ConfigError(f"unknown trace kind {kind!r} (choose from {TRACE_KINDS})")
