"""Time sources for the serving stack: one protocol, two implementations.

The serving core (:mod:`repro.serve.core`) is time-source-agnostic —
every entry point takes an explicit ``now_us`` — so *who supplies the
time* is the only difference between the discrete-event simulator and
the live runtime:

* :class:`VirtualClock` — simulation time.  Never advances on its own;
  the event loop moves it to each event's timestamp.  Deterministic, so
  a replayed trace produces bit-identical reports.
* :class:`MonotonicClock` — wall-clock time from
  :func:`time.monotonic_ns`, anchored at construction so timestamps are
  microseconds since the server started (the same origin convention the
  simulator uses for trace time).

Both express time as **microseconds** (float), matching every other
timestamp in :mod:`repro.serve`.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError


@runtime_checkable
class Clock(Protocol):
    """Anything that can answer "what time is it" in microseconds."""

    def now_us(self) -> float:
        """Current time in microseconds since this clock's origin."""
        ...


class VirtualClock:
    """Simulation clock: advances only when told to.

    ``advance_to`` is monotonic — moving backwards raises, because a
    discrete-event loop that pops a past timestamp has a heap-ordering
    bug that silent clamping would mask.
    """

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)

    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_us

    def advance_to(self, now_us: float) -> None:
        """Move the clock forward to ``now_us`` (never backwards)."""
        if now_us < self._now_us:
            raise ConfigError(
                f"virtual clock cannot move backwards"
                f" ({now_us} < {self._now_us})"
            )
        self._now_us = float(now_us)

    def advance_by(self, delta_us: float) -> None:
        """Move the clock forward by ``delta_us`` microseconds."""
        self.advance_to(self._now_us + delta_us)


class MonotonicClock:
    """Wall clock in microseconds since construction.

    Backed by :func:`time.monotonic_ns` (immune to wall-clock steps);
    the origin is captured at construction so live timestamps are small
    and directly comparable to simulator trace time.
    """

    def __init__(self) -> None:
        self._origin_ns = time.monotonic_ns()

    def now_us(self) -> float:
        """Microseconds elapsed since this clock was created."""
        return (time.monotonic_ns() - self._origin_ns) / 1e3
