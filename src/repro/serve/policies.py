"""Pluggable serving policies: admission / batching / dispatch protocols.

The serving simulator is policy-agnostic: it drives three small
protocols, each with a string registry mapping names to constructors, and
a :class:`ServerConfig` composing one implementation of each with the
batch cost model.

* :class:`AdmissionPolicy` — decides, at arrival time, whether a request
  enters its queue or is **shed** (rejected; recorded, never served).
  Implementations: :class:`AdmitAll` (the classic behavior),
  :class:`QueueLimitAdmission` (bounded queue; ``max_queue=0`` sheds
  everything — a drained tenant), :class:`DeadlineAdmission` (shed a
  request whose deadline is unmeetable even by an immediate solo
  dispatch — serving it would burn array time on a guaranteed SLA miss),
  and :class:`ChainedAdmission` (all must admit).
* :class:`BatchingPolicy` — when is a queue ready and what does a batch
  take (:mod:`repro.serve.batcher`: the classic
  :class:`~repro.serve.batcher.BatchPolicy` max-batch + max-wait rule
  and the SLA-aware :class:`~repro.serve.batcher.DeadlineBatcher`).
* :class:`DispatchPolicy` — which idle array a formed batch claims
  (:mod:`repro.serve.dispatcher`: least-recent, round-robin,
  prefer-warm, greedy-when-idle over heterogeneous pools).

:data:`SERVING_POLICIES` additionally names whole presets (``fifo`` /
``deadline`` / ``greedy``) so the CLI and benchmarks can select a
coherent triple with one flag.  :class:`TenantSpec` describes one tenant
of a multi-tenant simulation (own trace, network/cost, SLA, weight); the
simulator serves ready tenants in weighted-fair order so no tenant
starves under saturation.  :class:`CostBank` memoizes per-configuration
cost models for heterogeneous pools (two arrays of the same size share
one model).
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig
from repro.serve.batcher import BatchPolicy, DeadlineBatcher, QueuedRequest, RequestQueue
from repro.serve.costs import AnalyticBatchCost, ScheduledBatchCost
from repro.serve.dispatcher import (
    ArrayPool,
    BacklogGreedyDispatch,
    DispatchContext,
    GreedyWhenIdleDispatch,
    LeastRecentDispatch,
    PreferWarmDispatch,
    RoundRobinDispatch,
)
from repro.serve.faults import FaultPlan, RetryPolicy, load_fault_plan
from repro.serve.integrity import CHECK_MODES, IntegrityPolicy
from repro.serve.trace import ArrivalTrace


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Accept or shed a request at arrival time."""

    def admit(
        self,
        request: QueuedRequest,
        now_us: float,
        queue: RequestQueue,
        pool: ArrayPool,
    ) -> bool:
        """Whether the request enters the queue (False = shed)."""
        ...

    def describe(self) -> str:
        """Short human-readable policy name."""
        ...


@runtime_checkable
class BatchingPolicy(Protocol):
    """When is a queue ready, and what does a batch take."""

    max_batch: int

    def ready(self, queue: RequestQueue, now_us: float) -> bool:
        """Whether a batch should dispatch to an idle array now."""
        ...

    def take(self, queue: RequestQueue, now_us: float = 0.0) -> list[QueuedRequest]:
        """Pop the members of the next batch."""
        ...

    def next_deadline_us(self, queue: RequestQueue, now_us: float = 0.0) -> float | None:
        """When readiness must be re-evaluated if nothing arrives."""
        ...

    def describe(self) -> str:
        """Short human-readable policy name."""
        ...


@runtime_checkable
class DispatchPolicy(Protocol):
    """Choose which idle array a formed batch claims."""

    def select(self, ctx: DispatchContext) -> int:
        """Pick an idle array id for the batch."""
        ...

    def describe(self) -> str:
        """Short human-readable policy name."""
        ...


@dataclass(frozen=True)
class AdmitAll:
    """Admit every arriving request (the classic behavior)."""

    def admit(self, request, now_us, queue, pool) -> bool:
        """Always true."""
        return True

    def describe(self) -> str:
        """Short human-readable policy name."""
        return "admit-all"


@dataclass(frozen=True)
class QueueLimitAdmission:
    """Shed arrivals once the queue holds ``max_queue`` requests.

    ``max_queue=0`` models zero admission capacity: everything sheds.
    """

    max_queue: int

    def __post_init__(self) -> None:
        if self.max_queue < 0:
            raise ConfigError("max_queue must be non-negative")

    def admit(self, request, now_us, queue, pool) -> bool:
        """Admit while the queue is below the cap."""
        return len(queue) < self.max_queue

    def describe(self) -> str:
        """Short human-readable policy name."""
        return f"queue<={self.max_queue}"


@dataclass
class DeadlineAdmission:
    """Shed requests whose deadline is already unmeetable at arrival.

    The earliest a request can plausibly complete is estimated as the
    earliest instant an array frees (every array busy pushes the start
    to the soonest in-flight completion), plus the backlog ahead of it
    (queued requests served at the batcher's steady-state per-request
    rate, ``predicted_compute(max_batch) / max_batch``, across the
    pool's arrays), plus its own batch's compute time.  A request whose
    deadline precedes that estimate — including one whose deadline has
    already passed — cannot make its SLA no matter what the batcher
    does; admitting it would spend array cycles on a guaranteed miss and
    push feasible requests later.  Requests without deadlines always
    admit.  The compute predictor binds to the tenant's cost model like
    the :class:`~repro.serve.batcher.DeadlineBatcher`'s; the batch cap
    binds from the tenant's batching policy.
    """

    slack_us: float = 0.0
    _predict_us: Callable[[int], float] | None = field(
        default=None, repr=False, compare=False
    )
    _max_batch: int = field(default=1, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not (math.isfinite(self.slack_us) and self.slack_us >= 0):
            raise ConfigError("slack_us must be finite and non-negative")

    def bind(self, cost) -> None:
        """Predict batch compute time from a serving cost model."""
        config = cost.config
        self._predict_us = lambda size: config.cycles_to_us(cost.batch_cycles(size))

    def bind_batching(self, batching) -> None:
        """Learn the batch cap the queue will actually be served with."""
        self._max_batch = max(1, getattr(batching, "max_batch", 1))

    def earliest_done_us(self, now_us: float, queue, pool) -> float:
        """Estimated earliest completion of a request arriving now."""
        if self._predict_us is None:
            return now_us
        start = pool.earliest_idle_us(now_us)
        per_request = self._predict_us(self._max_batch) / self._max_batch
        backlog = len(queue) * per_request / pool.count
        own_batch = self._predict_us(min(len(queue) + 1, self._max_batch))
        return start + backlog + own_batch

    def admit(self, request, now_us, queue, pool) -> bool:
        """Admit unless the estimated earliest completion misses the SLA."""
        if not math.isfinite(request.deadline_us):
            return True
        done = self.earliest_done_us(now_us, queue, pool)
        return done + self.slack_us <= request.deadline_us

    def describe(self) -> str:
        """Short human-readable policy name."""
        return "shed-infeasible"


@dataclass
class DegradedModeAdmission:
    """Shed early while the serving pool is degraded.

    Degradation has two triggers, both watched at admission time:

    * **quarantined capacity** — any array currently out of service
      (:meth:`~repro.serve.dispatcher.ArrayPool.quarantined_ids`), read
      straight off the pool every arrival;
    * **corruption detections** — the integrity layer catching corrupted
      numerics (checksum or canary).  The policy binds to the run's
      :class:`~repro.serve.faults.FaultStats` via :meth:`bind_faults`;
      each *new* detection opens (or extends) a ``hold_us`` degraded
      window, so a burst of detections keeps admission tight until the
      pool has been clean for a while.

    While degraded, arrivals shed once ``degraded_limit`` requests are
    queued (normally ``queue_limit``), so the shrunken pool works a
    short queue instead of accumulating a backlog of guaranteed SLA
    misses.  The decision depends only on policy state the simulator and
    virtual replay share, so degraded-mode runs stay decision-identical
    across those drivers; the live runtime's wall-clock hold windows
    legitimately differ.
    """

    queue_limit: int = 64
    degraded_limit: int = 8
    hold_us: float = 5000.0
    _stats: object | None = field(default=None, repr=False, compare=False)
    _seen_detections: int = field(default=0, repr=False, compare=False)
    _degraded_until_us: float = field(
        default=-math.inf, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.queue_limit < 0 or self.degraded_limit < 0:
            raise ConfigError("admission queue limits must be non-negative")
        if self.degraded_limit > self.queue_limit:
            raise ConfigError(
                "degraded_limit must not exceed queue_limit (a degraded"
                " pool admits less, never more)"
            )
        if not (math.isfinite(self.hold_us) and self.hold_us >= 0):
            raise ConfigError("hold_us must be finite and non-negative")

    def bind_faults(self, stats) -> None:
        """Watch a run's fault statistics for corruption detections."""
        self._stats = stats
        self._seen_detections = 0
        self._degraded_until_us = -math.inf

    def _detections(self) -> int:
        stats = self._stats
        if stats is None:
            return 0
        return stats.detected + stats.canary_detected

    def admit(self, request, now_us, queue, pool) -> bool:
        """Admit against the tight limit while the pool is degraded."""
        detections = self._detections()
        if detections > self._seen_detections:
            self._seen_detections = detections
            self._degraded_until_us = now_us + self.hold_us
        degraded = bool(pool.quarantined_ids()) or now_us < self._degraded_until_us
        limit = self.degraded_limit if degraded else self.queue_limit
        return len(queue) < limit

    def describe(self) -> str:
        """Short human-readable policy name."""
        return f"degraded[{self.queue_limit}->{self.degraded_limit}]"


@dataclass(frozen=True)
class ChainedAdmission:
    """Admit only when every chained policy admits."""

    policies: tuple

    def __post_init__(self) -> None:
        if not self.policies:
            raise ConfigError("a chained admission needs at least one policy")

    def bind(self, cost) -> None:
        """Propagate the cost predictor to chained policies."""
        for policy in self.policies:
            if hasattr(policy, "bind"):
                policy.bind(cost)

    def bind_batching(self, batching) -> None:
        """Propagate the batching policy to chained policies."""
        for policy in self.policies:
            if hasattr(policy, "bind_batching"):
                policy.bind_batching(batching)

    def bind_faults(self, stats) -> None:
        """Propagate the run's fault statistics to chained policies."""
        for policy in self.policies:
            if hasattr(policy, "bind_faults"):
                policy.bind_faults(stats)

    def admit(self, request, now_us, queue, pool) -> bool:
        """All chained policies must admit."""
        return all(
            policy.admit(request, now_us, queue, pool) for policy in self.policies
        )

    def describe(self) -> str:
        """Short human-readable policy name."""
        return "+".join(policy.describe() for policy in self.policies)


#: name -> admission-policy constructor.
ADMISSION_POLICIES: dict[str, Callable] = {
    "admit-all": AdmitAll,
    "queue-limit": QueueLimitAdmission,
    "deadline": DeadlineAdmission,
    "degraded": DegradedModeAdmission,
}

#: name -> batching-policy constructor.
BATCHING_POLICIES: dict[str, Callable] = {
    "max-wait": BatchPolicy,
    "deadline": DeadlineBatcher,
}

#: name -> dispatch-policy constructor.
DISPATCH_POLICIES: dict[str, Callable] = {
    "least-recent": LeastRecentDispatch,
    "round-robin": RoundRobinDispatch,
    "prefer-warm": PreferWarmDispatch,
    "greedy": GreedyWhenIdleDispatch,
    "greedy-backlog": BacklogGreedyDispatch,
}


def make_serving_policy(
    name: str,
    max_batch: int = 8,
    max_wait_us: float = 2000.0,
    slack_us: float = 0.0,
    queue_limit: int | None = None,
):
    """Build the (admission, batching, dispatch) triple of a named preset.

    * ``fifo`` — admit-all, max-batch + max-wait batching, least-recent
      dispatch: the classic PR 2/3 serving behavior.
    * ``deadline`` — shed-infeasible admission plus the SLA-aware
      :class:`~repro.serve.batcher.DeadlineBatcher` (early launch before
      the oldest deadline becomes unmeetable).
    * ``greedy`` — admit-all, dispatch whatever is queued the moment an
      array idles (zero coalescing wait), placed on the fastest idle
      array (:class:`~repro.serve.dispatcher.GreedyWhenIdleDispatch`).

    ``queue_limit`` chains a :class:`QueueLimitAdmission` onto any preset.
    """
    if name == "fifo":
        triple = (
            AdmitAll(),
            BatchPolicy(max_batch=max_batch, max_wait_us=max_wait_us),
            LeastRecentDispatch(),
        )
    elif name == "deadline":
        triple = (
            DeadlineAdmission(slack_us=slack_us),
            DeadlineBatcher(
                max_batch=max_batch, max_wait_us=max_wait_us, slack_us=slack_us
            ),
            LeastRecentDispatch(),
        )
    elif name == "greedy":
        triple = (
            AdmitAll(),
            BatchPolicy(max_batch=max_batch, max_wait_us=0.0),
            GreedyWhenIdleDispatch(),
        )
    else:
        raise ConfigError(
            f"unknown serving policy {name!r} (choose from {tuple(SERVING_POLICIES)})"
        )
    if queue_limit is not None:
        admission, batching, dispatch = triple
        limit = QueueLimitAdmission(queue_limit)
        if isinstance(admission, AdmitAll):
            admission = limit
        else:
            admission = ChainedAdmission((admission, limit))
        triple = (admission, batching, dispatch)
    return triple


#: Named presets resolvable by :func:`make_serving_policy`.
SERVING_POLICIES = ("fifo", "deadline", "greedy")


def add_server_arguments(
    parser: argparse.ArgumentParser, *, network_default: str = "mnist"
) -> None:
    """Register the server-shape flags shared by ``serve-sim`` and ``serve``.

    Both front-ends — the discrete-event simulator and the live runtime —
    resolve these flags through :meth:`ServerConfig.from_cli_args`, so the
    policy/batching/pool surface is one definition, not two drifting
    copies.  Choices come from the policy registries, so a newly
    registered policy is immediately selectable from either command.
    """
    parser.add_argument(
        "--max-batch", type=int, default=8, help="dynamic batcher batch-size cap"
    )
    parser.add_argument(
        "--max-wait-us",
        type=float,
        default=2000.0,
        help="max coalescing wait past the oldest queued request (us)",
    )
    parser.add_argument(
        "--policy",
        choices=tuple(SERVING_POLICIES),
        default="fifo",
        help="serving-policy preset: admission + batching + dispatch"
        " (fifo = the classic max-batch/max-wait behavior)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request SLA in milliseconds (drives the deadline policy's"
        " early launches and shed-infeasible admission)",
    )
    parser.add_argument(
        "--dispatch",
        choices=tuple(DISPATCH_POLICIES),
        default=None,
        help="override the preset's array-dispatch policy",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help="shed arrivals once this many requests are queued",
    )
    parser.add_argument(
        "--arrays", type=int, default=1, help="accelerator arrays to shard across"
    )
    parser.add_argument(
        "--array-sizes",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="heterogeneous pool: one NxN array per size (overrides --arrays)",
    )
    from repro.compiler.zoo import zoo_names

    parser.add_argument(
        "--network",
        choices=zoo_names(),
        default=network_default,
        help="model-zoo network served by default (tenants can override)",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help="charge back-to-back batches the stream-pipelined warm cost",
    )
    parser.add_argument(
        "--fifo-depth",
        type=int,
        default=None,
        help="accumulator FIFO depth (default: sized to the job)",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help="record the run's event stream and write a timeline:"
        " .json = Chrome trace-event / Perfetto, .jsonl = span log"
        " (same schema from serve-sim and serve)",
    )
    parser.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        metavar="PLAN",
        help="inject deterministic faults: a JSON file, inline JSON, or"
        " key=value shorthand (e.g. 'crash_rate=0.02,seed=3' or"
        " 'crash_batches=1:4'); same plan semantics in serve-sim and"
        " serve",
    )
    parser.add_argument(
        "--integrity",
        choices=CHECK_MODES,
        default=None,
        help="arm silent-data-corruption detection: 'checksum' = ABFT"
        " column checksums on every compiled GEMM, 'checksum+canary'"
        " additionally probes arrays with known-answer canaries; same"
        " detection decisions in serve-sim and serve",
    )
    parser.add_argument(
        "--canary-every",
        type=int,
        default=None,
        metavar="N",
        help="fire a canary probe every N placements per array"
        " (checksum+canary mode; default 16)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="total per-request attempt budget for crashed batches"
        " (default 3; 1 disables retries)",
    )
    parser.add_argument(
        "--retry-backoff-us",
        type=float,
        default=None,
        help="requeue backoff after a crash (exponential per attempt,"
        " deadline-aware; default 200us)",
    )
    parser.add_argument(
        "--recovery-us",
        type=float,
        default=None,
        help="quarantine duration before a crashed array is health-probed"
        " and readmitted (default 5000us)",
    )


@dataclass
class ServerConfig:
    """One serving configuration: policies + cost model + array pool.

    ``array_configs`` makes the pool heterogeneous (one
    :class:`~repro.hw.config.AcceleratorConfig` per array; ``arrays`` is
    derived from its length); ``deadline_us`` is the relative SLA stamped
    on every arriving request that does not carry its own deadline.
    """

    cost: ScheduledBatchCost | AnalyticBatchCost
    admission: AdmissionPolicy | None = None
    batching: BatchingPolicy | None = None
    dispatch: DispatchPolicy | None = None
    arrays: int = 1
    array_configs: Sequence[AcceleratorConfig] | None = None
    pipeline: bool = False
    deadline_us: float | None = None
    network_name: str = "capsnet"
    #: Deterministic fault-injection schedule (None = no injection; the
    #: retry/quarantine machinery still handles *real* crashes live).
    fault_plan: FaultPlan | None = None
    #: Crash-handling knobs (attempt budget, backoff, quarantine
    #: duration); None uses :class:`~repro.serve.faults.RetryPolicy`
    #: defaults.
    retry: RetryPolicy | None = None
    #: Silent-data-corruption detection: an
    #: :class:`~repro.serve.integrity.IntegrityPolicy`, a mode string
    #: from :data:`~repro.serve.integrity.CHECK_MODES`, or None
    #: (normalized to the disabled policy).
    integrity: IntegrityPolicy | str | None = None

    def __post_init__(self) -> None:
        if self.integrity is None:
            self.integrity = IntegrityPolicy()
        elif isinstance(self.integrity, str):
            self.integrity = IntegrityPolicy(mode=self.integrity)
        if self.admission is None:
            self.admission = AdmitAll()
        if self.batching is None:
            self.batching = BatchPolicy()
        if self.dispatch is None:
            self.dispatch = LeastRecentDispatch()
        if self.array_configs is not None:
            self.array_configs = tuple(self.array_configs)
            if self.arrays == 1 and len(self.array_configs) > 1:
                self.arrays = len(self.array_configs)
            elif len(self.array_configs) != self.arrays:
                raise ConfigError(
                    f"{len(self.array_configs)} array configs for"
                    f" {self.arrays} arrays"
                )
        if self.arrays < 1:
            raise ConfigError("array count must be positive")
        if self.deadline_us is not None and not (
            math.isfinite(self.deadline_us) and self.deadline_us > 0
        ):
            raise ConfigError("deadline_us must be finite and positive")

    @classmethod
    def from_policy(
        cls,
        policy: str,
        cost: ScheduledBatchCost | AnalyticBatchCost,
        max_batch: int = 8,
        max_wait_us: float = 2000.0,
        slack_us: float = 0.0,
        queue_limit: int | None = None,
        dispatch: str | None = None,
        **kwargs,
    ) -> "ServerConfig":
        """Build a config from a named preset (plus optional overrides)."""
        admission, batching, preset_dispatch = make_serving_policy(
            policy,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            slack_us=slack_us,
            queue_limit=queue_limit,
        )
        if dispatch is not None:
            if dispatch not in DISPATCH_POLICIES:
                raise ConfigError(
                    f"unknown dispatch policy {dispatch!r}"
                    f" (choose from {tuple(DISPATCH_POLICIES)})"
                )
            preset_dispatch = DISPATCH_POLICIES[dispatch]()
        return cls(
            cost=cost,
            admission=admission,
            batching=batching,
            dispatch=preset_dispatch,
            **kwargs,
        )

    @classmethod
    def from_cli_args(
        cls,
        args: argparse.Namespace,
        cost: ScheduledBatchCost | AnalyticBatchCost,
        accel_config: AcceleratorConfig | None = None,
    ) -> "ServerConfig":
        """Build a config from the shared CLI flags.

        The counterpart of :func:`add_server_arguments`: any command
        that registered the shared server flags resolves them here, so
        ``repro serve-sim`` and ``repro serve`` cannot drift apart.
        ``accel_config`` sizes the heterogeneous pool's per-array
        configurations (defaults to the cost model's own).
        """
        accel = accel_config if accel_config is not None else cost.config
        if args.deadline_ms is not None and args.deadline_ms <= 0:
            raise ConfigError("--deadline-ms must be positive")
        array_configs = None
        if args.array_sizes:
            array_configs = tuple(
                accel.with_array(size, size) for size in args.array_sizes
            )
        plan_spec = getattr(args, "fault_plan", None)
        fault_plan = load_fault_plan(plan_spec) if plan_spec else None
        retry = None
        retry_overrides = {
            "max_attempts": getattr(args, "max_attempts", None),
            "backoff_us": getattr(args, "retry_backoff_us", None),
            "recovery_us": getattr(args, "recovery_us", None),
        }
        if any(value is not None for value in retry_overrides.values()):
            retry = RetryPolicy(
                **{k: v for k, v in retry_overrides.items() if v is not None}
            )
        integrity = None
        mode = getattr(args, "integrity", None)
        canary_every = getattr(args, "canary_every", None)
        if canary_every is not None and mode != "checksum+canary":
            raise ConfigError(
                "--canary-every only applies to --integrity checksum+canary"
            )
        if mode is not None and mode != "none":
            kwargs = {"mode": mode}
            if canary_every is not None:
                kwargs["canary_every"] = canary_every
            integrity = IntegrityPolicy(**kwargs)
        return cls.from_policy(
            args.policy,
            cost,
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            queue_limit=args.queue_limit,
            dispatch=args.dispatch,
            arrays=len(array_configs) if array_configs else args.arrays,
            array_configs=array_configs,
            pipeline=args.pipeline,
            deadline_us=(
                args.deadline_ms * 1000.0 if args.deadline_ms is not None else None
            ),
            network_name=args.network,
            fault_plan=fault_plan,
            retry=retry,
            integrity=integrity,
        )

    def describe(self) -> str:
        """Short human-readable configuration name."""
        label = self.batching.describe()
        if not isinstance(self.admission, AdmitAll):
            label += f"/adm:{self.admission.describe()}"
        if not isinstance(self.dispatch, LeastRecentDispatch):
            label += f"/disp:{self.dispatch.describe()}"
        if self.fault_plan is not None and not self.fault_plan.empty:
            label += f"/{self.fault_plan.describe()}"
        if self.integrity.enabled:
            label += f"/{self.integrity.describe()}"
        return label

    def policy_json(self) -> dict:
        """JSON-serializable policy description for reports."""
        payload = {
            "max_batch": self.batching.max_batch,
            "max_wait_us": getattr(self.batching, "max_wait_us", None),
            "describe": self.describe(),
            "admission": self.admission.describe(),
            "batching": self.batching.describe(),
            "dispatch": self.dispatch.describe(),
        }
        if self.deadline_us is not None:
            payload["deadline_us"] = self.deadline_us
        if self.fault_plan is not None:
            payload["fault_plan"] = self.fault_plan.to_dict()
            retry = self.retry if self.retry is not None else RetryPolicy()
            payload["retry"] = retry.describe()
        if self.integrity.enabled:
            payload["integrity"] = self.integrity.mode
            if self.integrity.canary:
                payload["canary_every"] = self.integrity.canary_every
        return payload


@dataclass
class TenantSpec:
    """One tenant of a multi-tenant serving simulation.

    A tenant brings its own arrival trace and optionally its own cost
    model (a different network on the shared pool), SLA, weight, and
    admission/batching overrides.  Weights drive the simulator's
    weighted-fair service order: among ready tenants the one with the
    smallest ``served_requests / weight`` dispatches next, so a
    weight-2 tenant receives twice the weight-1 tenant's share under
    saturation and neither starves.
    """

    name: str
    trace: ArrivalTrace
    cost: ScheduledBatchCost | AnalyticBatchCost | None = None
    deadline_us: float | None = None
    weight: float = 1.0
    admission: AdmissionPolicy | None = None
    batching: BatchingPolicy | None = None

    def __post_init__(self) -> None:
        if not (math.isfinite(self.weight) and self.weight > 0):
            raise ConfigError("tenant weight must be finite and positive")
        if self.deadline_us is not None and not (
            math.isfinite(self.deadline_us) and self.deadline_us > 0
        ):
            raise ConfigError("deadline_us must be finite and positive")


class CostBank:
    """Per-configuration memoized cost models for heterogeneous pools.

    ``resolve(cost, config)`` returns ``cost`` itself when ``config`` is
    ``None`` or already the model's own configuration, and otherwise a
    same-kind model rebuilt for ``config`` — memoized by the (tenant
    cost, config) pair, so two arrays with equal configurations share
    one model and its per-batch-size memo.
    """

    def __init__(self) -> None:
        self._memo: dict[tuple[int, AcceleratorConfig], object] = {}

    def resolve(self, cost, config: AcceleratorConfig | None):
        """The cost model pricing ``cost``'s network on ``config``."""
        if config is None or config == cost.config:
            return cost
        key = (id(cost), config)
        if key not in self._memo:
            self._memo[key] = _rebuild_cost(cost, config)
        return self._memo[key]


def _rebuild_cost(cost, config: AcceleratorConfig):
    """Clone a cost model onto a different accelerator configuration."""
    if isinstance(cost, ScheduledBatchCost):
        return ScheduledBatchCost(
            qnet=cost.compiled,
            accel_config=config,
            accounting=cost.accounting,
            engine=cost.engine,
            pipeline=cost.pipeline,
            window=cost.window,
            prestage_depth=cost.prestage_depth,
            integrity=cost.integrity,
        )
    if isinstance(cost, AnalyticBatchCost):
        return AnalyticBatchCost(
            network=cost.compiled if cost.compiled is not None else cost.network,
            accel_config=config,
            optimized_routing=cost.optimized_routing,
            pipeline=cost.pipeline,
            window=cost.window,
            prestage_depth=cost.prestage_depth,
            integrity=cost.integrity,
        )
    raise ConfigError(
        "heterogeneous pools need a scheduled or analytic cost model"
    )
