"""Live serving runtime: real requests on the simulated accelerator.

The discrete-event :class:`~repro.serve.simulator.ServingSimulator` and
this runtime drive the SAME policy engine
(:class:`~repro.serve.core.ServingCore`) behind the SAME
:class:`~repro.serve.policies.ServerConfig`; the only differences are
who supplies the time (a :class:`~repro.serve.clock.Clock` — virtual vs
monotonic) and what a batch *is* (a priced duration vs a real numpy
batch executed on a :mod:`~repro.serve.workers` executor).  Both paths
end in the same :class:`~repro.serve.stats.ServingReport`, so comparing
a simulated run against a live one is a one-function crosscheck
(:mod:`repro.serve.compare`).

Three layers, each usable on its own:

* :class:`MeasuredBatchCost` — a serving cost model calibrated from the
  real executor (measured microseconds per batch size), so admission
  and dispatch policies predict with live numbers and a simulator run
  over recorded live arrivals predicts live latency.
* :class:`RuntimeEngine` — the time-source-agnostic serving state
  machine: offer / dispatch-ready / complete at caller-supplied
  instants, idle-integral bookkeeping, sink reporting, report assembly.
  :func:`replay_virtual` drives it from a virtual clock over a trace,
  reproducing the simulator's policy decisions *exactly* (the
  decisions-identical CI gate).
* :class:`ServingRuntime` — the asyncio front-end: in-process
  ``await submit(image)``, paced open-loop load
  (:meth:`ServingRuntime.run_load`), and a JSONL socket server
  (:meth:`ServingRuntime.serve_socket`).  Requests buffer into a
  power-of-two image ring so FIFO batches assemble as zero-copy
  contiguous views; formed batches execute on a thread pool sized like
  the simulated array pool, and completions re-enter the event loop via
  ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import math
import time
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig
from repro.obs.tracer import combine_tracers
from repro.serve.batcher import QueuedRequest
from repro.serve.clock import Clock, MonotonicClock
from repro.serve.core import (
    EVENT_ARRIVE,
    EVENT_CRASH,
    EVENT_DONE,
    EVENT_RECOVER,
    EVENT_REQUEUE,
    EVENT_TIMEOUT,
    PlacedBatch,
    ServingCore,
    group_requeues,
)
from repro.serve.faults import InjectedCrashError
from repro.serve.policies import ServerConfig, TenantSpec
from repro.serve.sinks import CompletionSink, RecordingSink, StreamingSink
from repro.serve.stats import ServingReport
from repro.serve.trace import ArrivalTrace
from repro.serve.workers import InlineEngineExecutor, WorkerCrashError


class RequestShedError(RuntimeError):
    """The admission policy rejected a submitted request."""


class MeasuredBatchCost:
    """Serving cost model calibrated from measured batch latencies.

    The simulator's cost models price batches from the cycle-accurate
    schedule; a live host's batch latency also carries Python/numpy
    overheads the schedule cannot see.  This model interpolates
    *measured* microseconds over a set of ``(batch size, us)``
    calibration points (linear between points, extrapolated from the
    nearest segment), quantized to cycles at the accelerator clock so
    every policy that predicts compute — deadline admission, greedy
    dispatch — reasons with live numbers.

    Warm costs equal cold costs (a live host has no modelled drain
    overlap), so it composes with the non-pipelined policy surface.
    """

    pipeline = False
    accounting = "measured"

    def __init__(
        self,
        config: AcceleratorConfig,
        points: list[tuple[int, float]],
    ) -> None:
        if not points:
            raise ConfigError("a measured cost needs at least one point")
        self.config = config
        self.points = sorted((int(size), float(us)) for size, us in points)
        sizes = [size for size, _ in self.points]
        if len(set(sizes)) != len(sizes):
            raise ConfigError("duplicate batch size in calibration points")
        for _, us in self.points:
            if not (math.isfinite(us) and us > 0):
                raise ConfigError("measured latencies must be finite and positive")
        self._sizes = sizes
        self._memo: dict[int, int] = {}

    @classmethod
    def calibrate(
        cls,
        executor,
        images: np.ndarray,
        sizes=(1, 2, 4, 8, 16, 32, 64, 128),
        repeats: int = 3,
        config: AcceleratorConfig | None = None,
    ) -> "MeasuredBatchCost":
        """Time the executor at each batch size (best of ``repeats``)."""
        if config is None:
            config = AcceleratorConfig()
        points = []
        for size in sizes:
            if size > len(images):
                break
            batch = np.ascontiguousarray(images[:size])
            executor.execute(0, batch)  # warm caches / lazy allocations
            best = math.inf
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                executor.execute(0, batch)
                best = min(best, (time.perf_counter() - start) * 1e6)
            points.append((size, best))
        return cls(config, points)

    @classmethod
    def from_report(
        cls,
        report: ServingReport,
        config: AcceleratorConfig | None = None,
    ) -> "MeasuredBatchCost":
        """Fit in-situ batch costs from a live run's recorded batches.

        Isolated calibration underestimates a loaded host (the engine
        shares the CPU with the event loop), so the sim-vs-live latency
        crosscheck prices batches at the median *observed* duration per
        batch size — the simulator then predicts the live queueing
        dynamics, which is the thing under test.
        """
        if config is None:
            config = AcceleratorConfig()
        by_size: dict[int, list[float]] = {}
        for batch in report.batches:
            by_size.setdefault(batch.size, []).append(batch.done_us - batch.dispatch_us)
        if not by_size:
            raise ConfigError("the report has no recorded batches to fit")
        points = [
            (size, float(np.median(durations)))
            for size, durations in sorted(by_size.items())
        ]
        return cls(config, points)

    def predict_us(self, size: int) -> float:
        """Interpolated batch latency in microseconds."""
        points = self.points
        if len(points) == 1:
            anchor, us = points[0]
            return us * (size / anchor)
        if size <= points[0][0]:
            low, high = points[0], points[1]
        elif size >= points[-1][0]:
            low, high = points[-2], points[-1]
        else:
            at = bisect_right(self._sizes, size)
            low, high = points[at - 1], points[at]
        (s0, u0), (s1, u1) = low, high
        return u0 + (size - s0) / (s1 - s0) * (u1 - u0)

    def batch_cycles(self, size: int) -> int:
        """Predicted cycles for a cold batch of ``size``."""
        cycles = self._memo.get(size)
        if cycles is None:
            cycles = max(1, int(round(self.predict_us(size) * self.config.clock_mhz)))
            self._memo[size] = cycles
        return cycles

    def warm_batch_cycles(self, size: int, prev_size, prev_cost=None) -> int:
        """Warm equals cold: live batches have no modelled drain overlap."""
        return self.batch_cycles(size)

    def drain_saved_cycles(self, size: int, prev_size, prev_cost=None) -> int:
        """No drain model, so nothing is ever saved."""
        return 0


class RuntimeEngine:
    """Time-source-agnostic serving engine around a :class:`ServingCore`.

    Every method takes an explicit ``now_us``; the caller owns the clock
    — :func:`replay_virtual` advances a virtual one over an event heap
    (bit-matching the simulator), :class:`ServingRuntime` passes
    monotonic wall time.  The engine owns what both need: the idle-time
    integral for the batching/queueing attribution, the per-request
    arrival snapshots, sink reporting, and report assembly.
    """

    def __init__(
        self,
        server: ServerConfig,
        tenants: list[TenantSpec] | None = None,
        sink: CompletionSink | None = None,
        tracer=None,
    ) -> None:
        specs = (
            list(tenants)
            if tenants is not None
            else [TenantSpec(name=server.network_name, trace=None)]
        )
        if not specs:
            raise ConfigError("the tenants list needs at least one tenant")
        self.server = server
        self.sink = sink if sink is not None else RecordingSink()
        self.core = ServingCore(server, specs, tracer=tracer)
        self.offered = 0
        self.makespan_us = 0.0
        self._idle_accum = 0.0
        self._last_time = 0.0
        self._snapshots: dict[int, float] = {}

    def tick(self, now_us: float) -> None:
        """Advance the any-array-idle integral to ``now_us``."""
        if now_us <= self._last_time:
            return
        if self.core.pool.has_idle():
            self._idle_accum += now_us - self._last_time
        self._last_time = now_us

    def offer(
        self,
        now_us: float,
        *,
        arrival_us: float | None = None,
        deadline_us: float | None = None,
        tenant: int = 0,
    ) -> tuple[int, bool]:
        """One request arrives: admission, snapshot, sink registration.

        Returns ``(global index, admitted)``.  ``deadline_us`` is an
        absolute instant; when omitted the tenant's relative SLA (if
        any) is stamped on, exactly like the simulator's pre-pass.
        """
        self.tick(now_us)
        state = self.core.tenants[tenant]
        arrival = now_us if arrival_us is None else arrival_us
        if deadline_us is None:
            deadline = (
                arrival + state.deadline_us
                if state.deadline_us is not None
                else math.inf
            )
        else:
            deadline = deadline_us
        index = self.sink.on_arrival(arrival, deadline_us=deadline, tenant=state.name)
        self.offered += 1
        state.global_indices.append(index)
        request = QueuedRequest(index=index, arrival_us=arrival, deadline_us=deadline)
        if self.core.offer(state, request, now_us):
            self._snapshots[index] = self._idle_accum
            return index, True
        self.sink.on_shed(index)
        return index, False

    def shed_arrival(
        self,
        now_us: float,
        *,
        deadline_us: float | None = None,
        tenant: int = 0,
    ) -> int:
        """Count an arrival shed before admission (runtime backpressure)."""
        self.tick(now_us)
        state = self.core.tenants[tenant]
        deadline = deadline_us if deadline_us is not None else math.inf
        index = self.sink.on_arrival(now_us, deadline_us=deadline, tenant=state.name)
        self.offered += 1
        state.global_indices.append(index)
        self.sink.on_shed(index)
        tracer = self.core.tracer
        if tracer.enabled:
            # Backpressure sheds never reach the core's admission hook,
            # so the arrive + shed pair is emitted here to keep every
            # offered request's lifecycle in the event stream.
            tracer.request_arrived(now_us, index, state.name, deadline)
            tracer.request_shed(now_us, index, state.name)
        return index

    def dispatch_ready(
        self, now_us: float, pricer=None, force: bool = False
    ) -> list[PlacedBatch]:
        """Form and place every batch that can start at ``now_us``.

        Mirrors the simulator's dispatch loop: while an array is idle
        and a tenant is ready, place a batch.  ``force`` flushes
        non-ready remainders (shutdown drain).  Each placed batch is
        stamped with the idle integral for the sink's wait attribution.
        """
        self.tick(now_us)
        placed_batches: list[PlacedBatch] = []
        pool = self.core.pool
        while pool.has_idle():
            placed = self.core.form_and_place(now_us, pricer=pricer, force=force)
            if placed is None:
                break
            placed.idle_accum_us = self._idle_accum
            placed_batches.append(placed)
        return placed_batches

    def complete(
        self, now_us: float, placed: PlacedBatch, done_us: float | None = None
    ) -> None:
        """A placed batch finished: free the array, report to the sink.

        ``done_us`` is the measured completion (wall clock); the replay
        driver passes the predicted ``placed.done_us`` to stay
        bit-identical with the simulator.
        """
        self.tick(now_us)
        done = placed.done_us if done_us is None else done_us
        self.core.release(placed.array, now_us)
        if placed.corrupt is not None:
            # Undetected corruption: the batch completes and its members
            # are served wrong answers — counted, traced (same order as
            # the simulator's done handler for stream identity).
            self.core.served_corrupt(placed, done)
        tracer = self.core.tracer
        if tracer.enabled:
            tracer.batch_completed(done, placed)
        members = placed.members
        snapshots = self._snapshots
        self.sink.on_batch(
            tenant=placed.tenant.name,
            array=placed.array,
            size=placed.size,
            dispatch_us=placed.dispatch_us,
            done_us=done,
            cycles=placed.cycles,
            warm=placed.warm,
            drain_saved_us=placed.drain_saved_us,
            member_indices=[m.index for m in members],
            member_arrivals=[m.arrival_us for m in members],
            member_deadlines=[m.deadline_us for m in members],
            member_idle_snaps=[snapshots.pop(m.index) for m in members],
            idle_accum_us=placed.idle_accum_us,
        )
        if done > self.makespan_us:
            self.makespan_us = done

    def fail_batch(self, now_us: float, placed: PlacedBatch):
        """A placed batch crashed: contain it, report terminal failures.

        Delegates the failure-domain work (quarantine, retry split,
        fairness credit) to :meth:`ServingCore.fail_batch`, reports
        budget-exhausted members to the sink, and drops their idle
        snapshots — retried members keep theirs, so the batch that
        eventually completes them attributes their wait from the
        original arrival.  Returns ``(retries, failed, quarantined)``
        for the driver to schedule.
        """
        self.tick(now_us)
        retries, failed, quarantined = self.core.fail_batch(placed, now_us)
        members = placed.members
        snapshots = self._snapshots
        # Record the crashed batch itself (the simulator records batches
        # at placement, so decision identity requires the crashed ones in
        # the table too).  ``done_us`` is the completion it was predicted
        # to reach; retried members keep their snapshots so the batch
        # that eventually completes them attributes the full wait.
        self.sink.on_batch(
            tenant=placed.tenant.name,
            array=placed.array,
            size=placed.size,
            dispatch_us=placed.dispatch_us,
            done_us=placed.done_us,
            cycles=placed.cycles,
            warm=placed.warm,
            drain_saved_us=placed.drain_saved_us,
            member_indices=[m.index for m in members],
            member_arrivals=[m.arrival_us for m in members],
            member_deadlines=[m.deadline_us for m in members],
            member_idle_snaps=[snapshots[m.index] for m in members],
            idle_accum_us=placed.idle_accum_us,
            crashed=True,
        )
        for request in failed:
            snapshots.pop(request.index, None)
            self.sink.on_failed(request.index)
        if now_us > self.makespan_us:
            self.makespan_us = now_us
        return retries, failed, quarantined

    def requeue(self, now_us: float, tenant: int, requests) -> None:
        """Return retried requests to the front of their tenant queue."""
        self.tick(now_us)
        self.core.requeue(self.core.tenants[tenant], list(requests), now_us)

    def recover(self, now_us: float, array: int) -> None:
        """Readmit a quarantined array (the caller health-probed it)."""
        self.tick(now_us)
        self.core.recover(array, now_us)

    def pending_timeouts(self, now_us: float) -> list[float]:
        """Coalescing deadlines of queues that are waiting, not ready."""
        return self.core.pending_timeouts(now_us)

    def next_timeout(self, now_us: float) -> float | None:
        """Earliest coalescing deadline, or ``None``."""
        deadlines = self.core.pending_timeouts(now_us)
        return min(deadlines) if deadlines else None

    def queue_depth(self) -> int:
        """Requests queued across all tenants."""
        return self.core.queue_depth()

    def build_report(
        self,
        trace_name: str = "live",
        offered_rps: float = 0.0,
        wall_seconds: float = 0.0,
    ) -> ServingReport:
        """Assemble the same :class:`ServingReport` the simulator emits."""
        server = self.server
        pool = self.core.pool
        sink = self.sink
        makespan = self.makespan_us
        return ServingReport(
            network=server.network_name,
            trace_name=trace_name,
            offered_rps=offered_rps,
            policy=server.policy_json(),
            arrays=server.arrays,
            clock_mhz=server.cost.config.clock_mhz,
            accounting=getattr(server.cost, "accounting", "overlapped"),
            pipeline=server.pipeline,
            requests=sink.requests,
            batches=sink.batches,
            array_stats=[
                {
                    "array": stat.array,
                    "busy_us": stat.busy_us,
                    "batches": stat.batches,
                    "requests": stat.requests,
                    "warm_batches": stat.warm_batches,
                    "utilization": stat.utilization(makespan),
                }
                for stat in pool.stats
            ],
            makespan_us=makespan,
            wall_seconds=wall_seconds,
            streaming=sink.stats if isinstance(sink, StreamingSink) else None,
            faults=(
                self.core.fault_stats.to_dict()
                if self.core.injector is not None or self.core.fault_stats.any
                else None
            ),
        )


def replay_virtual(
    server: ServerConfig,
    trace: ArrivalTrace | None = None,
    tenants: list[TenantSpec] | None = None,
    sink: CompletionSink | None = None,
    tracer=None,
) -> ServingReport:
    """Replay a trace through the runtime engine in virtual time.

    The deterministic half of the sim-vs-live crosscheck: the same
    event order as :meth:`ServingSimulator._run_recorded` (completions,
    arrivals, timeouts on one heap; predicted completions), but driven
    through :class:`RuntimeEngine` — the exact code path the live
    runtime uses.  With the same :class:`ServerConfig` and trace, the
    resulting report's policy decisions (sheds, batch formation,
    placement, per-request timings) are identical to the simulator's.
    """
    if tenants is None:
        if trace is None:
            raise ConfigError("a trace (or a tenants list) is required")
        tenants = [TenantSpec(name=server.network_name, trace=trace)]
    elif trace is not None:
        raise ConfigError("pass either a trace or a tenants list, not both")
    wall_start = time.perf_counter()
    engine = RuntimeEngine(server, tenants, sink=sink, tracer=tracer)

    events: list[tuple[float, int, int, tuple]] = []
    seq = 0
    for state in engine.core.tenants:
        if state.trace is None:
            raise ConfigError(f"tenant {state.name!r} has no trace to replay")
        deadlines = state.trace.deadlines_us
        for local, arrival in enumerate(state.trace.times_us):
            # Same deadline resolution as the simulator's pre-pass: a
            # finite recorded deadline wins over the relative SLA.
            if deadlines is not None and math.isfinite(deadlines[local]):
                deadline = float(deadlines[local])
            elif state.deadline_us is not None:
                deadline = float(arrival) + state.deadline_us
            else:
                deadline = math.inf
            events.append(
                (float(arrival), EVENT_ARRIVE, seq, (state.order, deadline))
            )
            seq += 1
    heapq.heapify(events)
    scheduled_timeouts: set[float] = set()
    running: dict[int, PlacedBatch] = {}
    next_batch = 0

    while events:
        now, kind, _, payload = heapq.heappop(events)
        engine.tick(now)
        if kind == EVENT_ARRIVE:
            order, deadline = payload
            engine.offer(now, arrival_us=now, deadline_us=deadline, tenant=order)
        elif kind == EVENT_DONE:
            placed = running.pop(payload)
            engine.complete(now, placed, done_us=now)
        elif kind == EVENT_CRASH:
            # Same fault handling as the simulator's recorded loop, so a
            # faulted replay makes identical retry/quarantine decisions.
            placed = running.pop(payload)
            retries, failed, quarantined = engine.fail_batch(now, placed)
            for at_us, group in group_requeues(retries):
                heapq.heappush(
                    events,
                    (at_us, EVENT_REQUEUE, seq, (placed.tenant.order, group)),
                )
                seq += 1
            if quarantined:
                heapq.heappush(
                    events,
                    (
                        now + engine.core.retry.recovery_us,
                        EVENT_RECOVER,
                        seq,
                        placed.array,
                    ),
                )
                seq += 1
        elif kind == EVENT_REQUEUE:
            order, requests = payload
            engine.requeue(now, order, requests)
        elif kind == EVENT_RECOVER:
            engine.recover(now, payload)
        elif engine.core.tracer.enabled:
            # EVENT_TIMEOUT carries no state (readiness re-evaluates
            # below); it only surfaces as an observability event.
            engine.core.tracer.coalescing_timeout(now)

        for placed in engine.dispatch_ready(now):
            running[next_batch] = placed
            if placed.fault:
                detect = placed.dispatch_us + engine.core.fault_plan.detect_delay_us(
                    placed.duration_us
                )
                heapq.heappush(events, (detect, EVENT_CRASH, seq, next_batch))
            elif engine.core.detects_corruption(placed):
                # Same detection instant as the simulator: the checksum
                # layer catches the corruption when the batch finishes.
                heapq.heappush(
                    events, (placed.done_us, EVENT_CRASH, seq, next_batch)
                )
            else:
                heapq.heappush(
                    events, (placed.done_us, EVENT_DONE, seq, next_batch)
                )
            seq += 1
            next_batch += 1

        if engine.core.pool.has_idle():
            for deadline in engine.pending_timeouts(now):
                if deadline not in scheduled_timeouts:
                    scheduled_timeouts.add(deadline)
                    heapq.heappush(
                        events, (max(deadline, now), EVENT_TIMEOUT, seq, ())
                    )
                    seq += 1

    only = engine.core.tenants[0]
    multi = len(engine.core.tenants) > 1
    return engine.build_report(
        trace_name=(
            only.trace.name
            if not multi
            else "+".join(f"{t.name}:{t.trace.name}" for t in engine.core.tenants)
        ),
        offered_rps=(
            only.trace.offered_rps
            if not multi
            else sum(t.trace.offered_rps for t in engine.core.tenants)
        ),
        wall_seconds=time.perf_counter() - wall_start,
    )


class ServingRuntime:
    """Asyncio wall-clock serving front-end over the runtime engine.

    One event-loop thread runs admission/batching/dispatch (cheap, pure
    Python); formed batches execute on a thread pool with one slot per
    simulated array.  Completions land back in the loop via
    ``call_soon_threadsafe``, trigger the next dispatch round, and — for
    requests submitted through :meth:`submit` — resolve their futures.

    ``max_pending`` bounds queued + in-flight requests: :meth:`submit`
    applies backpressure (awaits capacity), the open-loop
    :meth:`run_load` counts overflow arrivals as shed.  Request images
    live in a power-of-two ring indexed by request id, so a FIFO batch
    is a zero-copy contiguous view whenever its members are consecutive
    slots.
    """

    def __init__(
        self,
        server: ServerConfig,
        executor=None,
        sink: CompletionSink | None = None,
        clock: Clock | None = None,
        max_pending: int = 2048,
        tenants: list[TenantSpec] | None = None,
        tracer=None,
        metrics=None,
        metrics_interval_s: float = 1.0,
    ) -> None:
        if executor is None:
            from repro.capsnet.config import mnist_capsnet_config, tiny_capsnet_config

            network = (
                tiny_capsnet_config()
                if server.network_name == "tiny"
                else mnist_capsnet_config()
            )
            executor = InlineEngineExecutor(network)
        if max_pending < 1:
            raise ConfigError("max_pending must be positive")
        if metrics_interval_s <= 0.0:
            raise ConfigError("metrics_interval_s must be positive")
        self.server = server
        self.executor = executor
        # The metrics adapter is itself a tracer, so one combined hook
        # target feeds both the recorder and the live counters from the
        # core's single instrumentation point.
        self.metrics = metrics
        self.engine = RuntimeEngine(
            server, tenants, sink=sink, tracer=combine_tracers(tracer, metrics)
        )
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._metrics_interval_s = metrics_interval_s
        self._metrics_timer: asyncio.TimerHandle | None = None
        self._metrics_epoch_us: float | None = None
        self.max_pending = max_pending
        size = executor.image_size
        capacity = 1
        floor = 2 * (max_pending + server.arrays * server.batching.max_batch)
        while capacity < floor:
            capacity *= 2
        self._ring = np.zeros((capacity, size, size), dtype=np.float64)
        self._mask = capacity - 1
        self._threads = ThreadPoolExecutor(
            max_workers=server.arrays, thread_name_prefix="serve-array"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._futures: dict[int, asyncio.Future] = {}
        self._pending = 0
        self._inflight_batches = 0
        #: Requests from crashed batches waiting out their retry backoff
        #: (not queued, not in flight) — the drain conditions count them
        #: so shutdown never strands a pending retry.
        self._pending_retries = 0
        #: Fatal, runtime-wide failure — set only when recovery is
        #: impossible (an array's worker could not be respawned).
        #: Per-batch crashes never poison the runtime; they fail or
        #: retry only their own batch's requests.
        self._failure: BaseException | None = None
        self._timer: asyncio.TimerHandle | None = None
        self._timer_deadline = math.inf
        self._drain_event: asyncio.Event | None = None
        self._closed = False

    # ---- lifecycle ---------------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            if self.metrics is not None:
                # Periodic snapshot task: sampled gauges (queue depth,
                # in-flight batches, per-array utilization) refresh every
                # metrics_interval_s for scrapers; counters and latency
                # windows update on events regardless.
                self._metrics_epoch_us = self.clock.now_us()
                self._metrics_timer = loop.call_later(
                    self._metrics_interval_s, self._sample_metrics
                )
        elif self._loop is not loop:
            raise ConfigError("ServingRuntime is bound to one event loop")
        return loop

    def _sample_metrics(self) -> None:
        self._metrics_timer = None
        if self._closed or self.metrics is None:
            return
        self._sample_metrics_now()
        self._metrics_timer = self._loop.call_later(
            self._metrics_interval_s, self._sample_metrics
        )

    async def stop(self) -> None:
        """Flush queued remainders, wait for in-flight work, shut down.

        The shutdown drain dispatches non-ready remainders with
        ``force=True`` — a coalescing batch waiting out its timer is
        flushed immediately instead of being dropped.
        """
        if self._closed:
            return
        self._ensure_loop()
        while self._failure is None and (
            self.engine.queue_depth()
            or self._inflight_batches
            or self._pending_retries
        ):
            now = self.clock.now_us()
            for placed in self.engine.dispatch_ready(now, force=True):
                self._launch(placed)
            if (
                self.engine.queue_depth() == 0
                and self._inflight_batches == 0
                and self._pending_retries == 0
            ):
                break
            await self._wait_for_completion()
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._metrics_timer is not None:
            self._metrics_timer.cancel()
            self._metrics_timer = None
        if self.metrics is not None and self._metrics_epoch_us is not None:
            # One last gauge refresh so a post-run scrape sees final state.
            self._sample_metrics_now()
        self._threads.shutdown(wait=True)
        self.executor.close()

    def _sample_metrics_now(self) -> None:
        engine = self.engine
        self.metrics.sample(
            queue_depth=engine.queue_depth(),
            inflight=self._inflight_batches,
            busy_us={stat.array: stat.busy_us for stat in engine.core.pool.stats},
            elapsed_us=self.clock.now_us() - self._metrics_epoch_us,
        )

    async def _wait_for_completion(self, timeout: float = 0.05) -> None:
        event = asyncio.Event()
        self._drain_event = event
        try:
            await asyncio.wait_for(event.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            pass
        finally:
            self._drain_event = None

    async def drain(self) -> None:
        """Wait until every queued/in-flight request has completed.

        Coalescing remainders are allowed to wait out their timers (use
        :meth:`stop` to force-flush).  Raises the stored failure if an
        executor crashed.
        """
        self._ensure_loop()
        while True:
            if self._failure is not None:
                raise self._failure
            self._kick(self.clock.now_us())
            if (
                self.engine.queue_depth() == 0
                and self._inflight_batches == 0
                and self._pending_retries == 0
            ):
                return
            await self._wait_for_completion()

    # ---- request entry points ----------------------------------------------

    async def submit(
        self,
        image: np.ndarray,
        deadline_us: float | None = None,
        tenant: int = 0,
    ) -> int:
        """Serve one request; returns its prediction.

        Applies backpressure at ``max_pending`` (awaits capacity), and
        raises :class:`RequestShedError` if the admission policy sheds
        the request, or :class:`~repro.serve.workers.WorkerCrashError`
        if its batch's executor died.
        """
        loop = self._ensure_loop()
        while self._pending >= self.max_pending:
            if self._failure is not None:
                raise self._failure
            await self._wait_for_completion(timeout=0.01)
        if self._failure is not None:
            raise self._failure
        if self._closed:
            raise ConfigError("runtime is stopped")
        now = self.clock.now_us()
        index, admitted = self.engine.offer(
            now, deadline_us=deadline_us, tenant=tenant
        )
        if not admitted:
            raise RequestShedError(f"request {index} shed by admission")
        self._pending += 1
        self._ring[index & self._mask] = image
        future: asyncio.Future = loop.create_future()
        self._futures[index] = future
        self._kick(now)
        return await future

    async def run_load(
        self,
        trace: ArrivalTrace,
        images: np.ndarray | None = None,
        tenant: int = 0,
    ) -> float:
        """Offer a trace's arrivals open-loop at real pace.

        Arrival ``i`` is submitted once ``trace.times_us[i]`` elapses
        (relative to the call instant); its admission timestamp is the
        actual wall instant, so the recorded report reflects genuinely
        offered load.  Overflow past ``max_pending`` counts as shed
        rather than pausing the trace (open-loop semantics).  Returns
        the trace origin in clock microseconds.
        """
        self._ensure_loop()
        times = trace.times_us
        deadlines = trace.deadlines_us
        total = len(times)
        t0 = self.clock.now_us()
        at = 0
        while at < total:
            if self._failure is not None:
                raise self._failure
            now = self.clock.now_us()
            rel = now - t0
            submitted = False
            while at < total and times[at] <= rel:
                deadline = None
                if deadlines is not None and math.isfinite(deadlines[at]):
                    deadline = t0 + float(deadlines[at])
                if self._pending >= self.max_pending:
                    self.engine.shed_arrival(now, deadline_us=deadline, tenant=tenant)
                else:
                    index, admitted = self.engine.offer(
                        now, deadline_us=deadline, tenant=tenant
                    )
                    if admitted:
                        self._pending += 1
                        if images is not None:
                            self._ring[index & self._mask] = images[at]
                at += 1
                submitted = True
            if submitted:
                self._kick(now)
            if at < total:
                gap_us = times[at] - (self.clock.now_us() - t0)
                if gap_us > 1500.0:
                    await asyncio.sleep((gap_us - 500.0) / 1e6)
                else:
                    # Sub-millisecond gaps: yield, don't oversleep.
                    await asyncio.sleep(0)
        return t0

    async def serve_socket(self, host: str = "127.0.0.1", port: int = 0):
        """JSONL socket server: one request object per line.

        ``{"id": ..., "image": [[...]]}`` replies
        ``{"id": ..., "prediction": N}``; a shed request replies
        ``{"id": ..., "error": "shed"}``.  Returns the
        :class:`asyncio.Server` (the caller owns its lifetime; the bound
        port is ``server.sockets[0].getsockname()[1]``).
        """
        self._ensure_loop()

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    try:
                        payload = json.loads(line)
                        image = np.asarray(payload["image"], dtype=np.float64)
                        prediction = await self.submit(
                            image, deadline_us=payload.get("deadline_us")
                        )
                        reply = {"id": payload.get("id"), "prediction": prediction}
                    except RequestShedError:
                        reply = {"id": payload.get("id"), "error": "shed"}
                    except (KeyError, ValueError, TypeError) as error:
                        reply = {"error": f"bad request: {error}"}
                    writer.write((json.dumps(reply) + "\n").encode())
                    await writer.drain()
            finally:
                writer.close()

        return await asyncio.start_server(handle, host, port)

    # ---- dispatch machinery ------------------------------------------------

    def _kick(self, now_us: float) -> None:
        """Dispatch every ready batch and re-arm the coalescing timer."""
        if self._failure is not None or self._closed:
            return
        for placed in self.engine.dispatch_ready(now_us):
            self._launch(placed)
        self._arm_timer(now_us)

    def _launch(self, placed: PlacedBatch) -> None:
        self._inflight_batches += 1
        images = self._gather(placed)
        self._threads.submit(self._run_batch, placed, images)

    def _gather(self, placed: PlacedBatch) -> np.ndarray:
        """The batch's images: a zero-copy ring view when contiguous."""
        indices = [member.index for member in placed.members]
        mask = self._mask
        base = indices[0] & mask
        size = len(indices)
        if base + size <= self._ring.shape[0] and all(
            (index & mask) == base + offset
            for offset, index in enumerate(indices)
        ):
            return self._ring[base : base + size]
        return self._ring[[index & mask for index in indices]]

    def _run_batch(self, placed: PlacedBatch, images: np.ndarray) -> None:
        # Worker thread: the only things touched are the executor and the
        # loop hand-off; all serving state mutates on the event loop.
        try:
            if placed.fault:
                # The injector doomed this batch at placement (the same
                # decision the simulator makes); a hang plan sleeps out
                # the watchdog window before the crash surfaces.
                hang_us = self.engine.core.fault_plan.hang_us
                if hang_us > 0.0:
                    time.sleep(hang_us / 1e6)
                raise InjectedCrashError(
                    f"injected crash on array {placed.array}"
                )
            if placed.corrupt is not None:
                predictions = self._execute_corrupt(placed, images)
            else:
                predictions = self.executor.execute(placed.array, images)
        except BaseException as error:  # noqa: BLE001 - must never hang the loop
            self._loop.call_soon_threadsafe(self._batch_failed, placed, error)
            return
        done_us = self.clock.now_us()
        self._loop.call_soon_threadsafe(
            self._batch_done, placed, predictions, done_us
        )

    def _execute_corrupt(
        self, placed: PlacedBatch, images: np.ndarray
    ) -> np.ndarray:
        """Run a corruption-doomed batch through the executor.

        Executors exposing ``execute_corrupt`` (the compiled stream
        path) run the *real* corrupted numerics — the seeded bit flips of
        ``placed.corrupt`` — and raise
        :class:`~repro.serve.integrity.DetectedCorruptionError` when the
        armed ABFT checksums catch them, which by construction happens
        exactly when the core's bookkeeping predicts detection.
        Model-level executors without the hook fall back to the
        bookkeeping verdict directly so the drivers still agree.
        """
        from repro.serve.integrity import DetectedCorruptionError

        core = self.engine.core
        execute_corrupt = getattr(self.executor, "execute_corrupt", None)
        if execute_corrupt is not None:
            return execute_corrupt(
                placed.array, images, placed.corrupt, core.integrity.checks
            )
        if core.detects_corruption(placed):
            raise DetectedCorruptionError(
                f"corruption detected on array {placed.array}"
                f" (target {placed.corrupt.target})"
            )
        return self.executor.execute(placed.array, images)

    def _batch_done(
        self, placed: PlacedBatch, predictions: np.ndarray, done_us: float
    ) -> None:
        self._inflight_batches -= 1
        now = self.clock.now_us()
        self.engine.complete(now, placed, done_us=done_us)
        for member, prediction in zip(placed.members, predictions):
            self._pending -= 1
            future = self._futures.pop(member.index, None)
            if future is not None and not future.done():
                future.set_result(int(prediction))
        if not self._closed:
            self._kick(now)
        if self._drain_event is not None:
            self._drain_event.set()

    def _batch_failed(self, placed: PlacedBatch, error: BaseException) -> None:
        """One batch crashed: fail or retry *its* requests, nothing else.

        The failure domain is the crashed batch — waiters on other
        arrays, queued requests, and future submissions are untouched.
        The crashed batch's array quarantines (recovery timer respawns
        and health-probes its worker before readmission), members with
        attempt budget left requeue after their backoff, and only
        budget-exhausted members see the error.
        """
        self._inflight_batches -= 1
        if isinstance(error, WorkerCrashError):
            failure = error
        else:
            failure = WorkerCrashError(
                f"batch execution failed on array {placed.array}: {error!r}"
            )
            failure.__cause__ = error
        now = self.clock.now_us()
        retries, failed, quarantined = self.engine.fail_batch(now, placed)
        for request in failed:
            self._pending -= 1
            future = self._futures.pop(request.index, None)
            if future is not None and not future.done():
                future.set_exception(failure)
        # Retried members stay pending (they still hold ring slots and
        # futures); each group rejoins its queue when its backoff ends.
        for at_us, group in group_requeues(retries):
            self._pending_retries += len(group)
            self._loop.call_later(
                max(at_us - now, 0.0) / 1e6,
                self._requeue,
                placed.tenant.order,
                group,
            )
        if quarantined:
            self._loop.call_later(
                self.engine.core.retry.recovery_us / 1e6,
                self._recover,
                placed.array,
            )
        if not self._closed:
            self._kick(now)
        if self._drain_event is not None:
            self._drain_event.set()

    def _requeue(self, tenant_order: int, requests) -> None:
        """Backoff expired: return a crashed batch's retries to the queue."""
        self._pending_retries -= len(requests)
        if self._failure is not None:
            return
        now = self.clock.now_us()
        self.engine.requeue(now, tenant_order, requests)
        if not self._closed:
            self._kick(now)
        if self._drain_event is not None:
            self._drain_event.set()

    def _recover(self, array: int) -> None:
        """Recovery timer: respawn/health-probe the worker, readmit."""
        if self._closed or self._failure is not None:
            return
        respawn = getattr(self.executor, "respawn", None)
        if respawn is not None:
            try:
                respawn(array)
            except BaseException as error:  # noqa: BLE001 - surface as fatal
                failure = WorkerCrashError(
                    f"array {array} failed to respawn: {error!r}"
                )
                failure.__cause__ = error
                self._fail_all(failure)
                return
        now = self.clock.now_us()
        self.engine.recover(now, array)
        if not self._closed:
            self._kick(now)
        if self._drain_event is not None:
            self._drain_event.set()

    def _fail_all(self, failure: BaseException) -> None:
        """Unrecoverable: poison the runtime and fail every waiter."""
        self._failure = failure
        for future in self._futures.values():
            if not future.done():
                future.set_exception(failure)
        self._futures.clear()
        if self._drain_event is not None:
            self._drain_event.set()

    def _arm_timer(self, now_us: float) -> None:
        """Schedule a wake-up at the earliest coalescing deadline."""
        if not self.engine.core.pool.has_idle():
            return
        earliest = self.engine.next_timeout(now_us)
        if earliest is None:
            return
        if self._timer is not None:
            if self._timer_deadline <= earliest:
                return
            self._timer.cancel()
        self._timer_deadline = earliest
        delay_s = max(earliest - now_us, 0.0) / 1e6
        self._timer = self._loop.call_later(delay_s, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self._timer_deadline = math.inf
        now = self.clock.now_us()
        tracer = self.engine.core.tracer
        if tracer.enabled:
            tracer.coalescing_timeout(now)
        self._kick(now)

    # ---- reporting ---------------------------------------------------------

    def report(
        self,
        trace_name: str = "live",
        offered_rps: float = 0.0,
        wall_seconds: float = 0.0,
    ) -> ServingReport:
        """The run so far as a simulator-compatible report."""
        return self.engine.build_report(
            trace_name=trace_name,
            offered_rps=offered_rps,
            wall_seconds=wall_seconds,
        )
