"""Sim-vs-live crosschecks over :class:`~repro.serve.stats.ServingReport`.

Both the discrete-event simulator and the live runtime emit the same
report type, so checking that the simulator predicts the live system
(and that the runtime engine reproduces the simulator exactly in virtual
time) reduces to comparing two reports:

* :func:`decision_diffs` / :func:`decisions_identical` — exact policy
  equivalence for deterministic replays: same sheds, same per-request
  timings, same batch formation and placement.  This is the CI gate that
  keeps the runtime's scheduling path from drifting off the simulator's.
* :func:`compare_reports` — statistical agreement for wall-clock runs:
  live latency percentiles within a relative tolerance of the simulated
  ones.
* :func:`compare_reports_median` — the variance-aware form over
  repeated trials: medians with a spread-widened tolerance, robust
  enough to gate regimes where host noise dominates single runs (paced
  load on a shared runner, not just saturated drain).
"""

from __future__ import annotations

import math

from repro.serve.stats import ServingReport

#: Cap on reported differences; past this the lists are truncated.
MAX_DIFFS = 20


def _request_rows(report: ServingReport) -> list[tuple]:
    """Per-request decisions, order-normalized.

    Global request indices can differ between drivers (the simulator
    numbers arrivals trace-by-trace in a pre-pass, the replay driver in
    event order), so rows are keyed by observable timings instead.
    """
    return sorted(
        (
            record.arrival_us,
            record.tenant,
            record.shed,
            record.dispatch_us,
            record.done_us,
        )
        for record in report.requests
    )


def _batch_rows(report: ServingReport) -> list[tuple]:
    """Per-batch decisions, order-normalized (completion order differs)."""
    return sorted(
        (
            batch.dispatch_us,
            batch.array,
            batch.size,
            batch.warm,
            batch.cycles,
            batch.tenant,
        )
        for batch in report.batches
    )


def decision_diffs(sim: ServingReport, live: ServingReport) -> list[str]:
    """Every way two recorded reports' policy decisions disagree.

    Empty means the two runs admitted, shed, batched, placed, and timed
    every request identically.  Both reports must carry full per-request
    tables (recorded mode, not streaming).
    """
    diffs: list[str] = []
    for label, a, b in (
        ("offered", sim.offered, live.offered),
        ("shed", sim.shed_count, live.shed_count),
        ("batches", sim.batch_count, live.batch_count),
    ):
        if a != b:
            diffs.append(f"{label}: sim={a} live={b}")
    sim_requests = _request_rows(sim)
    live_requests = _request_rows(live)
    for row_a, row_b in zip(sim_requests, live_requests):
        if row_a != row_b:
            diffs.append(f"request: sim={row_a} live={row_b}")
            if len(diffs) >= MAX_DIFFS:
                return diffs
    sim_batches = _batch_rows(sim)
    live_batches = _batch_rows(live)
    for row_a, row_b in zip(sim_batches, live_batches):
        if row_a != row_b:
            diffs.append(f"batch: sim={row_a} live={row_b}")
            if len(diffs) >= MAX_DIFFS:
                return diffs
    return diffs


def decisions_identical(sim: ServingReport, live: ServingReport) -> bool:
    """Whether two recorded reports made exactly the same decisions."""
    return not decision_diffs(sim, live)


def compare_reports(
    sim: ServingReport, live: ServingReport, rel_tol: float = 0.2
) -> dict:
    """Statistical sim-vs-live agreement: counts plus latency ratios.

    Returns a JSON-friendly dict; ``within_tol`` is True when the live
    p50 and p99 total latencies both sit within ``rel_tol`` (relative)
    of the simulated ones.  Ratios are live/sim (``inf`` if the
    simulated value is zero but the live one is not).
    """
    sim_latency = sim.latency_summary()["total"]
    live_latency = live.latency_summary()["total"]
    result: dict = {
        "rel_tol": rel_tol,
        "counts": {
            "sim": {"offered": sim.offered, "completed": sim.completed,
                    "shed": sim.shed_count, "batches": sim.batch_count},
            "live": {"offered": live.offered, "completed": live.completed,
                     "shed": live.shed_count, "batches": live.batch_count},
        },
    }
    within = True
    for metric in ("p50_us", "p99_us"):
        sim_value = sim_latency[metric]
        live_value = live_latency[metric]
        if sim_value > 0.0:
            ratio = live_value / sim_value
        else:
            ratio = math.inf if live_value > 0.0 else 1.0
        ok = abs(live_value - sim_value) <= rel_tol * max(sim_value, 1e-9)
        within = within and ok
        result[metric] = {
            "sim": sim_value,
            "live": live_value,
            "ratio": ratio,
            "within_tol": ok,
        }
    result["within_tol"] = within
    return result


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def compare_reports_median(
    pairs: list[tuple[ServingReport, ServingReport]],
    rel_tol: float = 0.2,
    spread_factor: float = 2.0,
) -> dict:
    """Variance-aware sim-vs-live agreement over repeated trials.

    ``pairs`` is one ``(sim, live)`` report pair per trial of the same
    workload.  For each latency metric the gate compares the *median*
    live value against the *median* simulated value, with a tolerance
    widened by the observed trial-to-trial spread::

        tol = max(rel_tol, spread_factor * spread)

    where ``spread`` is the median absolute deviation of the per-trial
    live/sim ratios, relative to the median ratio.  A regime where host
    noise scatters single runs (an idle-system percentile on a shared
    1-CPU runner) widens its own tolerance instead of flaking; a quiet
    regime keeps the strict ``rel_tol``.  Returns a JSON-friendly dict
    shaped like :func:`compare_reports` plus per-metric ``spread`` /
    ``tolerance`` and the raw per-trial ratios.
    """
    if not pairs:
        raise ValueError("compare_reports_median needs at least one trial")
    per_trial = [compare_reports(sim, live, rel_tol=rel_tol) for sim, live in pairs]
    result: dict = {
        "rel_tol": rel_tol,
        "spread_factor": spread_factor,
        "trials": len(pairs),
    }
    within = True
    for metric in ("p50_us", "p99_us"):
        sims = [trial[metric]["sim"] for trial in per_trial]
        lives = [trial[metric]["live"] for trial in per_trial]
        ratios = [trial[metric]["ratio"] for trial in per_trial]
        sim_med = _median(sims)
        live_med = _median(lives)
        finite = [r for r in ratios if math.isfinite(r)]
        if finite:
            ratio_med = _median(finite)
            deviations = [abs(r - ratio_med) for r in finite]
            spread = (
                _median(deviations) / ratio_med if ratio_med > 0.0 else math.inf
            )
        else:
            ratio_med = math.inf
            spread = math.inf
        # An unmeasurable spread (degenerate sims) falls back to the
        # strict tolerance rather than an infinitely forgiving one.
        widened = spread_factor * spread if math.isfinite(spread) else 0.0
        tolerance = max(rel_tol, widened)
        ok = abs(live_med - sim_med) <= tolerance * max(sim_med, 1e-9)
        within = within and ok
        result[metric] = {
            "sim": sim_med,
            "live": live_med,
            "ratio": ratio_med,
            "ratios": ratios,
            "spread": spread,
            "tolerance": tolerance,
            "within_tol": ok,
        }
    result["within_tol"] = within
    return result
