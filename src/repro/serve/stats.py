"""Serving statistics: latency decomposition, percentiles, report JSON.

Every simulated request's end-to-end latency splits into three causes:

* **batching** — time spent waiting while an array sat idle (the policy
  deliberately coalescing; bounded by the batcher's ``max_wait_us``);
* **queueing** — time spent waiting while every array was busy (capacity
  pressure; unbounded under overload);
* **compute** — time the request's batch occupied an array.

The simulator attributes waiting to batching vs queueing by integrating
the "any array idle" indicator over each request's waiting interval, so
the two components always sum exactly to the total wait.

With stream pipelining a fourth, informational component appears:
**drain saved** — the time a request's batch did *not* pay because it ran
back to back on a warm array (the compute component is already the warm
figure, so queueing + batching + compute still sums to the latency).

Admission control adds **shed** requests: rejected at arrival, recorded
with their timestamps but never dispatched.  Latency statistics cover
served requests only; the report carries the shed count/rate and, for
requests with deadlines, the SLA miss rate among the served.
Multi-tenant runs additionally break requests, sheds, and latency down
per tenant.

Long traces do not need the per-request tables at all: the simulator's
``record_requests=False`` mode folds every served request into
:class:`StreamingStats` — fixed-resolution :class:`LatencyHistogram`
accumulators per latency component (O(1) memory in the trace length)
plus exact streaming counters — and the :class:`ServingReport` reads
from either representation through the same properties.  Counts, rates,
means and the makespan are exact; percentiles are reported at histogram
resolution (within half a bin of the nearest-rank sample percentile).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: Percentiles reported for every latency component.
PERCENTILES = (50, 95, 99)

#: Default width of one streaming-latency histogram bin, in microseconds.
#: Percentiles from the streaming path land within half a bin of the
#: nearest-rank sample percentile, so 50 us resolves millisecond-scale
#: serving latencies to well under a percent.
DEFAULT_LATENCY_BIN_US = 50.0


def percentile_summary(values_us: np.ndarray) -> dict[str, float]:
    """Mean and p50/p95/p99 of a latency sample, in microseconds."""
    values = np.asarray(values_us, dtype=np.float64)
    if values.size == 0:
        return {"mean_us": 0.0, **{f"p{p}_us": 0.0 for p in PERCENTILES}}
    summary = {"mean_us": float(values.mean())}
    for p in PERCENTILES:
        summary[f"p{p}_us"] = float(np.percentile(values, p))
    return summary


class LatencyHistogram:
    """Fixed- or log-resolution streaming latency accumulator.

    ``kind="linear"`` (default) buckets values into ``bin_us``-wide bins
    (bin ``i`` covers ``[i * bin_us, (i + 1) * bin_us)``); the count
    array grows by doubling, so memory is bounded by the largest observed
    latency, not the number of samples.  The mean and the count are
    exact; a percentile is the midpoint of the bin holding the
    nearest-rank sample, so it sits within half a bin of the exact order
    statistic.

    ``kind="log"`` buckets HDR-histogram style: values below ``bin_us``
    share bucket 0, and each factor-of-two octave above ``bin_us`` splits
    into ``subbins`` equal-width buckets, so every bucket's width is at
    most ``1/subbins`` of its lower bound.  Memory becomes *logarithmic*
    in the largest latency (a handful of KB out to hours) instead of
    linear — a deeply overloaded run cannot blow the count array up —
    and percentile error is bounded *relatively* (within one bucket, i.e.
    ``1/subbins`` of the value) rather than absolutely.

    Adds are buffered and flushed through :func:`numpy.bincount` in
    chunks, keeping the per-sample cost of the simulator's fast path at
    a list append.
    """

    _FLUSH_AT = 4096

    def __init__(
        self,
        bin_us: float = DEFAULT_LATENCY_BIN_US,
        kind: str = "linear",
        subbins: int = 32,
    ) -> None:
        if not (math.isfinite(bin_us) and bin_us > 0):
            from repro.errors import ConfigError

            raise ConfigError("histogram bin width must be finite and positive")
        if kind not in ("linear", "log"):
            from repro.errors import ConfigError

            raise ConfigError(f"unknown histogram kind {kind!r} (linear or log)")
        if subbins < 1:
            from repro.errors import ConfigError

            raise ConfigError("subbins must be positive")
        self.bin_us = float(bin_us)
        self.kind = kind
        self.subbins = int(subbins)
        self._count = 0
        self._total_us = 0.0
        self._max_us = 0.0
        # int32 counts: per-bin counts are bounded by the sample count,
        # and the narrower dtype halves the cost of growing into the
        # million-bin tails an overloaded run produces.
        self._counts = np.zeros(64, dtype=np.int32)
        self._buffer: list[float] = []

    @property
    def count(self) -> int:
        """Samples folded in so far (buffered adds included)."""
        return self._count + len(self._buffer)

    @property
    def total_us(self) -> float:
        """Exact sum of every added sample (buffer flushed first)."""
        self._flush()
        return self._total_us

    @property
    def max_us(self) -> float:
        """Largest added sample (buffer flushed first)."""
        self._flush()
        return self._max_us

    def add(self, value_us: float) -> None:
        """Fold one latency sample in (negative epsilon clamps to zero)."""
        self._buffer.append(value_us)
        if len(self._buffer) >= self._FLUSH_AT:
            self._flush()

    def add_array(self, values_us, copy: bool = True) -> None:
        """Fold a whole array of samples in one vectorized pass.

        ``copy=False`` skips the defensive copy for callers handing over
        a temporary they will not reuse — the ingest clamps negative
        epsilon to zero *in place*.
        """
        self._flush()
        if copy:
            values = np.array(values_us, dtype=np.float64)
        else:
            values = np.asarray(values_us, dtype=np.float64)
        if values.size:
            self._ingest(values)

    def add_weighted(self, value_us: float, count: int) -> None:
        """Fold ``count`` identical samples in (one bin update)."""
        if count <= 0:
            return
        value = max(value_us, 0.0)
        index = self._index_of(value)
        if index >= self._counts.size:
            self._grow(index)
        self._counts[index] += count
        self._count += count
        self._total_us += value * count
        if value > self._max_us:
            self._max_us = value

    def _grow(self, top: int) -> None:
        # Factor-four growth keeps total copy work well under 2x the
        # final size even for histograms that end millions of bins wide.
        grown = max(top + 1, 4 * self._counts.size)
        counts = np.zeros(grown, dtype=np.int32)
        counts[: self._counts.size] = self._counts
        self._counts = counts

    def _flush(self) -> None:
        if not self._buffer:
            return
        values = np.asarray(self._buffer, dtype=np.float64)
        self._buffer.clear()
        self._ingest(values)

    def _index_of(self, value: float) -> int:
        """Bucket index of one (non-negative) value."""
        if self.kind == "linear":
            return int(value / self.bin_us)
        scaled = value / self.bin_us
        if scaled < 1.0:
            return 0
        # frexp: scaled = m * 2**e with m in [0.5, 1), so the octave
        # above bin_us is e - 1 and 2m - 1 in [0, 1) locates the value
        # inside it; truncation lands in [0, subbins).
        m, e = math.frexp(scaled)
        return 1 + (e - 1) * self.subbins + int((2.0 * m - 1.0) * self.subbins)

    def _bucket_midpoint_us(self, index: int) -> float:
        """Midpoint of a bucket (the percentile representative)."""
        if self.kind == "linear":
            return (index + 0.5) * self.bin_us
        if index == 0:
            return 0.5 * self.bin_us
        octave, pos = divmod(index - 1, self.subbins)
        base = self.bin_us * float(2**octave)
        lo = base * (1.0 + pos / self.subbins)
        hi = base * (1.0 + (pos + 1) / self.subbins)
        return 0.5 * (lo + hi)

    def _ingest(self, values: np.ndarray) -> None:
        np.maximum(values, 0.0, out=values)
        self._count += values.size
        self._total_us += float(values.sum())
        self._max_us = max(self._max_us, float(values.max()))
        if self.kind == "linear":
            bins = (values / self.bin_us).astype(np.int64)
        else:
            scaled = values / self.bin_us
            m, e = np.frexp(scaled)
            raw = (
                1
                + (e.astype(np.int64) - 1) * self.subbins
                + ((2.0 * m - 1.0) * self.subbins).astype(np.int64)
            )
            bins = np.where(scaled < 1.0, 0, raw)
        top = int(bins.max())
        if top >= self._counts.size:
            self._grow(top)
        # Chunk values cluster (latencies drift slowly), so a bincount
        # over the chunk's own bin range is usually cheapest; fall back
        # to a scatter-add when the chunk is sparse across a wide range,
        # so the work never scales with the histogram's total bin count
        # (overload tails reach millions of bins).
        bottom = int(bins.min())
        width = top - bottom + 1
        if width <= 32 * bins.size:
            self._counts[bottom : top + 1] += np.bincount(
                bins - bottom, minlength=width
            ).astype(np.int32, copy=False)
        else:
            np.add.at(self._counts, bins, 1)

    @property
    def mean_us(self) -> float:
        """Exact mean of every added sample."""
        self._flush()
        if self.count == 0:
            return 0.0
        return self._total_us / self.count

    def percentile(self, p: float) -> float:
        """Linear-interpolated ``p``-percentile at histogram resolution.

        Mirrors :func:`numpy.percentile`'s default (linear) method on the
        binned data: the fractional rank interpolates between the two
        bracketing order statistics, each located to its bin and
        represented by the bin midpoint.  Because the estimate is a
        convex combination of two midpoints that each sit within half a
        bucket of their exact order statistic, the result is guaranteed
        within the wider bracketing bucket's half-width of the exact
        :func:`numpy.percentile` value (half a bin for ``linear``; a
        ``1/subbins`` relative error for ``log``).
        """
        self._flush()
        if self.count == 0:
            return 0.0
        cumulative = np.cumsum(self._counts)
        position = p / 100.0 * (self.count - 1)
        lower = int(position)
        fraction = position - lower
        # Order statistic i (0-based) is the (i + 1)-th smallest sample.
        low_bin = int(np.searchsorted(cumulative, lower + 1))
        if self.kind == "linear":
            value = (low_bin + 0.5) * self.bin_us
            if fraction > 0.0:
                high_bin = int(np.searchsorted(cumulative, lower + 2))
                value += fraction * ((high_bin - low_bin) * self.bin_us)
            return value
        value = self._bucket_midpoint_us(low_bin)
        if fraction > 0.0:
            high_bin = int(np.searchsorted(cumulative, lower + 2))
            value += fraction * (self._bucket_midpoint_us(high_bin) - value)
        return value

    def summary(self) -> dict[str, float]:
        """:func:`percentile_summary`-compatible mean/p50/p95/p99 dict."""
        summary = {"mean_us": self.mean_us}
        for p in PERCENTILES:
            summary[f"p{p}_us"] = self.percentile(p)
        return summary

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same bucketing) into this one."""
        if (
            other.bin_us != self.bin_us
            or other.kind != self.kind
            or other.subbins != self.subbins
        ):
            from repro.errors import ConfigError

            raise ConfigError("cannot merge histograms with different bucketing")
        other._flush()
        self._flush()
        if other._counts.size > self._counts.size:
            self._counts = np.concatenate(
                [
                    self._counts,
                    np.zeros(other._counts.size - self._counts.size, dtype=np.int32),
                ]
            )
        self._counts[: other._counts.size] += other._counts
        self._count += other._count
        self._total_us += other._total_us
        self._max_us = max(self._max_us, other._max_us)


class StreamingStats:
    """O(1)-memory aggregate of a serving run (``record_requests=False``).

    Everything the report needs without the per-request/per-batch tables:
    exact offered/served/shed counts, per-component latency histograms,
    batch-size histogram, warm/drain accounting, and per-tenant
    breakdowns.  ``components`` always carries ``total`` / ``queueing`` /
    ``batching`` / ``compute`` histograms (plus ``drain_saved`` when the
    run is pipelined).
    """

    def __init__(
        self,
        bin_us: float = DEFAULT_LATENCY_BIN_US,
        pipeline: bool = False,
        kind: str = "linear",
        subbins: int = 32,
    ) -> None:
        self.bin_us = float(bin_us)
        self.kind = kind
        self.subbins = int(subbins)
        names = ["total", "queueing", "batching", "compute"]
        if pipeline:
            names.append("drain_saved")
        self.components = {
            name: LatencyHistogram(bin_us, kind=kind, subbins=subbins)
            for name in names
        }
        self.offered = 0
        self.shed = 0
        #: Requests terminally failed by the fault layer (attempt budget
        #: exhausted after crashes) — neither shed nor served.
        self.failed = 0
        self.batches = 0
        self.warm_batches = 0
        self.drain_saved_us = 0.0
        self.deadline_misses = 0
        self.served_with_deadline = 0
        self.batch_sizes: dict[int, int] = {}

    @property
    def completed(self) -> int:
        """Requests admitted and served."""
        return self.offered - self.shed - self.failed

    def add_batch(self, size: int, warm: bool, drain_saved_us: float) -> None:
        """Account one dispatched batch."""
        self.batches += 1
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1
        if warm:
            self.warm_batches += 1
            self.drain_saved_us += drain_saved_us

    def add_request(
        self,
        latency_us: float,
        queueing_us: float,
        batching_us: float,
        compute_us: float,
        drain_saved_us: float = 0.0,
    ) -> None:
        """Fold one served request's latency decomposition in."""
        components = self.components
        components["total"].add(latency_us)
        components["queueing"].add(queueing_us)
        components["batching"].add(batching_us)
        components["compute"].add(compute_us)
        drain = components.get("drain_saved")
        if drain is not None:
            drain.add(drain_saved_us)

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """Mean/p50/p95/p99 per component, from the histograms."""
        return {name: hist.summary() for name, hist in self.components.items()}


def tenant_summary_from_streaming(
    name: str,
    weight: float,
    stats: StreamingStats,
    total_served: int,
) -> dict:
    """One tenant's report entry from its streaming accumulator."""
    return {
        "tenant": name,
        "weight": weight,
        "offered": stats.offered,
        "served": stats.completed,
        "shed": stats.shed,
        "served_share": (stats.completed / total_served if total_served else 0.0),
        "deadline_misses": stats.deadline_misses,
        "latency_us": stats.components["total"].summary(),
    }


@dataclass
class RequestRecord:
    """Timestamps and latency decomposition of one served request."""

    index: int
    arrival_us: float
    dispatch_us: float = 0.0
    done_us: float = 0.0
    batch_index: int = -1
    #: Wait attributable to deliberate coalescing (an array was idle).
    batching_us: float = 0.0
    #: Wait attributable to capacity (every array was busy).
    queueing_us: float = 0.0
    #: Time saved because the batch ran warm (informational; not part of
    #: the queueing/batching/compute sum — compute is already warm).
    drain_saved_us: float = 0.0
    #: Which tenant the request belongs to ("" in single-tenant runs).
    tenant: str = ""
    #: Absolute completion deadline (SLA); ``inf`` = none.
    deadline_us: float = math.inf
    #: Rejected by the admission policy at arrival (never dispatched).
    shed: bool = False
    #: Terminally failed by the fault layer (crashes exhausted the
    #: per-request attempt budget) — admitted but never completed.
    failed: bool = False

    @property
    def compute_us(self) -> float:
        """Time the request's batch occupied an array."""
        return self.done_us - self.dispatch_us

    @property
    def latency_us(self) -> float:
        """End-to-end latency from arrival to completion."""
        return self.done_us - self.arrival_us

    @property
    def missed_deadline(self) -> bool:
        """Served past a finite deadline (shed/failed requests excluded)."""
        return (
            not self.shed
            and not self.failed
            and math.isfinite(self.deadline_us)
            and self.done_us > self.deadline_us
        )


@dataclass
class BatchRecord:
    """One dispatched batch: membership, placement, and exact cycles."""

    index: int
    size: int
    array: int
    dispatch_us: float
    done_us: float
    cycles: int
    request_indices: list[int] = field(default_factory=list)
    #: Whether the batch ran back to back on a warm (pipelined) array.
    warm: bool = False
    #: Time the warm hand-off saved over a cold dispatch.
    drain_saved_us: float = 0.0
    #: Which tenant's queue formed the batch ("" in single-tenant runs).
    tenant: str = ""
    #: True when the batch crashed instead of completing; ``done_us`` is
    #: then the completion it was *predicted* to reach (its compute span
    #: actually closed at crash detection).
    crashed: bool = False


@dataclass
class ServingReport:
    """Everything a serving simulation produced, JSON-serializable.

    Two interchangeable representations back the summary properties: the
    full per-request/per-batch tables (``requests`` / ``batches``), or —
    in the simulator's ``record_requests=False`` mode — a
    :class:`StreamingStats` aggregate with the tables left empty.
    """

    network: str
    trace_name: str
    offered_rps: float
    policy: dict
    arrays: int
    clock_mhz: float
    accounting: str
    requests: list[RequestRecord]
    batches: list[BatchRecord]
    array_stats: list[dict]
    makespan_us: float
    wall_seconds: float
    predictions: np.ndarray | None = None
    crosscheck: dict | None = None
    pipeline: bool = False
    #: Per-tenant breakdowns (None in single-tenant runs).
    tenants: list[dict] | None = None
    #: Streaming aggregate of a ``record_requests=False`` run (the
    #: per-request/per-batch tables are empty when this is set).
    streaming: StreamingStats | None = None
    #: Fault-layer accounting (crashes, retries, failures, quarantines,
    #: recovery times) — None when the run saw no fault machinery.
    faults: dict | None = None

    @property
    def served(self) -> list[RequestRecord]:
        """Requests that were admitted and completed (empty in streaming mode)."""
        return [
            record
            for record in self.requests
            if not record.shed and not record.failed
        ]

    @property
    def completed(self) -> int:
        """Number of requests served (shed/failed requests excluded)."""
        if self.streaming is not None:
            return self.streaming.completed
        return len(self.requests) - self.shed_count - self.failed_count

    @property
    def offered(self) -> int:
        """Number of requests that arrived (served + shed + failed)."""
        if self.streaming is not None:
            return self.streaming.offered
        return len(self.requests)

    @property
    def shed_count(self) -> int:
        """Requests rejected by the admission policy."""
        if self.streaming is not None:
            return self.streaming.shed
        return sum(1 for record in self.requests if record.shed)

    @property
    def failed_count(self) -> int:
        """Requests terminally failed by the fault layer."""
        if self.streaming is not None:
            return self.streaming.failed
        return sum(1 for record in self.requests if record.failed)

    @property
    def goodput(self) -> float:
        """Completed fraction of offered requests (1.0 = nothing lost)."""
        if self.offered == 0:
            return 1.0
        return self.completed / self.offered

    @property
    def shed_rate(self) -> float:
        """Fraction of arrivals shed."""
        if self.offered == 0:
            return 0.0
        return self.shed_count / self.offered

    @property
    def deadline_miss_count(self) -> int:
        """Served requests that finished past a finite deadline."""
        if self.streaming is not None:
            return self.streaming.deadline_misses
        return sum(1 for record in self.requests if record.missed_deadline)

    @property
    def deadline_miss_rate(self) -> float:
        """SLA miss fraction among served requests with deadlines."""
        if self.streaming is not None:
            with_deadline = self.streaming.served_with_deadline
        else:
            with_deadline = sum(
                1
                for record in self.requests
                if not record.shed and math.isfinite(record.deadline_us)
            )
        if with_deadline == 0:
            return 0.0
        return self.deadline_miss_count / with_deadline

    @property
    def throughput_rps(self) -> float:
        """Achieved throughput in simulated requests per second."""
        if self.makespan_us <= 0:
            return 0.0
        return self.completed / self.makespan_us * 1e6

    @property
    def wall_rps(self) -> float:
        """Host-side simulation throughput (requests per wall second)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def batch_count(self) -> int:
        """Number of dispatched batches."""
        if self.streaming is not None:
            return self.streaming.batches
        return len(self.batches)

    @property
    def mean_batch_size(self) -> float:
        """Average formed batch size."""
        if self.batch_count == 0:
            return 0.0
        return self.completed / self.batch_count

    @property
    def warm_batches(self) -> int:
        """Batches that ran back to back on a warm (pipelined) array."""
        if self.streaming is not None:
            return self.streaming.warm_batches
        return sum(1 for batch in self.batches if batch.warm)

    @property
    def drain_saved_total_us(self) -> float:
        """Total time warm hand-offs saved across all warm batches."""
        if self.streaming is not None:
            return self.streaming.drain_saved_us
        return sum(batch.drain_saved_us for batch in self.batches)

    def array_utilization(self) -> dict[int, float]:
        """Busy fraction per array (busy-us / makespan-us).

        The same figure a :class:`~repro.obs.tracer.RecordingTracer`
        derives independently from its busy-span events
        (``array_utilization(makespan_us)``) — the obs tests assert the
        two agree exactly, which pins the tracer's span accounting to
        the pool's charge accounting.
        """
        return {
            int(stat["array"]): float(stat["utilization"])
            for stat in self.array_stats
        }

    def batch_size_histogram(self) -> dict[int, int]:
        """How many batches formed at each size."""
        if self.streaming is not None:
            return dict(sorted(self.streaming.batch_sizes.items()))
        histogram: dict[int, int] = {}
        for batch in self.batches:
            histogram[batch.size] = histogram.get(batch.size, 0) + 1
        return dict(sorted(histogram.items()))

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """Mean/p50/p95/p99 per component over served requests."""
        if self.streaming is not None:
            return self.streaming.latency_summary()
        served = self.served
        components = {
            "total": np.array([r.latency_us for r in served]),
            "queueing": np.array([r.queueing_us for r in served]),
            "batching": np.array([r.batching_us for r in served]),
            "compute": np.array([r.compute_us for r in served]),
        }
        if self.pipeline:
            components["drain_saved"] = np.array([r.drain_saved_us for r in served])
        return {name: percentile_summary(values) for name, values in components.items()}

    def to_dict(self) -> dict:
        """JSON-serializable summary (per-request records elided)."""
        return {
            "network": self.network,
            "trace": self.trace_name,
            "offered_rps": self.offered_rps,
            "policy": self.policy,
            "arrays": self.arrays,
            "clock_mhz": self.clock_mhz,
            "accounting": self.accounting,
            "pipeline": self.pipeline,
            "record_requests": self.streaming is None,
            "latency_bin_us": (
                self.streaming.bin_us if self.streaming is not None else None
            ),
            "requests": self.completed,
            "offered_requests": self.offered,
            "shed": self.shed_count,
            "shed_rate": self.shed_rate,
            "failed": self.failed_count,
            "goodput": self.goodput,
            "faults": self.faults,
            "deadline_miss_rate": self.deadline_miss_rate,
            "tenants": self.tenants,
            "batches": self.batch_count,
            "warm_batches": self.warm_batches,
            "drain_saved_us": self.drain_saved_total_us,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": {
                str(size): count for size, count in self.batch_size_histogram().items()
            },
            "makespan_us": self.makespan_us,
            "throughput_rps": self.throughput_rps,
            "wall_seconds": self.wall_seconds,
            "wall_rps": self.wall_rps,
            "array_utilization": [stat["utilization"] for stat in self.array_stats],
            "latency_us": self.latency_summary(),
            "crosscheck": self.crosscheck,
        }

    def format_table(self) -> str:
        """Human-readable report for the CLI."""
        lines = [
            f"Serving simulation — {self.network} network, {self.trace_name} trace,"
            f" {self.policy['describe']}, {self.arrays} array(s)",
            f"  offered {self.offered_rps:,.1f} req/s ->"
            f" served {self.completed} requests in {self.makespan_us / 1e3:,.2f} ms"
            f" = {self.throughput_rps:,.1f} req/s"
            f" ({self.accounting} accounting at {self.clock_mhz:.0f} MHz)",
            f"  batches: {self.batch_count} (mean size {self.mean_batch_size:.2f},"
            f" histogram {self.batch_size_histogram()})",
            *(
                [
                    f"  admission: shed {self.shed_count}/{self.offered}"
                    f" ({self.shed_rate:.1%}); deadline misses among served:"
                    f" {self.deadline_miss_count} ({self.deadline_miss_rate:.1%})"
                ]
                if self.shed_count or self.deadline_miss_count
                else []
            ),
            *(
                [
                    f"  tenant {entry['tenant']}: {entry['served']} served"
                    f" / {entry['shed']} shed, p99"
                    f" {entry['latency_us']['p99_us']:,.0f}us"
                    for entry in self.tenants
                ]
                if self.tenants
                else []
            ),
            *(
                [
                    f"  faults: {self.faults['crashes']} crashes"
                    f" ({self.faults['injected']} injected),"
                    f" {self.faults['retries']} retries,"
                    f" {self.faults['failed']} failed,"
                    f" {self.faults['quarantines']} quarantines"
                    f" (max recovery"
                    f" {self.faults['recovery_max_us']:,.0f}us);"
                    f" goodput {self.goodput:.2%}"
                ]
                if self.faults
                else []
            ),
            *(
                [
                    f"  integrity: {self.faults['corruptions']} corruptions"
                    f" ({self.faults['detected']} detected,"
                    f" {self.faults['corrupted_served']} requests served"
                    " corrupted);"
                    f" canaries {self.faults['canaries']}"
                    f" ({self.faults['canary_detected']} detections)"
                ]
                if self.faults
                and (
                    self.faults.get("corruptions")
                    or self.faults.get("canaries")
                )
                else []
            ),
            *(
                [
                    f"  pipeline: {self.warm_batches}/{self.batch_count} warm batches,"
                    f" {self.drain_saved_total_us:,.0f}us drain saved"
                ]
                if self.pipeline
                else []
            ),
            "  array utilization: "
            + ", ".join(
                f"#{stat['array']} {stat['utilization']:.1%}" for stat in self.array_stats
            ),
            f"  simulator wall clock: {self.wall_seconds:.3f} s"
            f" = {self.wall_rps:,.1f} req/s host",
            f"  {'latency':10s} {'mean':>10s} {'p50':>10s} {'p95':>10s} {'p99':>10s}",
        ]
        for name, summary in self.latency_summary().items():
            lines.append(
                f"  {name:10s} {summary['mean_us']:9.0f}us {summary['p50_us']:9.0f}us"
                f" {summary['p95_us']:9.0f}us {summary['p99_us']:9.0f}us"
            )
        return "\n".join(lines)
