"""Serving statistics: latency decomposition, percentiles, report JSON.

Every simulated request's end-to-end latency splits into three causes:

* **batching** — time spent waiting while an array sat idle (the policy
  deliberately coalescing; bounded by the batcher's ``max_wait_us``);
* **queueing** — time spent waiting while every array was busy (capacity
  pressure; unbounded under overload);
* **compute** — time the request's batch occupied an array.

The simulator attributes waiting to batching vs queueing by integrating
the "any array idle" indicator over each request's waiting interval, so
the two components always sum exactly to the total wait.

With stream pipelining a fourth, informational component appears:
**drain saved** — the time a request's batch did *not* pay because it ran
back to back on a warm array (the compute component is already the warm
figure, so queueing + batching + compute still sums to the latency).

Admission control adds **shed** requests: rejected at arrival, recorded
with their timestamps but never dispatched.  Latency statistics cover
served requests only; the report carries the shed count/rate and, for
requests with deadlines, the SLA miss rate among the served.
Multi-tenant runs additionally break requests, sheds, and latency down
per tenant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: Percentiles reported for every latency component.
PERCENTILES = (50, 95, 99)


def percentile_summary(values_us: np.ndarray) -> dict[str, float]:
    """Mean and p50/p95/p99 of a latency sample, in microseconds."""
    values = np.asarray(values_us, dtype=np.float64)
    if values.size == 0:
        return {"mean_us": 0.0, **{f"p{p}_us": 0.0 for p in PERCENTILES}}
    summary = {"mean_us": float(values.mean())}
    for p in PERCENTILES:
        summary[f"p{p}_us"] = float(np.percentile(values, p))
    return summary


@dataclass
class RequestRecord:
    """Timestamps and latency decomposition of one served request."""

    index: int
    arrival_us: float
    dispatch_us: float = 0.0
    done_us: float = 0.0
    batch_index: int = -1
    #: Wait attributable to deliberate coalescing (an array was idle).
    batching_us: float = 0.0
    #: Wait attributable to capacity (every array was busy).
    queueing_us: float = 0.0
    #: Time saved because the batch ran warm (informational; not part of
    #: the queueing/batching/compute sum — compute is already warm).
    drain_saved_us: float = 0.0
    #: Which tenant the request belongs to ("" in single-tenant runs).
    tenant: str = ""
    #: Absolute completion deadline (SLA); ``inf`` = none.
    deadline_us: float = math.inf
    #: Rejected by the admission policy at arrival (never dispatched).
    shed: bool = False

    @property
    def compute_us(self) -> float:
        """Time the request's batch occupied an array."""
        return self.done_us - self.dispatch_us

    @property
    def latency_us(self) -> float:
        """End-to-end latency from arrival to completion."""
        return self.done_us - self.arrival_us

    @property
    def missed_deadline(self) -> bool:
        """Served past a finite deadline (shed requests excluded)."""
        return (
            not self.shed
            and math.isfinite(self.deadline_us)
            and self.done_us > self.deadline_us
        )


@dataclass
class BatchRecord:
    """One dispatched batch: membership, placement, and exact cycles."""

    index: int
    size: int
    array: int
    dispatch_us: float
    done_us: float
    cycles: int
    request_indices: list[int] = field(default_factory=list)
    #: Whether the batch ran back to back on a warm (pipelined) array.
    warm: bool = False
    #: Time the warm hand-off saved over a cold dispatch.
    drain_saved_us: float = 0.0
    #: Which tenant's queue formed the batch ("" in single-tenant runs).
    tenant: str = ""


@dataclass
class ServingReport:
    """Everything a serving simulation produced, JSON-serializable."""

    network: str
    trace_name: str
    offered_rps: float
    policy: dict
    arrays: int
    clock_mhz: float
    accounting: str
    requests: list[RequestRecord]
    batches: list[BatchRecord]
    array_stats: list[dict]
    makespan_us: float
    wall_seconds: float
    predictions: np.ndarray | None = None
    crosscheck: dict | None = None
    pipeline: bool = False
    #: Per-tenant breakdowns (None in single-tenant runs).
    tenants: list[dict] | None = None

    @property
    def served(self) -> list[RequestRecord]:
        """Requests that were admitted and completed."""
        return [record for record in self.requests if not record.shed]

    @property
    def completed(self) -> int:
        """Number of requests served (shed requests excluded)."""
        return len(self.requests) - self.shed_count

    @property
    def offered(self) -> int:
        """Number of requests that arrived (served + shed)."""
        return len(self.requests)

    @property
    def shed_count(self) -> int:
        """Requests rejected by the admission policy."""
        return sum(1 for record in self.requests if record.shed)

    @property
    def shed_rate(self) -> float:
        """Fraction of arrivals shed."""
        if not self.requests:
            return 0.0
        return self.shed_count / len(self.requests)

    @property
    def deadline_miss_count(self) -> int:
        """Served requests that finished past a finite deadline."""
        return sum(1 for record in self.requests if record.missed_deadline)

    @property
    def deadline_miss_rate(self) -> float:
        """SLA miss fraction among served requests with deadlines."""
        with_deadline = sum(
            1
            for record in self.requests
            if not record.shed and math.isfinite(record.deadline_us)
        )
        if with_deadline == 0:
            return 0.0
        return self.deadline_miss_count / with_deadline

    @property
    def throughput_rps(self) -> float:
        """Achieved throughput in simulated requests per second."""
        if self.makespan_us <= 0:
            return 0.0
        return self.completed / self.makespan_us * 1e6

    @property
    def wall_rps(self) -> float:
        """Host-side simulation throughput (requests per wall second)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def mean_batch_size(self) -> float:
        """Average formed batch size."""
        if not self.batches:
            return 0.0
        return self.completed / len(self.batches)

    @property
    def warm_batches(self) -> int:
        """Batches that ran back to back on a warm (pipelined) array."""
        return sum(1 for batch in self.batches if batch.warm)

    @property
    def drain_saved_total_us(self) -> float:
        """Total time warm hand-offs saved across all batches."""
        return sum(batch.drain_saved_us for batch in self.batches)

    def batch_size_histogram(self) -> dict[int, int]:
        """How many batches formed at each size."""
        histogram: dict[int, int] = {}
        for batch in self.batches:
            histogram[batch.size] = histogram.get(batch.size, 0) + 1
        return dict(sorted(histogram.items()))

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """Mean/p50/p95/p99 per component over served requests."""
        served = self.served
        components = {
            "total": np.array([r.latency_us for r in served]),
            "queueing": np.array([r.queueing_us for r in served]),
            "batching": np.array([r.batching_us for r in served]),
            "compute": np.array([r.compute_us for r in served]),
        }
        if self.pipeline:
            components["drain_saved"] = np.array([r.drain_saved_us for r in served])
        return {name: percentile_summary(values) for name, values in components.items()}

    def to_dict(self) -> dict:
        """JSON-serializable summary (per-request records elided)."""
        return {
            "network": self.network,
            "trace": self.trace_name,
            "offered_rps": self.offered_rps,
            "policy": self.policy,
            "arrays": self.arrays,
            "clock_mhz": self.clock_mhz,
            "accounting": self.accounting,
            "pipeline": self.pipeline,
            "requests": self.completed,
            "offered_requests": self.offered,
            "shed": self.shed_count,
            "shed_rate": self.shed_rate,
            "deadline_miss_rate": self.deadline_miss_rate,
            "tenants": self.tenants,
            "batches": len(self.batches),
            "warm_batches": self.warm_batches,
            "drain_saved_us": self.drain_saved_total_us,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": {
                str(size): count for size, count in self.batch_size_histogram().items()
            },
            "makespan_us": self.makespan_us,
            "throughput_rps": self.throughput_rps,
            "wall_seconds": self.wall_seconds,
            "wall_rps": self.wall_rps,
            "array_utilization": [stat["utilization"] for stat in self.array_stats],
            "latency_us": self.latency_summary(),
            "crosscheck": self.crosscheck,
        }

    def format_table(self) -> str:
        """Human-readable report for the CLI."""
        lines = [
            f"Serving simulation — {self.network} network, {self.trace_name} trace,"
            f" {self.policy['describe']}, {self.arrays} array(s)",
            f"  offered {self.offered_rps:,.1f} req/s ->"
            f" served {self.completed} requests in {self.makespan_us / 1e3:,.2f} ms"
            f" = {self.throughput_rps:,.1f} req/s"
            f" ({self.accounting} accounting at {self.clock_mhz:.0f} MHz)",
            f"  batches: {len(self.batches)} (mean size {self.mean_batch_size:.2f},"
            f" histogram {self.batch_size_histogram()})",
            *(
                [
                    f"  admission: shed {self.shed_count}/{self.offered}"
                    f" ({self.shed_rate:.1%}); deadline misses among served:"
                    f" {self.deadline_miss_count} ({self.deadline_miss_rate:.1%})"
                ]
                if self.shed_count or self.deadline_miss_count
                else []
            ),
            *(
                [
                    f"  tenant {entry['tenant']}: {entry['served']} served"
                    f" / {entry['shed']} shed, p99"
                    f" {entry['latency_us']['p99_us']:,.0f}us"
                    for entry in self.tenants
                ]
                if self.tenants
                else []
            ),
            *(
                [
                    f"  pipeline: {self.warm_batches}/{len(self.batches)} warm batches,"
                    f" {self.drain_saved_total_us:,.0f}us drain saved"
                ]
                if self.pipeline
                else []
            ),
            "  array utilization: "
            + ", ".join(
                f"#{stat['array']} {stat['utilization']:.1%}" for stat in self.array_stats
            ),
            f"  simulator wall clock: {self.wall_seconds:.3f} s"
            f" = {self.wall_rps:,.1f} req/s host",
            f"  {'latency':10s} {'mean':>10s} {'p50':>10s} {'p95':>10s} {'p99':>10s}",
        ]
        for name, summary in self.latency_summary().items():
            lines.append(
                f"  {name:10s} {summary['mean_us']:9.0f}us {summary['p50_us']:9.0f}us"
                f" {summary['p95_us']:9.0f}us {summary['p99_us']:9.0f}us"
            )
        return "\n".join(lines)
