"""Time-source-agnostic serving core: queues, policies, placement.

:class:`ServingCore` is the policy engine both serving front-ends drive:

* the discrete-event :class:`~repro.serve.simulator.ServingSimulator`
  advances a virtual clock over an event heap and asks the core to form
  and place batches at each event instant;
* the live :mod:`~repro.serve.runtime` asks the same questions at
  wall-clock instants, with real request payloads behind the queues.

The core never reads a clock — every entry point takes an explicit
``now_us`` — and never records results: outcomes flow through a
:class:`~repro.serve.sinks.CompletionSink` owned by the driver.  That
split is what makes "simulator vs runtime" two drivers of one engine
rather than two engines, and it is why a replayed trace produces
*identical policy decisions* in both (the crosscheck the tests and the
runtime benchmark gate on).

The placement step (:meth:`ServingCore.form_and_place`) reproduces the
historical recorded-path arithmetic operation for operation, so the
extraction is a pure refactor of the simulated path: weighted-fair
tenant selection, the dispatch-policy protocol, warm/pipelined cost
probing, and the drain-saved accounting are unchanged.

Dispatch policies that declare ``considers_busy = True`` (the
backlog-aware greedy) may place a batch on a *busy* array: the batch
**stacks** behind the array's in-flight work, starting at the array's
current ``busy_until`` instant.  The core tracks per-array in-flight
counts so an array only returns to the idle set when its last stacked
batch completes.
"""

from __future__ import annotations

import copy

from dataclasses import replace

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.batcher import QueuedRequest, RequestQueue
from repro.serve.dispatcher import ArrayPool, DispatchContext
from repro.serve.faults import FaultInjector, FaultStats, RetryPolicy
from repro.serve.integrity import CanaryStream, IntegrityPolicy
from repro.serve.policies import CostBank, ServerConfig, TenantSpec

# Event kinds shared by the discrete-event drivers (simulator and the
# virtual-time replay), in tie-break order: completions free arrays
# before arrivals at the same instant see the pool; timeouts run last.
# The fault kinds sort after the classic three, so a fault-free run's
# event ordering is bit-identical to the pre-fault engine.
EVENT_DONE, EVENT_ARRIVE, EVENT_TIMEOUT = 0, 1, 2
EVENT_CRASH, EVENT_REQUEUE, EVENT_RECOVER = 3, 4, 5


def group_requeues(
    retries: list[tuple["QueuedRequest", float]],
) -> list[tuple[float, tuple["QueuedRequest", ...]]]:
    """Coalesce ``(request, requeue_at_us)`` pairs into per-instant groups.

    :meth:`ServingCore.fail_batch` returns the pairs in member order;
    members sharing a requeue instant go back together (one heap event
    in the discrete drivers, one timer in the live runtime).  Only
    *consecutive* equal instants merge, so member order is preserved.
    """
    groups: list[tuple[float, tuple[QueuedRequest, ...]]] = []
    group: list[QueuedRequest] = []
    group_at = 0.0
    for request, at_us in retries:
        if group and at_us != group_at:
            groups.append((group_at, tuple(group)))
            group = []
        group_at = at_us
        group.append(request)
    if group:
        groups.append((group_at, tuple(group)))
    return groups


class DurationProbe:
    """Reusable warm-aware duration predictor for dispatch policies.

    One instance per run, re-pointed per batch — the dispatch context's
    ``duration_us`` callable without a per-batch closure allocation.
    When the core tracks in-flight counts (backlog-aware dispatch), a
    busy array in pipelined mode prices the batch warm: a stacked batch
    starts the instant the predecessor finishes, so it never drains.
    """

    __slots__ = ("bank", "pool", "pipeline", "cost", "size", "now_us", "inflight")

    def __init__(
        self,
        bank: CostBank,
        pool: ArrayPool,
        pipeline: bool,
        inflight: list[int] | None = None,
    ) -> None:
        self.bank = bank
        self.pool = pool
        self.pipeline = pipeline
        self.inflight = inflight
        self.cost = None
        self.size = 0
        self.now_us = 0.0

    def rebind(self, cost, size: int, now_us: float) -> None:
        """Point the probe at the batch about to be placed."""
        self.cost = cost
        self.size = size
        self.now_us = now_us

    def __call__(self, array: int) -> float:
        """Predicted occupancy of the bound batch on ``array`` (us)."""
        pool = self.pool
        model = self.bank.resolve(self.cost, pool.config_for(array))
        warm = False
        if self.pipeline:
            if pool.is_warm(array, self.now_us):
                warm = True
            elif self.inflight is not None and self.inflight[array]:
                warm = True
        if warm:
            cycles = model.warm_batch_cycles(
                self.size,
                pool.last_batch_size(array),
                prev_cost=pool.last_cost(array),
            )
        else:
            cycles = model.batch_cycles(self.size)
        return model.config.cycles_to_us(cycles)

    def queue_delay(self, array: int) -> float:
        """How long a batch placed on ``array`` now would wait to start."""
        delay = self.pool._busy_until_us[array] - self.now_us
        return delay if delay > 0.0 else 0.0


class TenantState:
    """Resolved per-tenant serving state (queue, policies, cost)."""

    def __init__(self, spec: TenantSpec, order: int, server: ServerConfig) -> None:
        self.spec = spec
        self.order = order
        self.name = spec.name
        self.trace = spec.trace
        self.weight = spec.weight
        self.cost = spec.cost if spec.cost is not None else server.cost
        self.deadline_us = (
            spec.deadline_us if spec.deadline_us is not None else server.deadline_us
        )
        # Policy instances may be shared — across tenants reusing one
        # spec object, or via the server-level defaults — so deep-copy
        # them before binding: each tenant gets its own compute predictor
        # and mutable state (a shallow copy of ChainedAdmission would
        # still share the chained policy objects).
        self.admission = copy.deepcopy(
            spec.admission if spec.admission is not None else server.admission
        )
        self.batching = copy.deepcopy(
            spec.batching if spec.batching is not None else server.batching
        )
        for policy in (self.admission, self.batching):
            if hasattr(policy, "bind"):
                policy.bind(self.cost)
        if hasattr(self.admission, "bind_batching"):
            self.admission.bind_batching(self.batching)
        self.queue = RequestQueue()
        self.served = 0
        self.global_indices: list[int] = []


class PlacedBatch:
    """One batch the core formed and placed on an array.

    ``dispatch_us`` is when the batch starts *executing* — the placement
    instant for an idle array, the predecessor's completion for a batch
    stacked on a busy one — and ``done_us`` is the predicted completion
    (``dispatch_us`` plus the charged duration).  A live driver replaces
    the prediction with the measured completion when it reports the
    batch to its sink.
    """

    __slots__ = (
        "tenant",
        "members",
        "size",
        "array",
        "dispatch_us",
        "done_us",
        "cycles",
        "duration_us",
        "warm",
        "drain_saved_us",
        "stacked",
        "idle_accum_us",
        "trace_id",
        "fault",
        "corrupt",
        "correlated",
    )

    def __init__(
        self,
        *,
        tenant: TenantState,
        members: list[QueuedRequest],
        size: int,
        array: int,
        dispatch_us: float,
        done_us: float,
        cycles: int,
        duration_us: float,
        warm: bool,
        drain_saved_us: float,
        stacked: bool,
    ) -> None:
        self.tenant = tenant
        self.members = members
        self.size = size
        self.array = array
        self.dispatch_us = dispatch_us
        self.done_us = done_us
        self.cycles = cycles
        self.duration_us = duration_us
        self.warm = warm
        self.drain_saved_us = drain_saved_us
        self.stacked = stacked
        #: Idle-time integral at the placement instant; stamped by
        #: drivers that defer sink reporting to completion time.
        self.idle_accum_us = 0.0
        #: Batch id assigned by a recording tracer (-1 when untraced).
        self.trace_id = -1
        #: True when the fault injector doomed this batch at placement
        #: time; the driver surfaces the crash (event-heap entry in the
        #: simulator, a raised error in the live executor path).
        self.fault = False
        #: :class:`~repro.serve.faults.CorruptionSpec` when the injector
        #: silently corrupted this batch (None otherwise).  Whether the
        #: corruption is caught is the integrity policy's call.
        self.corrupt = None
        #: True when ``fault`` came from a correlated failure-group
        #: window rather than an independent crash.
        self.correlated = False


class ServingCore:
    """The policy engine: tenants, pool, dispatch, cost accounting."""

    def __init__(
        self,
        server: ServerConfig,
        tenant_specs: list[TenantSpec],
        bank: CostBank | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.server = server
        # Purely observational: the tracer sees every lifecycle event at
        # this choke point but is never consulted for a decision, so a
        # traced run makes bit-identical policy decisions to an untraced
        # one (the decision-identity invariant the obs tests gate on).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pipeline = server.pipeline
        self.pool = ArrayPool(server.arrays, configs=server.array_configs)
        # Fresh dispatch state per core (e.g. the round-robin pointer),
        # so repeated runs of one configuration stay reproducible.
        self.dispatch = copy.deepcopy(server.dispatch)
        self.bank = bank if bank is not None else CostBank()
        self.tenants = [
            TenantState(spec, order, server)
            for order, spec in enumerate(tenant_specs)
        ]
        self.considers_busy = bool(getattr(self.dispatch, "considers_busy", False))
        self.inflight = [0] * self.pool.count
        self.probe = DurationProbe(
            self.bank,
            self.pool,
            self.pipeline,
            inflight=self.inflight if self.considers_busy else None,
        )
        # Fault layer: a fresh injector per core (seeded from the plan)
        # keeps repeated runs of one configuration reproducible, and the
        # ``None`` injector keeps the no-fault hot path to one branch.
        plan = server.fault_plan
        self.fault_plan = plan
        self.injector = (
            FaultInjector(plan) if plan is not None and not plan.empty else None
        )
        self.retry = server.retry if server.retry is not None else RetryPolicy()
        self.fault_stats = FaultStats()
        self._quarantine_started: dict[int, float] = {}
        # Integrity layer: the check policy decides whether a corrupted
        # batch is caught (and so fails like a crash) or served wrong.
        integrity = getattr(server, "integrity", None)
        self.integrity = (
            integrity if integrity is not None else IntegrityPolicy()
        )
        self._canary = (
            CanaryStream(plan, self.integrity, self.pool.count)
            if self.injector is not None and self.integrity.canary
            else None
        )
        # Degraded-mode admission watches the live fault counters; bind
        # after the stats object exists so every tenant's policy chain
        # sees the same accounting the core maintains.
        for tenant in self.tenants:
            if hasattr(tenant.admission, "bind_faults"):
                tenant.admission.bind_faults(self.fault_stats)

    def offer(self, tenant: TenantState, request: QueuedRequest, now_us: float) -> bool:
        """Run admission for one arrival; queue it if admitted."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.request_arrived(
                now_us, request.index, tenant.name, request.deadline_us
            )
        if tenant.admission.admit(request, now_us, tenant.queue, self.pool):
            tenant.queue.append(request)
            if tracer.enabled:
                tracer.request_admitted(now_us, request.index, tenant.name)
            return True
        if tracer.enabled:
            tracer.request_shed(now_us, request.index, tenant.name)
        return False

    def form_and_place(
        self, now_us: float, pricer=None, force: bool = False
    ) -> PlacedBatch | None:
        """Form the next ready batch and place it on an array.

        Returns ``None`` when no tenant is ready.  Among ready tenants
        the weighted-fair winner (smallest ``served/weight``) forms a
        batch, the dispatch policy picks the array, and the batch is
        charged its warm-aware cost.  ``pricer(model, members, warm,
        prev_size)`` overrides the cycle count (the simulator's execute
        mode runs the real engine there).  ``force`` treats any
        non-empty queue as ready — the live runtime's shutdown drain,
        which must flush coalescing remainders without waiting out
        their timeout.
        """
        tenants = self.tenants
        if force:
            ready = [tenant for tenant in tenants if len(tenant.queue)]
        else:
            ready = [
                tenant
                for tenant in tenants
                if tenant.batching.ready(tenant.queue, now_us)
            ]
        if not ready:
            return None
        tenant = min(ready, key=lambda t: (t.served / t.weight, t.order))
        members = tenant.batching.take(tenant.queue, now_us)
        size = len(members)
        pool = self.pool
        probe = self.probe
        probe.rebind(tenant.cost, size, now_us)
        array = self.dispatch.select(
            DispatchContext(
                pool=pool,
                now_us=now_us,
                batch_size=size,
                pipeline=self.pipeline,
                duration_us=probe,
                queue_delay_us=probe.queue_delay if self.considers_busy else None,
            )
        )
        stacked = self.considers_busy and array not in pool._idle
        if stacked:
            # The batch queues behind the array's in-flight work and
            # starts the instant the predecessor completes — in
            # pipelined mode that hand-off is warm by construction.
            start = pool._busy_until_us[array]
            warm = self.pipeline
        else:
            pool.claim(array)
            start = now_us
            warm = self.pipeline and pool.is_warm(array, now_us)
        self.inflight[array] += 1
        prev_size = pool.last_batch_size(array)
        prev_cost = pool.last_cost(array)
        model = self.bank.resolve(tenant.cost, pool.config_for(array))
        if pricer is not None:
            cycles = pricer(model, members, warm, prev_size)
        elif warm:
            cycles = model.warm_batch_cycles(size, prev_size, prev_cost=prev_cost)
        else:
            cycles = model.batch_cycles(size)
        duration = model.config.cycles_to_us(cycles)
        pool.charge(array, size, duration, warm=warm, now_us=start, cost=model)
        drain_saved = (
            model.config.cycles_to_us(
                model.drain_saved_cycles(size, prev_size, prev_cost=prev_cost)
            )
            if warm
            else 0.0
        )
        tenant.served += size
        placed = PlacedBatch(
            tenant=tenant,
            members=members,
            size=size,
            array=array,
            dispatch_us=start,
            done_us=start + duration,
            cycles=cycles,
            duration_us=duration,
            warm=warm,
            drain_saved_us=drain_saved,
            stacked=stacked,
        )
        if self.injector is not None:
            placed.fault, placed.corrupt, placed.correlated = (
                self.injector.decide(array, start, members)
            )
            if placed.corrupt is not None:
                self.fault_stats.corruptions += 1
            if self._canary is not None:
                self._canary.on_placement(
                    array, now_us, self.fault_stats, self.tracer
                )
        if self.tracer.enabled:
            self.tracer.batch_placed(now_us, placed)
        return placed

    def detects_corruption(self, placed: PlacedBatch) -> bool:
        """Whether the armed integrity checks catch this batch's fault.

        Deterministic given the plan and the policy, so every driver —
        the simulator's bookkeeping and the live executor's *actual*
        ABFT verification (exact int64 column sums) — reaches the same
        verdict, which is what the sim-vs-live detection-counter
        identity gate rides on.
        """
        return placed.corrupt is not None and self.integrity.detects(
            placed.corrupt.target
        )

    def release(self, array: int, now_us: float) -> bool:
        """One batch on ``array`` completed; returns whether it idled.

        With stacked batches the array only rejoins the idle set when
        its last in-flight batch finishes.
        """
        count = self.inflight[array]
        if count > 1:
            self.inflight[array] = count - 1
            return False
        self.inflight[array] = 0
        self.pool.release(array, now_us)
        return True

    def fail_batch(
        self, placed: PlacedBatch, now_us: float
    ) -> tuple[list[tuple[QueuedRequest, float]], list[QueuedRequest], bool]:
        """A placed batch crashed at ``now_us``; contain the damage.

        Returns ``(retries, failed, quarantined)``:

        * ``retries`` — ``(request, requeue_at_us)`` pairs, in member
          order, for requests with attempt budget left (the request
          carries the bumped attempt count; the driver schedules
          :meth:`requeue` at each instant);
        * ``failed`` — requests whose budget is spent; the driver
          reports them terminally failed to its sink;
        * ``quarantined`` — whether the array left service (the driver
          schedules :meth:`recover`).  An array with other batches
          still stacked behind the crash is *not* quarantined — its
          surviving work drains first.

        The failure domain is exactly this batch: no other array, queue,
        or in-flight batch is touched.
        """
        tenant = placed.tenant
        array = placed.array
        count = self.inflight[array]
        quarantined = count <= 1
        self.inflight[array] = 0 if quarantined else count - 1
        if quarantined:
            self.pool.quarantine(array)
            self._quarantine_started[array] = now_us
            self.fault_stats.quarantines += 1
        # The members were counted served at placement; hand the credit
        # back so weighted-fair selection is not skewed by crashes (a
        # retried member re-earns it when its retry batch places).
        tenant.served -= placed.size
        retry = self.retry
        retries: list[tuple[QueuedRequest, float]] = []
        failed: list[QueuedRequest] = []
        for member in placed.members:
            attempt = replace(member, attempts=member.attempts + 1)
            if attempt.attempts < retry.max_attempts:
                retries.append((attempt, retry.requeue_at_us(now_us, member)))
            else:
                failed.append(attempt)
        stats = self.fault_stats
        detected = placed.corrupt is not None and not placed.fault
        if detected:
            stats.detected += 1
        else:
            stats.crashes += 1
            if placed.fault:
                stats.injected += 1
                if placed.correlated:
                    stats.correlated += 1
        stats.failed += len(failed)
        tracer = self.tracer
        if tracer.enabled:
            if detected:
                tracer.corruption_detected(now_us, placed)
            else:
                tracer.batch_crashed(now_us, placed)
            if quarantined:
                tracer.array_quarantined(now_us, array)
            for request in failed:
                tracer.request_failed(now_us, request.index, tenant.name)
        return retries, failed, quarantined

    def served_corrupt(self, placed: PlacedBatch, now_us: float) -> None:
        """A corrupted batch completed *undetected*; account the damage.

        Called by the drivers' completion handlers when a batch carrying
        a :class:`~repro.serve.faults.CorruptionSpec` reaches its sink —
        the outcome the checksum mode exists to make impossible for
        weight/accumulator targets.
        """
        self.fault_stats.corrupted_served += placed.size
        if self.tracer.enabled:
            self.tracer.batch_corrupted(now_us, placed)

    def requeue(
        self, tenant: TenantState, requests: list[QueuedRequest], now_us: float
    ) -> None:
        """Return retried requests to the *front* of their tenant queue.

        ``requests`` arrive in original member order; reversed front
        insertion keeps the queue arrival-sorted (retries are the oldest
        work the tenant has).
        """
        for request in reversed(requests):
            tenant.queue.push_front(request)
        self.fault_stats.retries += len(requests)
        tracer = self.tracer
        if tracer.enabled:
            for request in requests:
                tracer.request_retried(now_us, request.index, tenant.name)

    def recover(self, array: int, now_us: float) -> None:
        """Readmit a quarantined array (the driver health-probed it)."""
        self.pool.readmit(array)
        started = self._quarantine_started.pop(array, now_us)
        elapsed = now_us - started
        stats = self.fault_stats
        stats.recoveries += 1
        stats.recovery_total_us += elapsed
        if elapsed > stats.recovery_max_us:
            stats.recovery_max_us = elapsed
        if self.tracer.enabled:
            self.tracer.array_recovered(now_us, array)

    def pending_timeouts(self, now_us: float) -> list[float]:
        """Coalescing deadlines of queues that are waiting, not ready."""
        deadlines = []
        for tenant in self.tenants:
            if len(tenant.queue) and not tenant.batching.ready(
                tenant.queue, now_us
            ):
                deadline = tenant.batching.next_deadline_us(tenant.queue, now_us)
                if deadline is not None:
                    deadlines.append(deadline)
        return deadlines

    def queue_depth(self) -> int:
        """Requests currently queued across all tenants."""
        return sum(len(tenant.queue) for tenant in self.tenants)
