"""Per-batch compute-cost models for the serving simulator.

:class:`ScheduledBatchCost` is the ground truth: it runs
:class:`repro.hw.scheduler.BatchScheduler` on a real batch, so the cycles
the serving simulator charges are **bit-identical** to the batched engine
run standalone.  Cycle accounting depends only on the batch size (tiling
is shape-driven; data never changes the schedule), so per-size costs are
memoized with a zero-image probe batch and real request images only need
executing when the caller wants predictions.

:class:`AnalyticBatchCost` is the closed-form :mod:`repro.perf` model of
the same schedule; :func:`crosscheck` asserts the two agree to a small
relative tolerance, keeping the fast analytic path honest.
"""

from __future__ import annotations

import numpy as np

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ConfigError
from repro.hw.accelerator import CapsAccAccelerator
from repro.hw.config import AcceleratorConfig
from repro.hw.scheduler import BatchResult, BatchScheduler
from repro.perf.model import CapsAccPerformanceModel

#: Supported cycle accountings: double-buffered Weight2 overlap (what the
#: paper's architecture achieves and :mod:`repro.perf` models) or the
#: fully sequential schedule (weight loads stall compute).
ACCOUNTINGS = ("overlapped", "sequential")


def _batch_cycles(result: BatchResult, accounting: str) -> int:
    if accounting == "overlapped":
        return result.overlapped_cycles
    if accounting == "sequential":
        return result.total_cycles
    raise ConfigError(f"unknown accounting {accounting!r} (choose from {ACCOUNTINGS})")


class ScheduledBatchCost:
    """Exact batch costs from the batched execution engine.

    Parameters
    ----------
    qnet:
        Quantized network to schedule; built from ``network`` when omitted.
    network:
        Network configuration (defaults to the paper's MNIST CapsuleNet).
    accel_config:
        Accelerator configuration (array size, clock, FIFO depth, ...).
    accounting:
        ``"overlapped"`` (default) or ``"sequential"`` cycle accounting.
    engine:
        Execution engine for the scheduler (``fast``/``stepped``).
    """

    def __init__(
        self,
        qnet: QuantizedCapsuleNet | None = None,
        network: CapsNetConfig | None = None,
        accel_config: AcceleratorConfig | None = None,
        accounting: str = "overlapped",
        engine: str = "fast",
    ) -> None:
        if accounting not in ACCOUNTINGS:
            raise ConfigError(
                f"unknown accounting {accounting!r} (choose from {ACCOUNTINGS})"
            )
        if qnet is None:
            qnet = QuantizedCapsuleNet(network if network is not None else mnist_capsnet_config())
        self.qnet = qnet
        accelerator = (
            CapsAccAccelerator(accel_config, formats=qnet.formats)
            if accel_config is not None
            else None
        )
        self.scheduler = BatchScheduler(qnet, accelerator=accelerator, engine=engine)
        self.accounting = accounting
        self._memo: dict[int, int] = {}

    @property
    def config(self) -> AcceleratorConfig:
        """The accelerator configuration costs are computed for."""
        return self.scheduler.accelerator.config

    def batch_cycles(self, batch_size: int) -> int:
        """Cycles one ``batch_size`` batch occupies an array (memoized).

        Probes the scheduler with a zero-image batch; tiling — and
        therefore the accounting — is shape-driven, so the memoized value
        is bit-identical to any real batch of the same size.
        """
        if batch_size < 1:
            raise ConfigError("batch size must be positive")
        if batch_size not in self._memo:
            size = self.qnet.config.image_size
            probe = np.zeros((batch_size, size, size), dtype=np.float64)
            self._memo[batch_size] = _batch_cycles(
                self.scheduler.run_batch(probe), self.accounting
            )
        return self._memo[batch_size]

    def execute(self, images: np.ndarray) -> tuple[int, BatchResult]:
        """Run a real batch; returns its cycles and the full result."""
        result = self.scheduler.run_batch(images)
        cycles = _batch_cycles(result, self.accounting)
        self._memo.setdefault(result.batch, cycles)
        return cycles, result


class AnalyticBatchCost:
    """Closed-form batch costs from the :mod:`repro.perf` model.

    Orders of magnitude faster than executing the scheduler — useful for
    long traces — and validated against :class:`ScheduledBatchCost` by
    :func:`crosscheck` (the analytic model uses the same shared cycle
    formulas, so agreement is tight but not bit-exact: the scheduler's
    per-capsule FC jobs and activation interleaving differ slightly).
    """

    def __init__(
        self,
        network: CapsNetConfig | None = None,
        accel_config: AcceleratorConfig | None = None,
        optimized_routing: bool = True,
    ) -> None:
        self.network = network if network is not None else mnist_capsnet_config()
        self._config = accel_config if accel_config is not None else AcceleratorConfig()
        self.model = CapsAccPerformanceModel(
            accelerator=self._config,
            network=self.network,
            optimized_routing=optimized_routing,
        )
        self._memo: dict[int, int] = {}

    @property
    def config(self) -> AcceleratorConfig:
        """The accelerator configuration costs are computed for."""
        return self._config

    def batch_cycles(self, batch_size: int) -> int:
        """Closed-form cycles for one batch (memoized)."""
        if batch_size < 1:
            raise ConfigError("batch size must be positive")
        if batch_size not in self._memo:
            self._memo[batch_size] = self.model.run(batch=batch_size).total_cycles
        return self._memo[batch_size]


def crosscheck(
    scheduled: ScheduledBatchCost,
    analytic: AnalyticBatchCost,
    batch_sizes: tuple[int, ...] = (1, 4, 8),
    rel_tol: float = 0.02,
) -> dict[int, dict[str, float]]:
    """Compare exact scheduler cycles against the closed-form model.

    Returns per-batch-size ``{"scheduled", "analytic", "rel_error"}`` and
    raises :class:`~repro.errors.ConfigError` if any relative error
    exceeds ``rel_tol`` — the guard that keeps the fast analytic path
    consistent with the bit-exact engine.
    """
    report: dict[int, dict[str, float]] = {}
    for batch in batch_sizes:
        exact = scheduled.batch_cycles(batch)
        model = analytic.batch_cycles(batch)
        rel = abs(model - exact) / exact
        report[batch] = {
            "scheduled": float(exact),
            "analytic": float(model),
            "rel_error": float(rel),
        }
        if rel > rel_tol:
            raise ConfigError(
                f"analytic model diverges from scheduler at batch {batch}:"
                f" {model} vs {exact} cycles ({rel:.1%} > {rel_tol:.1%})"
            )
    return report
