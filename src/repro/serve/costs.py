"""Per-batch compute-cost models for the serving simulator.

:class:`ScheduledBatchCost` is the ground truth: it runs
:class:`repro.hw.scheduler.BatchScheduler` on a real batch, so the cycles
the serving simulator charges are **bit-identical** to the batched engine
run standalone.  Cycle accounting depends only on the batch size (tiling
is shape-driven; data never changes the schedule), so per-size costs are
memoized with a zero-image probe batch and real request images only need
executing when the caller wants predictions.

:class:`AnalyticBatchCost` is the closed-form :mod:`repro.perf` model of
the same schedule; :func:`crosscheck` asserts the two agree to a small
relative tolerance, keeping the fast analytic path honest.

With ``pipeline=True`` both models additionally price the *warm* cost of
stream pipelining (:mod:`repro.hw.pipeline`): an array that receives a
batch back to back — dispatched the instant the previous batch finished —
keeps its pipeline full, prestages the next batch's conv1 tiles under the
previous batch's routing tail, and pays only the steady-state marginal
cycles instead of the cold figure.  The warm cost is keyed by the
``(prev_batch_size, batch_size)`` pair: a homogeneous probe stream of
the batch size prices the ``prev == size`` case, and mixed-size
back-to-back dispatches are probed from a two-size stream whose settled
transition batch carries the pair's marginal (the predecessor's tail
covers a different amount of the successor's prestage when the sizes
differ).  Warm costs never exceed the cold cost.

On a shared multi-tenant pool the predecessor batch may belong to a
*different network*: the pipeline op model is network-agnostic, so the
hand-off is priced from a probe stream whose prefix runs the previous
model's ops and whose suffix runs the receiver's — pass ``prev_cost``
to :meth:`~ScheduledBatchCost.warm_batch_cycles` (the simulator wires
the array's last cost model through automatically).

Probes are expensive (the scheduled model runs the execution engine),
so results additionally persist in a **process-wide probe cache** keyed
by (model kind, network shape, accelerator configuration, accounting /
pipeline parameters, probe kind, batch size or hand-off pair).  A cost
model rebuilt for the same shapes — a fresh serving run, a
:class:`~repro.serve.policies.CostBank` resolving a heterogeneous pool,
a sweep point — reuses every previously probed figure instead of
re-running the engine; :func:`clear_probe_cache` resets it.
"""

from __future__ import annotations

import numpy as np

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.compiler.cost import (
    program_batch_cycles,
    program_checksum_cycles,
    program_ops,
)
from repro.compiler.isa import Program
from repro.compiler.zoo import CompiledNetwork, as_compiled
from repro.errors import ConfigError
from repro.hw.accelerator import CapsAccAccelerator
from repro.hw.config import AcceleratorConfig
from repro.hw.pipeline import (
    DEFAULT_PRESTAGE_DEPTH,
    DEFAULT_WINDOW,
    PipelineOp,
    cached_stream_timing,
)
from repro.hw.scheduler import BatchResult, BatchScheduler, PipelinedStreamScheduler
from repro.perf.model import CapsAccPerformanceModel
from repro.perf.stream import PROBE_STREAM_LENGTH, AnalyticStreamCost

#: Supported cycle accountings: double-buffered Weight2 overlap (what the
#: paper's architecture achieves and :mod:`repro.perf` models) or the
#: fully sequential schedule (weight loads stall compute).
ACCOUNTINGS = ("overlapped", "sequential")

#: Probe stream for the mixed-size ``(prev, size)`` warm cost: enough
#: predecessor batches for the pipeline to settle into the predecessor's
#: rhythm, then enough successors that the transition batch has work
#: behind it (a stream-final batch's marginal is tail-flattered — it
#: keeps the whole array once its predecessor retires).
PAIR_PROBE_PREFIX = 3
PAIR_PROBE_SUFFIX = 3

#: Process-wide probe-result cache: cycles keyed by (model signature,
#: probe kind, probe arguments).  Survives across cost-model instances
#: and serving runs; cleared by :func:`clear_probe_cache`.
_PROBE_CACHE: dict[tuple, int] = {}


def clear_probe_cache() -> None:
    """Drop every cached probe result (cold / warm / pair / cross)."""
    _PROBE_CACHE.clear()


def probe_cache_size() -> int:
    """Number of cached probe results (for tests/telemetry)."""
    return len(_PROBE_CACHE)


def _compiled_network_key(compiled: CompiledNetwork) -> tuple:
    """Cross-model identity of a compiled network's shapes.

    CapsNet architectures reduce to the ``(config, optimized_routing)``
    pair :class:`AnalyticBatchCost`'s perf-model path uses, so a
    scheduled and an analytic model pricing the same CapsNet compare
    equal in :func:`_resolve_cross_prev` (no spurious cross-network
    probes); other zoo entries keep their own compiled key.
    """
    key = compiled.key
    if key and key[0] == "capsnet":
        return (key[1], key[2])
    return key


def _pair_marginal(timing) -> int:
    """Marginal cycles of the transition batch in a pair probe stream."""
    return timing.batches[PAIR_PROBE_PREFIX].marginal_cycles


def _pair_warm_cycles(
    memo: dict[tuple[int, int], int],
    probe,
    prev_size: int,
    batch_size: int,
    cold: int,
    cache_key: tuple | None = None,
    extra: int = 0,
) -> int:
    """Memoized mixed-size warm cost from a two-size probe stream.

    Shared by both cost models; ``probe`` maps a batch-size stream to its
    :class:`~repro.hw.pipeline.StreamTiming`.  ``extra`` adds per-batch
    overhead outside the pipeline (the integrity-check cycles).  Clamped
    to the cold cost: an array is never worse off for having stayed warm.
    """
    if prev_size < 1:
        raise ConfigError("previous batch size must be positive")
    key = (prev_size, batch_size)
    if key not in memo:
        global_key = None if cache_key is None else cache_key + key
        cached = None if global_key is None else _PROBE_CACHE.get(global_key)
        if cached is None:
            timing = probe(
                [prev_size] * PAIR_PROBE_PREFIX + [batch_size] * PAIR_PROBE_SUFFIX
            )
            cached = min(_pair_marginal(timing) + extra, cold)
            if global_key is not None:
                _PROBE_CACHE[global_key] = cached
        memo[key] = cached
    return memo[key]


def _cross_pair_cycles(
    receiver,
    prev_cost,
    prev_size: int,
    batch_size: int,
    cold: int,
    extra: int = 0,
) -> int:
    """Warm cost of a cross-network hand-off, from a two-model probe stream.

    The probe stream's prefix runs the *previous* model's op timeline at
    ``prev_size`` and its suffix the receiver's at ``batch_size``; the
    settled transition batch carries the hand-off marginal (the pipeline
    op model is network-agnostic, so mixing models is exactly mixing
    shapes).  Scheduled through the receiver's window/prestage
    parameters and clamped to the receiver's cold cost.
    """
    from repro.hw.pipeline import cached_stream_timing

    if prev_size < 1:
        raise ConfigError("previous batch size must be positive")
    prev_ops = prev_cost.pipeline_ops(prev_size)
    own_ops = receiver.pipeline_ops(batch_size)
    timing = cached_stream_timing(
        [prev_ops] * PAIR_PROBE_PREFIX + [own_ops] * PAIR_PROBE_SUFFIX,
        [prev_size] * PAIR_PROBE_PREFIX + [batch_size] * PAIR_PROBE_SUFFIX,
        window=receiver.window,
        prestage_depth=receiver.prestage_depth,
    )
    return min(_pair_marginal(timing) + extra, cold)


def _resolve_cross_prev(receiver, prev_cost):
    """The previous cost model, iff the hand-off truly crosses networks.

    ``None`` (no predecessor recorded), the receiver itself, or a model
    pricing the *same* network shapes all fall back to the receiver's own
    pair cost — the PR 4 behavior, bit-identical for single-tenant runs.
    A previous model without pipeline ops (built with ``pipeline=False``)
    cannot be probed and also falls back.
    """
    if prev_cost is None or prev_cost is receiver:
        return None
    prev_key = getattr(prev_cost, "network_key", None)
    if prev_key is None or prev_key == receiver.network_key:
        return None
    if not getattr(prev_cost, "pipeline", False):
        return None
    return prev_cost


def _check_integrity_mode(integrity: str) -> None:
    from repro.serve.integrity import CHECK_MODES

    if integrity not in CHECK_MODES:
        raise ConfigError(
            f"integrity mode must be one of {CHECK_MODES}, not {integrity!r}"
        )


def _batch_cycles(result: BatchResult, accounting: str) -> int:
    if accounting == "overlapped":
        return result.overlapped_cycles
    if accounting == "sequential":
        return result.total_cycles
    raise ConfigError(f"unknown accounting {accounting!r} (choose from {ACCOUNTINGS})")


class ScheduledBatchCost:
    """Exact batch costs from the batched execution engine.

    Parameters
    ----------
    qnet:
        Network to schedule: a :class:`QuantizedCapsuleNet`, a compiled
        model-zoo entry (:class:`CompiledNetwork`) or a zoo name string;
        built from ``network`` when omitted.
    network:
        Network configuration (defaults to the paper's MNIST CapsuleNet).
    accel_config:
        Accelerator configuration (array size, clock, FIFO depth, ...).
    accounting:
        ``"overlapped"`` (default) or ``"sequential"`` cycle accounting.
    engine:
        Execution engine for the scheduler (``fast``/``stepped``).
    pipeline:
        Enable the stream-pipelined *warm* cost (requires the overlapped
        accounting — pipelining is meaningless without double-buffering).
    window / prestage_depth:
        Stream-pipeline parameters (see :mod:`repro.hw.pipeline`).
    integrity:
        Check mode to price (one of
        :data:`~repro.serve.integrity.CHECK_MODES`): ``checksum`` and
        ``checksum+canary`` add the ABFT verification cycles
        (:func:`~repro.compiler.cost.program_checksum_cycles`) to every
        batch, so the throughput cost of checking is part of every
        schedule.  Canary probes ride along free (observability).
    """

    def __init__(
        self,
        qnet: QuantizedCapsuleNet | CompiledNetwork | str | None = None,
        network: CapsNetConfig | None = None,
        accel_config: AcceleratorConfig | None = None,
        accounting: str = "overlapped",
        engine: str = "fast",
        pipeline: bool = False,
        window: int = DEFAULT_WINDOW,
        prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
        integrity: str = "none",
    ) -> None:
        if accounting not in ACCOUNTINGS:
            raise ConfigError(
                f"unknown accounting {accounting!r} (choose from {ACCOUNTINGS})"
            )
        _check_integrity_mode(integrity)
        if pipeline and accounting != "overlapped":
            raise ConfigError(
                "the pipelined warm cost requires the overlapped accounting"
                " (stream pipelining builds on the Weight2 double-buffer)"
            )
        if qnet is None:
            qnet = QuantizedCapsuleNet(network if network is not None else mnist_capsnet_config())
        compiled = as_compiled(qnet)
        #: The compiled network priced by this model (everything downstream
        #: — probes, pipeline ops, rebuilds — runs its instruction stream).
        self.compiled = compiled
        #: The quantized golden model when the network has one (CapsNet
        #: architectures); ``None`` for pure zoo baselines.
        self.qnet = compiled.qnet
        accelerator = (
            CapsAccAccelerator(accel_config, formats=compiled.formats)
            if accel_config is not None
            else None
        )
        self.scheduler = BatchScheduler(compiled, accelerator=accelerator, engine=engine)
        self.accounting = accounting
        self.engine = engine
        self.pipeline = pipeline
        self.window = window
        self.prestage_depth = prestage_depth
        self.integrity = integrity
        self._memo: dict[int, int] = {}
        self._warm_memo: dict[int, int] = {}
        self._pair_memo: dict[tuple[int, int], int] = {}
        self._integrity_memo: dict[int, int] = {}
        self._stream: PipelinedStreamScheduler | None = None
        if pipeline:
            self._stream = PipelinedStreamScheduler(
                compiled,
                accelerator=self.scheduler.accelerator,
                engine=engine,
                window=window,
                prestage_depth=prestage_depth,
            )

    @property
    def config(self) -> AcceleratorConfig:
        """The accelerator configuration costs are computed for."""
        return self.scheduler.accelerator.config

    @property
    def network_key(self) -> tuple:
        """Hashable identity of the network shapes this model prices."""
        return _compiled_network_key(self.compiled)

    def signature(self) -> tuple:
        """Hashable identity of every parameter that shapes a probe."""
        return (
            "scheduled",
            self.network_key,
            self.config,
            self.accounting,
            self.engine,
            self.pipeline,
            self.window,
            self.prestage_depth,
            self.integrity,
        )

    def integrity_cycles(self, batch_size: int) -> int:
        """ABFT verification cycles this model adds per batch (memoized)."""
        if self.integrity == "none":
            return 0
        if batch_size not in self._integrity_memo:
            self._integrity_memo[batch_size] = program_checksum_cycles(
                self.config, self.compiled.program, batch_size
            )
        return self._integrity_memo[batch_size]

    def pipeline_ops(self, batch_size: int):
        """This model's pipeline op timeline for one batch (pipelined only)."""
        if self._stream is None:
            raise ConfigError("pipeline ops need a cost model built with pipeline=True")
        return self._stream.batch_ops(batch_size)

    def batch_cycles(self, batch_size: int) -> int:
        """Cycles one ``batch_size`` batch occupies an array (memoized).

        Probes the scheduler with a zero-image batch; tiling — and
        therefore the accounting — is shape-driven, so the memoized value
        is bit-identical to any real batch of the same size.  With
        pipelining enabled the probe runs traced through the stream
        scheduler, so the same engine run also feeds the warm cost.
        Results persist in the process-wide probe cache, so a model
        rebuilt for the same shapes skips the engine probe.
        """
        if batch_size < 1:
            raise ConfigError("batch size must be positive")
        if batch_size not in self._memo:
            key = self.signature() + ("cold", batch_size)
            cached = _PROBE_CACHE.get(key)
            if cached is None:
                if self._stream is not None:
                    result = self._stream.probe_batch(batch_size)
                else:
                    probe = np.zeros(
                        (batch_size,) + tuple(self.compiled.input_shape),
                        dtype=np.float64,
                    )
                    result = self.scheduler.run_batch(probe)
                cached = _PROBE_CACHE[key] = _batch_cycles(
                    result, self.accounting
                ) + self.integrity_cycles(batch_size)
            self._memo[batch_size] = cached
        return self._memo[batch_size]

    def warm_batch_cycles(
        self,
        batch_size: int,
        prev_size: int | None = None,
        prev_cost: "ScheduledBatchCost | AnalyticBatchCost | None" = None,
    ) -> int:
        """Steady-state (pipelined) cycles of a back-to-back batch.

        With ``prev_size`` omitted (or equal to ``batch_size``) the cost
        is probed from a homogeneous stream of ``batch_size`` batches;
        a differing ``prev_size`` prices the mixed-size hand-off from the
        settled transition batch of a two-size probe stream (timing only
        — ops are shape-driven).  A ``prev_cost`` pricing a *different
        network* prices the cross-network hand-off instead: the probe
        stream's prefix runs that model's op timeline (see
        :func:`_cross_pair_cycles`).  Either way the figure is clamped to
        never exceed the cold cost: an array is never worse off for
        having stayed warm.
        """
        if self._stream is None:
            raise ConfigError("warm costs need a cost model built with pipeline=True")
        cross = _resolve_cross_prev(self, prev_cost)
        if cross is not None:
            return self._cross_warm_cycles(cross, prev_size, batch_size)
        if prev_size is not None and prev_size != batch_size:
            return _pair_warm_cycles(
                self._pair_memo,
                self._stream.probe_timing,
                prev_size,
                batch_size,
                self.batch_cycles(batch_size),
                cache_key=self.signature() + ("pair",),
                extra=self.integrity_cycles(batch_size),
            )
        if batch_size not in self._warm_memo:
            key = self.signature() + ("warm", batch_size)
            cached = _PROBE_CACHE.get(key)
            if cached is None:
                cold = self.batch_cycles(batch_size)
                steady = self._stream.probe_timing(
                    [batch_size] * PROBE_STREAM_LENGTH
                ).steady_marginal_cycles
                cached = _PROBE_CACHE[key] = min(
                    steady + self.integrity_cycles(batch_size), cold
                )
            self._warm_memo[batch_size] = cached
        return self._warm_memo[batch_size]

    def _cross_warm_cycles(self, prev_cost, prev_size: int | None, batch_size: int) -> int:
        if prev_size is None:
            prev_size = batch_size
        key = (self.signature(), "cross", prev_cost.signature(), prev_size, batch_size)
        cached = _PROBE_CACHE.get(key)
        if cached is None:
            cached = _PROBE_CACHE[key] = _cross_pair_cycles(
                self,
                prev_cost,
                prev_size,
                batch_size,
                self.batch_cycles(batch_size),
                extra=self.integrity_cycles(batch_size),
            )
        return cached

    def drain_saved_cycles(
        self,
        batch_size: int,
        prev_size: int | None = None,
        prev_cost: "ScheduledBatchCost | AnalyticBatchCost | None" = None,
    ) -> int:
        """Cycles a warm dispatch saves over a cold one (>= 0)."""
        return self.batch_cycles(batch_size) - self.warm_batch_cycles(
            batch_size, prev_size, prev_cost
        )

    def execute(
        self,
        images: np.ndarray,
        warm: bool = False,
        prev_size: int | None = None,
    ) -> tuple[int, BatchResult]:
        """Run a real batch; returns its (cold or warm) cycles and result.

        The outputs are always the engine's — bit-identical either way;
        ``warm`` (and the warm-cost key ``prev_size``) only selects which
        cycle figure the batch is charged.
        """
        result = self.scheduler.run_batch(images)
        cycles = _batch_cycles(result, self.accounting) + self.integrity_cycles(
            result.batch
        )
        self._memo.setdefault(result.batch, cycles)
        if warm:
            return self.warm_batch_cycles(result.batch, prev_size), result
        return cycles, result


class _ProgramStream:
    """Pipeline-op pricing of a compiled program (no engine, no weights).

    Duck-types the slice of :class:`~repro.perf.stream.AnalyticStreamCost`
    the cost models use — ``batch_ops`` / ``stream_timing`` /
    ``steady_cycles`` — but expands the op timeline from the network's
    compiled instruction stream (:func:`repro.compiler.cost.program_ops`),
    so *any* zoo network prices its pipelined warm costs in closed form.
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        program: Program,
        window: int,
        prestage_depth: int,
    ) -> None:
        self.config = config
        self.program = program
        self.window = window
        self.prestage_depth = prestage_depth
        self._ops_memo: dict[int, list[PipelineOp]] = {}

    def batch_ops(self, batch_size: int) -> list[PipelineOp]:
        if batch_size < 1:
            raise ConfigError("batch size must be positive")
        if batch_size not in self._ops_memo:
            self._ops_memo[batch_size] = program_ops(
                self.config, self.program, batch_size
            )
        return self._ops_memo[batch_size]

    def stream_timing(self, batch_sizes):
        ops = [self.batch_ops(size) for size in batch_sizes]
        return cached_stream_timing(
            ops,
            list(batch_sizes),
            window=self.window,
            prestage_depth=self.prestage_depth,
        )

    def cold_cycles(self, batch_size: int) -> int:
        return self.stream_timing([batch_size]).finish_cycles

    def steady_cycles(self, batch_size: int) -> int:
        timing = self.stream_timing([batch_size] * PROBE_STREAM_LENGTH)
        return timing.steady_marginal_cycles


class AnalyticBatchCost:
    """Closed-form batch costs — no engine execution.

    Two pricing paths share one serving surface:

    * a :class:`CapsNetConfig` (or ``None``, the MNIST default) prices
      through the :mod:`repro.perf` closed-form model — orders of
      magnitude faster than executing the scheduler, validated against
      :class:`ScheduledBatchCost` by :func:`crosscheck` (agreement is
      tight but not bit-exact: the scheduler's per-capsule FC jobs and
      activation interleaving differ slightly);
    * a :class:`CompiledNetwork` / zoo name prices straight off the
      compiled instruction stream
      (:func:`repro.compiler.cost.program_batch_cycles`), which **is**
      bit-exact against the scheduled model — any zoo network serves
      analytically with no network-specific modeling code.
    """

    def __init__(
        self,
        network: CapsNetConfig | CompiledNetwork | str | None = None,
        accel_config: AcceleratorConfig | None = None,
        optimized_routing: bool = True,
        pipeline: bool = False,
        window: int = DEFAULT_WINDOW,
        prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
        integrity: str = "none",
    ) -> None:
        _check_integrity_mode(integrity)
        self._config = accel_config if accel_config is not None else AcceleratorConfig()
        self.compiled: CompiledNetwork | None = None
        self.model: CapsAccPerformanceModel | None = None
        if network is None or isinstance(network, CapsNetConfig):
            self.network = network if network is not None else mnist_capsnet_config()
            self.model = CapsAccPerformanceModel(
                accelerator=self._config,
                network=self.network,
                optimized_routing=optimized_routing,
            )
        else:
            self.compiled = as_compiled(network)
            self.network = self.compiled.config
        self.optimized_routing = optimized_routing
        self.pipeline = pipeline
        self.window = window
        self.prestage_depth = prestage_depth
        self.integrity = integrity
        if integrity != "none" and self.compiled is None:
            raise ConfigError(
                "integrity pricing needs a compiled network: the perf-model"
                " path has no instruction stream to checksum — pass a zoo"
                " name or CompiledNetwork instead of a CapsNetConfig"
            )
        self._memo: dict[int, int] = {}
        self._warm_memo: dict[int, int] = {}
        self._pair_memo: dict[tuple[int, int], int] = {}
        self._integrity_memo: dict[int, int] = {}
        self._stream: AnalyticStreamCost | _ProgramStream | None = None
        if pipeline:
            if self.compiled is not None:
                self._stream = _ProgramStream(
                    self._config,
                    self.compiled.program,
                    window=window,
                    prestage_depth=prestage_depth,
                )
            else:
                self._stream = AnalyticStreamCost(
                    network=self.network,
                    accel_config=self._config,
                    optimized_routing=optimized_routing,
                    window=window,
                    prestage_depth=prestage_depth,
                )

    @property
    def config(self) -> AcceleratorConfig:
        """The accelerator configuration costs are computed for."""
        return self._config

    @property
    def network_key(self) -> tuple:
        """Hashable identity of the network shapes this model prices."""
        if self.compiled is not None:
            return _compiled_network_key(self.compiled)
        return (self.network, self.optimized_routing)

    def signature(self) -> tuple:
        """Hashable identity of every parameter that shapes a probe.

        The compiled-program path keys as ``analytic-program``: its
        cycle figures are the instruction stream's exact accounting, not
        the perf model's approximation, so the two paths never share
        probe-cache entries.
        """
        return (
            "analytic-program" if self.compiled is not None else "analytic",
            self.network_key,
            self._config,
            self.pipeline,
            self.window,
            self.prestage_depth,
            self.integrity,
        )

    def integrity_cycles(self, batch_size: int) -> int:
        """ABFT verification cycles this model adds per batch (memoized)."""
        if self.integrity == "none":
            return 0
        if batch_size not in self._integrity_memo:
            self._integrity_memo[batch_size] = program_checksum_cycles(
                self._config, self.compiled.program, batch_size
            )
        return self._integrity_memo[batch_size]

    def pipeline_ops(self, batch_size: int):
        """This model's pipeline op timeline for one batch (pipelined only)."""
        if self._stream is None:
            raise ConfigError("pipeline ops need a cost model built with pipeline=True")
        return self._stream.batch_ops(batch_size)

    def batch_cycles(self, batch_size: int) -> int:
        """Closed-form cycles for one batch (memoized, probe-cache backed)."""
        if batch_size < 1:
            raise ConfigError("batch size must be positive")
        if batch_size not in self._memo:
            key = self.signature() + ("cold", batch_size)
            cached = _PROBE_CACHE.get(key)
            if cached is None:
                if self.compiled is not None:
                    cached = (
                        program_batch_cycles(
                            self._config, self.compiled.program, batch_size
                        )["overlapped"]
                        + self.integrity_cycles(batch_size)
                    )
                else:
                    cached = self.model.run(batch=batch_size).total_cycles
                _PROBE_CACHE[key] = cached
            self._memo[batch_size] = cached
        return self._memo[batch_size]

    def warm_batch_cycles(
        self,
        batch_size: int,
        prev_size: int | None = None,
        prev_cost: "ScheduledBatchCost | AnalyticBatchCost | None" = None,
    ) -> int:
        """Closed-form steady-state cycles of a back-to-back batch.

        Keyed by the ``(prev_size, batch_size)`` pair like the scheduled
        model: mixed-size hand-offs are priced from the settled
        transition batch of a two-size probe stream, and a ``prev_cost``
        pricing a different network routes through the cross-network
        probe (:func:`_cross_pair_cycles`).
        """
        if self._stream is None:
            raise ConfigError("warm costs need a cost model built with pipeline=True")
        cross = _resolve_cross_prev(self, prev_cost)
        if cross is not None:
            return self._cross_warm_cycles(cross, prev_size, batch_size)
        if prev_size is not None and prev_size != batch_size:
            return _pair_warm_cycles(
                self._pair_memo,
                self._stream.stream_timing,
                prev_size,
                batch_size,
                self.batch_cycles(batch_size),
                cache_key=self.signature() + ("pair",),
                extra=self.integrity_cycles(batch_size),
            )
        if batch_size not in self._warm_memo:
            key = self.signature() + ("warm", batch_size)
            cached = _PROBE_CACHE.get(key)
            if cached is None:
                cold = self.batch_cycles(batch_size)
                cached = _PROBE_CACHE[key] = min(
                    self._stream.steady_cycles(batch_size)
                    + self.integrity_cycles(batch_size),
                    cold,
                )
            self._warm_memo[batch_size] = cached
        return self._warm_memo[batch_size]

    def _cross_warm_cycles(self, prev_cost, prev_size: int | None, batch_size: int) -> int:
        if prev_size is None:
            prev_size = batch_size
        key = (self.signature(), "cross", prev_cost.signature(), prev_size, batch_size)
        cached = _PROBE_CACHE.get(key)
        if cached is None:
            cached = _PROBE_CACHE[key] = _cross_pair_cycles(
                self,
                prev_cost,
                prev_size,
                batch_size,
                self.batch_cycles(batch_size),
                extra=self.integrity_cycles(batch_size),
            )
        return cached

    def drain_saved_cycles(
        self,
        batch_size: int,
        prev_size: int | None = None,
        prev_cost: "ScheduledBatchCost | AnalyticBatchCost | None" = None,
    ) -> int:
        """Cycles a warm dispatch saves over a cold one (>= 0)."""
        return self.batch_cycles(batch_size) - self.warm_batch_cycles(
            batch_size, prev_size, prev_cost
        )


def crosscheck(
    scheduled: ScheduledBatchCost,
    analytic: AnalyticBatchCost,
    batch_sizes: tuple[int, ...] = (1, 4, 8),
    rel_tol: float = 0.02,
) -> dict[int, dict[str, float]]:
    """Compare exact scheduler cycles against the closed-form model.

    Returns per-batch-size ``{"scheduled", "analytic", "rel_error"}`` and
    raises :class:`~repro.errors.ConfigError` if any relative error
    exceeds ``rel_tol`` — the guard that keeps the fast analytic path
    consistent with the bit-exact engine.
    """
    report: dict[int, dict[str, float]] = {}
    for batch in batch_sizes:
        exact = scheduled.batch_cycles(batch)
        model = analytic.batch_cycles(batch)
        rel = abs(model - exact) / exact
        report[batch] = {
            "scheduled": float(exact),
            "analytic": float(model),
            "rel_error": float(rel),
        }
        if rel > rel_tol:
            raise ConfigError(
                f"analytic model diverges from scheduler at batch {batch}:"
                f" {model} vs {exact} cycles ({rel:.1%} > {rel_tol:.1%})"
            )
    return report
