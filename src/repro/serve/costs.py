"""Per-batch compute-cost models for the serving simulator.

:class:`ScheduledBatchCost` is the ground truth: it runs
:class:`repro.hw.scheduler.BatchScheduler` on a real batch, so the cycles
the serving simulator charges are **bit-identical** to the batched engine
run standalone.  Cycle accounting depends only on the batch size (tiling
is shape-driven; data never changes the schedule), so per-size costs are
memoized with a zero-image probe batch and real request images only need
executing when the caller wants predictions.

:class:`AnalyticBatchCost` is the closed-form :mod:`repro.perf` model of
the same schedule; :func:`crosscheck` asserts the two agree to a small
relative tolerance, keeping the fast analytic path honest.

With ``pipeline=True`` both models additionally price the *warm* cost of
stream pipelining (:mod:`repro.hw.pipeline`): an array that receives a
batch back to back — dispatched the instant the previous batch finished —
keeps its pipeline full, prestages the next batch's conv1 tiles under the
previous batch's routing tail, and pays only the steady-state marginal
cycles instead of the cold figure.  The warm cost is keyed by the
``(prev_batch_size, batch_size)`` pair: a homogeneous probe stream of
the batch size prices the ``prev == size`` case, and mixed-size
back-to-back dispatches are probed from a two-size stream whose settled
transition batch carries the pair's marginal (the predecessor's tail
covers a different amount of the successor's prestage when the sizes
differ).  Warm costs never exceed the cold cost.
"""

from __future__ import annotations

import numpy as np

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ConfigError
from repro.hw.accelerator import CapsAccAccelerator
from repro.hw.config import AcceleratorConfig
from repro.hw.pipeline import DEFAULT_PRESTAGE_DEPTH, DEFAULT_WINDOW
from repro.hw.scheduler import BatchResult, BatchScheduler, PipelinedStreamScheduler
from repro.perf.model import CapsAccPerformanceModel
from repro.perf.stream import PROBE_STREAM_LENGTH, AnalyticStreamCost

#: Supported cycle accountings: double-buffered Weight2 overlap (what the
#: paper's architecture achieves and :mod:`repro.perf` models) or the
#: fully sequential schedule (weight loads stall compute).
ACCOUNTINGS = ("overlapped", "sequential")

#: Probe stream for the mixed-size ``(prev, size)`` warm cost: enough
#: predecessor batches for the pipeline to settle into the predecessor's
#: rhythm, then enough successors that the transition batch has work
#: behind it (a stream-final batch's marginal is tail-flattered — it
#: keeps the whole array once its predecessor retires).
PAIR_PROBE_PREFIX = 3
PAIR_PROBE_SUFFIX = 3


def _pair_marginal(timing) -> int:
    """Marginal cycles of the transition batch in a pair probe stream."""
    return timing.batches[PAIR_PROBE_PREFIX].marginal_cycles


def _pair_warm_cycles(
    memo: dict[tuple[int, int], int],
    probe,
    prev_size: int,
    batch_size: int,
    cold: int,
) -> int:
    """Memoized mixed-size warm cost from a two-size probe stream.

    Shared by both cost models; ``probe`` maps a batch-size stream to its
    :class:`~repro.hw.pipeline.StreamTiming`.  Clamped to the cold cost:
    an array is never worse off for having stayed warm.
    """
    if prev_size < 1:
        raise ConfigError("previous batch size must be positive")
    key = (prev_size, batch_size)
    if key not in memo:
        timing = probe(
            [prev_size] * PAIR_PROBE_PREFIX + [batch_size] * PAIR_PROBE_SUFFIX
        )
        memo[key] = min(_pair_marginal(timing), cold)
    return memo[key]


def _batch_cycles(result: BatchResult, accounting: str) -> int:
    if accounting == "overlapped":
        return result.overlapped_cycles
    if accounting == "sequential":
        return result.total_cycles
    raise ConfigError(f"unknown accounting {accounting!r} (choose from {ACCOUNTINGS})")


class ScheduledBatchCost:
    """Exact batch costs from the batched execution engine.

    Parameters
    ----------
    qnet:
        Quantized network to schedule; built from ``network`` when omitted.
    network:
        Network configuration (defaults to the paper's MNIST CapsuleNet).
    accel_config:
        Accelerator configuration (array size, clock, FIFO depth, ...).
    accounting:
        ``"overlapped"`` (default) or ``"sequential"`` cycle accounting.
    engine:
        Execution engine for the scheduler (``fast``/``stepped``).
    pipeline:
        Enable the stream-pipelined *warm* cost (requires the overlapped
        accounting — pipelining is meaningless without double-buffering).
    window / prestage_depth:
        Stream-pipeline parameters (see :mod:`repro.hw.pipeline`).
    """

    def __init__(
        self,
        qnet: QuantizedCapsuleNet | None = None,
        network: CapsNetConfig | None = None,
        accel_config: AcceleratorConfig | None = None,
        accounting: str = "overlapped",
        engine: str = "fast",
        pipeline: bool = False,
        window: int = DEFAULT_WINDOW,
        prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
    ) -> None:
        if accounting not in ACCOUNTINGS:
            raise ConfigError(
                f"unknown accounting {accounting!r} (choose from {ACCOUNTINGS})"
            )
        if pipeline and accounting != "overlapped":
            raise ConfigError(
                "the pipelined warm cost requires the overlapped accounting"
                " (stream pipelining builds on the Weight2 double-buffer)"
            )
        if qnet is None:
            qnet = QuantizedCapsuleNet(network if network is not None else mnist_capsnet_config())
        self.qnet = qnet
        accelerator = (
            CapsAccAccelerator(accel_config, formats=qnet.formats)
            if accel_config is not None
            else None
        )
        self.scheduler = BatchScheduler(qnet, accelerator=accelerator, engine=engine)
        self.accounting = accounting
        self.engine = engine
        self.pipeline = pipeline
        self.window = window
        self.prestage_depth = prestage_depth
        self._memo: dict[int, int] = {}
        self._warm_memo: dict[int, int] = {}
        self._pair_memo: dict[tuple[int, int], int] = {}
        self._stream: PipelinedStreamScheduler | None = None
        if pipeline:
            self._stream = PipelinedStreamScheduler(
                qnet,
                accelerator=self.scheduler.accelerator,
                engine=engine,
                window=window,
                prestage_depth=prestage_depth,
            )

    @property
    def config(self) -> AcceleratorConfig:
        """The accelerator configuration costs are computed for."""
        return self.scheduler.accelerator.config

    def batch_cycles(self, batch_size: int) -> int:
        """Cycles one ``batch_size`` batch occupies an array (memoized).

        Probes the scheduler with a zero-image batch; tiling — and
        therefore the accounting — is shape-driven, so the memoized value
        is bit-identical to any real batch of the same size.  With
        pipelining enabled the probe runs traced through the stream
        scheduler, so the same engine run also feeds the warm cost.
        """
        if batch_size < 1:
            raise ConfigError("batch size must be positive")
        if batch_size not in self._memo:
            if self._stream is not None:
                result = self._stream.probe_batch(batch_size)
            else:
                size = self.qnet.config.image_size
                probe = np.zeros((batch_size, size, size), dtype=np.float64)
                result = self.scheduler.run_batch(probe)
            self._memo[batch_size] = _batch_cycles(result, self.accounting)
        return self._memo[batch_size]

    def warm_batch_cycles(self, batch_size: int, prev_size: int | None = None) -> int:
        """Steady-state (pipelined) cycles of a back-to-back batch.

        With ``prev_size`` omitted (or equal to ``batch_size``) the cost
        is probed from a homogeneous stream of ``batch_size`` batches;
        a differing ``prev_size`` prices the mixed-size hand-off from the
        settled transition batch of a two-size probe stream (timing only
        — ops are shape-driven).  Either way the figure is clamped to
        never exceed the cold cost: an array is never worse off for
        having stayed warm.
        """
        if self._stream is None:
            raise ConfigError("warm costs need a cost model built with pipeline=True")
        if prev_size is not None and prev_size != batch_size:
            return _pair_warm_cycles(
                self._pair_memo,
                self._stream.probe_timing,
                prev_size,
                batch_size,
                self.batch_cycles(batch_size),
            )
        if batch_size not in self._warm_memo:
            cold = self.batch_cycles(batch_size)
            steady = self._stream.probe_timing(
                [batch_size] * PROBE_STREAM_LENGTH
            ).steady_marginal_cycles
            self._warm_memo[batch_size] = min(steady, cold)
        return self._warm_memo[batch_size]

    def drain_saved_cycles(self, batch_size: int, prev_size: int | None = None) -> int:
        """Cycles a warm dispatch saves over a cold one (>= 0)."""
        return self.batch_cycles(batch_size) - self.warm_batch_cycles(
            batch_size, prev_size
        )

    def execute(
        self,
        images: np.ndarray,
        warm: bool = False,
        prev_size: int | None = None,
    ) -> tuple[int, BatchResult]:
        """Run a real batch; returns its (cold or warm) cycles and result.

        The outputs are always the engine's — bit-identical either way;
        ``warm`` (and the warm-cost key ``prev_size``) only selects which
        cycle figure the batch is charged.
        """
        result = self.scheduler.run_batch(images)
        cycles = _batch_cycles(result, self.accounting)
        self._memo.setdefault(result.batch, cycles)
        if warm:
            return self.warm_batch_cycles(result.batch, prev_size), result
        return cycles, result


class AnalyticBatchCost:
    """Closed-form batch costs from the :mod:`repro.perf` model.

    Orders of magnitude faster than executing the scheduler — useful for
    long traces — and validated against :class:`ScheduledBatchCost` by
    :func:`crosscheck` (the analytic model uses the same shared cycle
    formulas, so agreement is tight but not bit-exact: the scheduler's
    per-capsule FC jobs and activation interleaving differ slightly).
    """

    def __init__(
        self,
        network: CapsNetConfig | None = None,
        accel_config: AcceleratorConfig | None = None,
        optimized_routing: bool = True,
        pipeline: bool = False,
        window: int = DEFAULT_WINDOW,
        prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
    ) -> None:
        self.network = network if network is not None else mnist_capsnet_config()
        self._config = accel_config if accel_config is not None else AcceleratorConfig()
        self.model = CapsAccPerformanceModel(
            accelerator=self._config,
            network=self.network,
            optimized_routing=optimized_routing,
        )
        self.optimized_routing = optimized_routing
        self.pipeline = pipeline
        self.window = window
        self.prestage_depth = prestage_depth
        self._memo: dict[int, int] = {}
        self._warm_memo: dict[int, int] = {}
        self._pair_memo: dict[tuple[int, int], int] = {}
        self._stream: AnalyticStreamCost | None = None
        if pipeline:
            self._stream = AnalyticStreamCost(
                network=self.network,
                accel_config=self._config,
                optimized_routing=optimized_routing,
                window=window,
                prestage_depth=prestage_depth,
            )

    @property
    def config(self) -> AcceleratorConfig:
        """The accelerator configuration costs are computed for."""
        return self._config

    def batch_cycles(self, batch_size: int) -> int:
        """Closed-form cycles for one batch (memoized)."""
        if batch_size < 1:
            raise ConfigError("batch size must be positive")
        if batch_size not in self._memo:
            self._memo[batch_size] = self.model.run(batch=batch_size).total_cycles
        return self._memo[batch_size]

    def warm_batch_cycles(self, batch_size: int, prev_size: int | None = None) -> int:
        """Closed-form steady-state cycles of a back-to-back batch.

        Keyed by the ``(prev_size, batch_size)`` pair like the scheduled
        model: mixed-size hand-offs are priced from the settled
        transition batch of a two-size probe stream.
        """
        if self._stream is None:
            raise ConfigError("warm costs need a cost model built with pipeline=True")
        if prev_size is not None and prev_size != batch_size:
            return _pair_warm_cycles(
                self._pair_memo,
                self._stream.stream_timing,
                prev_size,
                batch_size,
                self.batch_cycles(batch_size),
            )
        if batch_size not in self._warm_memo:
            cold = self.batch_cycles(batch_size)
            self._warm_memo[batch_size] = min(
                self._stream.steady_cycles(batch_size), cold
            )
        return self._warm_memo[batch_size]

    def drain_saved_cycles(self, batch_size: int, prev_size: int | None = None) -> int:
        """Cycles a warm dispatch saves over a cold one (>= 0)."""
        return self.batch_cycles(batch_size) - self.warm_batch_cycles(
            batch_size, prev_size
        )


def crosscheck(
    scheduled: ScheduledBatchCost,
    analytic: AnalyticBatchCost,
    batch_sizes: tuple[int, ...] = (1, 4, 8),
    rel_tol: float = 0.02,
) -> dict[int, dict[str, float]]:
    """Compare exact scheduler cycles against the closed-form model.

    Returns per-batch-size ``{"scheduled", "analytic", "rel_error"}`` and
    raises :class:`~repro.errors.ConfigError` if any relative error
    exceeds ``rel_tol`` — the guard that keeps the fast analytic path
    consistent with the bit-exact engine.
    """
    report: dict[int, dict[str, float]] = {}
    for batch in batch_sizes:
        exact = scheduled.batch_cycles(batch)
        model = analytic.batch_cycles(batch)
        rel = abs(model - exact) / exact
        report[batch] = {
            "scheduled": float(exact),
            "analytic": float(model),
            "rel_error": float(rel),
        }
        if rel > rel_tol:
            raise ConfigError(
                f"analytic model diverges from scheduler at batch {batch}:"
                f" {model} vs {exact} cycles ({rel:.1%} > {rel_tol:.1%})"
            )
    return report
