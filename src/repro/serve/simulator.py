"""Discrete-event serving simulator: traces -> policies -> arrays -> report.

:class:`ServingSimulator` advances a virtual clock (microseconds) over
three event kinds — request arrival, batch-completion, coalescing-timeout
— and drives only the three policy protocols of
:mod:`repro.serve.policies`:

1. arriving requests pass the tenant's **admission policy** (shed or
   queue) and enter that tenant's FIFO :class:`~repro.serve.batcher.RequestQueue`;
2. whenever an array is idle and a tenant's **batching policy** reports
   its queue *ready*, a batch is taken; among simultaneously-ready
   tenants the one with the smallest ``served/weight`` goes first
   (weighted-fair, so no tenant starves under saturation);
3. the **dispatch policy** picks which idle array the batch claims —
   least-recently-released by default, round-robin, warm-preferring, or
   greedy-fastest over heterogeneous pools where each array carries its
   own :class:`~repro.hw.config.AcceleratorConfig` and per-configuration
   memoized cost model;
4. the batch occupies the array for exactly the cycles the cost model
   charges — bit-identical to ``BatchScheduler`` when the scheduled cost
   model is used — and its completion frees the array.

The classic constructor signature (``trace, policy, cost``) builds the
equivalent :class:`~repro.serve.policies.ServerConfig` internally — the
PR 2/3 behavior is the ``fifo`` policy triple, reproduced exactly.  New
callers pass ``server=ServerConfig(...)`` and optionally
``tenants=[TenantSpec(...), ...]`` for multi-tenant simulation (several
networks' request streams sharing one pool through per-tenant queues).

Waiting time is attributed to *batching* (an array was idle; the policy
chose to coalesce) vs *queueing* (all arrays busy) by integrating the
any-array-idle indicator, so the decomposition sums exactly to the wait.

In ``execute`` mode each dispatched batch also runs through the batched
engine on the request's actual images, producing bit-exact predictions.

With ``pipeline=True`` (and a cost model built with ``pipeline=True``)
a batch dispatched to an array at the exact instant the previous batch
finished is *warm* — charged the steady-state marginal cycles keyed by
the ``(previous batch size, batch size)`` pair instead of the cold
figure — and every warm batch records the drain it saved.
"""

from __future__ import annotations

import copy
import heapq
import math
import time

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.serve.batcher import BatchPolicy, QueuedRequest, RequestQueue
from repro.serve.costs import AnalyticBatchCost, ScheduledBatchCost, crosscheck
from repro.serve.dispatcher import ArrayPool, DispatchContext
from repro.serve.policies import CostBank, ServerConfig, TenantSpec
from repro.serve.stats import (
    BatchRecord,
    RequestRecord,
    ServingReport,
    percentile_summary,
)
from repro.serve.trace import ArrivalTrace

# Event kinds, in tie-break order: completions free arrays before arrivals
# at the same instant see the pool; timeouts run last.
_DONE, _ARRIVE, _TIMEOUT = 0, 1, 2


class _Tenant:
    """Resolved per-tenant serving state (queue, policies, cost)."""

    def __init__(self, spec: TenantSpec, order: int, server: ServerConfig) -> None:
        self.spec = spec
        self.order = order
        self.name = spec.name
        self.trace = spec.trace
        self.weight = spec.weight
        self.cost = spec.cost if spec.cost is not None else server.cost
        self.deadline_us = (
            spec.deadline_us if spec.deadline_us is not None else server.deadline_us
        )
        # Policy instances may be shared — across tenants reusing one
        # spec object, or via the server-level defaults — so deep-copy
        # them before binding: each tenant gets its own compute predictor
        # and mutable state (a shallow copy of ChainedAdmission would
        # still share the chained policy objects).
        self.admission = copy.deepcopy(
            spec.admission if spec.admission is not None else server.admission
        )
        self.batching = copy.deepcopy(
            spec.batching if spec.batching is not None else server.batching
        )
        for policy in (self.admission, self.batching):
            if hasattr(policy, "bind"):
                policy.bind(self.cost)
        if hasattr(self.admission, "bind_batching"):
            self.admission.bind_batching(self.batching)
        self.queue = RequestQueue()
        self.served = 0
        self.global_indices: list[int] = []


class ServingSimulator:
    """Simulates serving request traces on a pool of CapsAcc arrays.

    Parameters
    ----------
    trace:
        Arrival times of every request (single-tenant form; pass
        ``tenants`` instead for multi-tenant runs).
    policy:
        Batching policy (``BatchPolicy(max_batch=1)`` for the serving
        baseline).  Classic positional argument; equivalent to setting
        ``ServerConfig.batching``.
    cost:
        Per-batch cost model (:class:`~repro.serve.costs.ScheduledBatchCost`
        or :class:`~repro.serve.costs.AnalyticBatchCost`).
    arrays:
        Number of identical accelerator arrays to shard batches across.
    images:
        Optional ``(count, H, W)`` request images, aligned with the trace.
        Required by ``execute`` mode (single-tenant only).
    execute:
        Run every dispatched batch through the batched engine on its real
        images (bit-exact predictions; slower).
    pipeline:
        Charge back-to-back batches the stream-pipelined warm cost and
        prefer dispatching to the just-freed (still hot) array.  Requires
        a cost model constructed with ``pipeline=True``.
    network_name:
        Label for reports.
    server:
        Full :class:`~repro.serve.policies.ServerConfig` (admission /
        batching / dispatch policies, heterogeneous array configs, SLA).
        Mutually exclusive with ``policy``/``cost``/``arrays``/
        ``pipeline``/``network_name``.
    tenants:
        :class:`~repro.serve.policies.TenantSpec` list for multi-tenant
        simulation.  Mutually exclusive with ``trace``.
    """

    def __init__(
        self,
        trace: ArrivalTrace | None = None,
        policy=None,
        cost: ScheduledBatchCost | AnalyticBatchCost | None = None,
        arrays: int | None = None,
        images: np.ndarray | None = None,
        execute: bool = False,
        pipeline: bool | None = None,
        network_name: str | None = None,
        server: ServerConfig | None = None,
        tenants: list[TenantSpec] | None = None,
    ) -> None:
        if server is not None:
            # Restating a legacy default (arrays=1, pipeline=False, the
            # default network name) alongside server= is harmless; any
            # other classic argument conflicts with the ServerConfig.
            conflicting = [
                name
                for name, value, defaults in (
                    ("policy", policy, (None,)),
                    ("cost", cost, (None,)),
                    ("arrays", arrays, (None, 1)),
                    ("pipeline", pipeline, (None, False)),
                    ("network_name", network_name, (None, "capsnet")),
                )
                if value not in defaults
            ]
            if conflicting:
                raise ConfigError(
                    "pass either a ServerConfig or the classic arguments,"
                    f" not both (got server= plus {', '.join(conflicting)})"
                )
        else:
            if cost is None:
                raise ConfigError("a cost model is required")
            server = ServerConfig(
                cost=cost,
                batching=policy if policy is not None else BatchPolicy(),
                arrays=arrays if arrays is not None else 1,
                pipeline=bool(pipeline),
                network_name=network_name if network_name is not None else "capsnet",
            )
        self.server = server
        if tenants is None:
            if trace is None:
                raise ConfigError("a trace (or a tenants list) is required")
            tenants = [TenantSpec(name=server.network_name, trace=trace)]
        elif trace is not None:
            raise ConfigError("pass either a trace or a tenants list, not both")
        elif not tenants:
            raise ConfigError("the tenants list needs at least one tenant")
        self.tenant_specs = list(tenants)
        self.multi_tenant = len(self.tenant_specs) > 1

        # Legacy attribute surface.
        self.trace = self.tenant_specs[0].trace
        self.policy = server.batching
        self.cost = server.cost
        self.arrays = server.arrays
        self.images = None if images is None else np.asarray(images)
        self.execute = execute
        self.pipeline = server.pipeline
        self.network_name = server.network_name

        all_costs = [server.cost] + [
            spec.cost for spec in self.tenant_specs if spec.cost is not None
        ]
        if execute:
            if self.multi_tenant:
                raise ConfigError("execute mode is single-tenant only")
            if server.array_configs is not None:
                raise ConfigError("execute mode needs a homogeneous array pool")
            if not isinstance(self.cost, ScheduledBatchCost):
                raise ConfigError("execute mode needs the scheduled (exact) cost model")
            if self.images is None:
                raise ConfigError("execute mode needs per-request images")
        if self.pipeline:
            for model in all_costs:
                if not getattr(model, "pipeline", False):
                    raise ConfigError(
                        "pipeline mode needs a cost model built with pipeline=True"
                    )
        if self.images is not None and len(self.images) != self.trace.count:
            raise ShapeError(
                f"{len(self.images)} images for {self.trace.count} requests"
            )

    def run(self, with_crosscheck: bool = False) -> ServingReport:
        """Run every tenant's trace to completion and return the report."""
        wall_start = time.perf_counter()
        server = self.server
        pool = ArrayPool(server.arrays, configs=server.array_configs)
        # Fresh dispatch state per run (e.g. the round-robin pointer), so
        # repeated run() calls of one simulator stay reproducible.
        dispatch = copy.deepcopy(server.dispatch)
        bank = CostBank()
        tenants = [
            _Tenant(spec, order, server)
            for order, spec in enumerate(self.tenant_specs)
        ]

        # Global request table: one record per request across all tenants.
        requests: list[RequestRecord] = []
        req_tenant: list[int] = []
        events: list[tuple[float, int, int, int]] = []
        seq = 0
        for tenant in tenants:
            deadlines = tenant.trace.deadlines_us
            for local, arrival in enumerate(tenant.trace.times_us):
                index = len(requests)
                # A finite recorded deadline wins; requests without their
                # own get the configured relative SLA (if any).
                if deadlines is not None and math.isfinite(deadlines[local]):
                    deadline = float(deadlines[local])
                elif tenant.deadline_us is not None:
                    deadline = float(arrival) + tenant.deadline_us
                else:
                    deadline = math.inf
                requests.append(
                    RequestRecord(
                        index=index,
                        arrival_us=float(arrival),
                        tenant=tenant.name,
                        deadline_us=deadline,
                    )
                )
                req_tenant.append(tenant.order)
                tenant.global_indices.append(index)
                events.append((float(arrival), _ARRIVE, seq, index))
                seq += 1
        heapq.heapify(events)
        scheduled_timeouts: set[float] = set()

        batches: list[BatchRecord] = []
        running: dict[int, BatchRecord] = {}  # array id -> in-flight batch
        predictions = (
            np.full(len(requests), -1, dtype=np.int64) if self.execute else None
        )

        # Integral of the any-array-idle indicator, for the batching vs
        # queueing attribution; sampled per request at arrival.
        idle_accum = 0.0
        last_time = 0.0
        idle_at_arrival = np.zeros(len(requests), dtype=np.float64)
        makespan = 0.0

        while events:
            now, kind, _, payload = heapq.heappop(events)
            if pool.has_idle():
                idle_accum += now - last_time
            last_time = now

            if kind == _ARRIVE:
                idle_at_arrival[payload] = idle_accum
                record = requests[payload]
                tenant = tenants[req_tenant[payload]]
                request = QueuedRequest(
                    index=payload,
                    arrival_us=now,
                    deadline_us=record.deadline_us,
                )
                if tenant.admission.admit(request, now, tenant.queue, pool):
                    tenant.queue.append(request)
                else:
                    record.shed = True
            elif kind == _DONE:
                batch = running.pop(payload)
                batch.done_us = now
                for index in batch.request_indices:
                    requests[index].done_us = now
                pool.release(payload, now)
                makespan = max(makespan, now)
            # _TIMEOUT carries no state: readiness is re-evaluated below.

            while pool.has_idle():
                ready = [
                    tenant
                    for tenant in tenants
                    if tenant.batching.ready(tenant.queue, now)
                ]
                if not ready:
                    break
                tenant = min(
                    ready, key=lambda t: (t.served / t.weight, t.order)
                )
                members = tenant.batching.take(tenant.queue, now)
                size = len(members)

                def duration_on(array, _tenant=tenant, _size=size, _now=now):
                    model = bank.resolve(_tenant.cost, pool.config_for(array))
                    if self.pipeline and pool.is_warm(array, _now):
                        cycles = model.warm_batch_cycles(
                            _size, pool.last_batch_size(array)
                        )
                    else:
                        cycles = model.batch_cycles(_size)
                    return model.config.cycles_to_us(cycles)

                array = dispatch.select(
                    DispatchContext(
                        pool=pool,
                        now_us=now,
                        batch_size=size,
                        pipeline=self.pipeline,
                        duration_us=duration_on,
                    )
                )
                pool.claim(array)
                warm = self.pipeline and pool.is_warm(array, now)
                prev_size = pool.last_batch_size(array)
                model = bank.resolve(tenant.cost, pool.config_for(array))
                if self.execute:
                    indices = [member.index for member in members]
                    cycles, result = model.execute(
                        self.images[indices], warm=warm, prev_size=prev_size
                    )
                    predictions[indices] = result.predictions
                elif warm:
                    cycles = model.warm_batch_cycles(size, prev_size)
                else:
                    cycles = model.batch_cycles(size)
                duration = model.config.cycles_to_us(cycles)
                pool.charge(array, size, duration, warm=warm, now_us=now)
                drain_saved = (
                    model.config.cycles_to_us(
                        model.drain_saved_cycles(size, prev_size)
                    )
                    if warm
                    else 0.0
                )
                batch = BatchRecord(
                    index=len(batches),
                    size=size,
                    array=array,
                    dispatch_us=now,
                    done_us=now + duration,
                    cycles=cycles,
                    request_indices=[member.index for member in members],
                    warm=warm,
                    drain_saved_us=drain_saved,
                    tenant=tenant.name,
                )
                batches.append(batch)
                running[array] = batch
                tenant.served += size
                for member in members:
                    record = requests[member.index]
                    record.dispatch_us = now
                    record.batch_index = batch.index
                    record.drain_saved_us = drain_saved
                    # Clamp float-epsilon residue of the idle-time integral
                    # so components stay non-negative and sum to the wait.
                    wait = now - record.arrival_us
                    batching = idle_accum - idle_at_arrival[member.index]
                    record.batching_us = min(max(batching, 0.0), wait)
                    record.queueing_us = wait - record.batching_us
                events_entry = (now + duration, _DONE, seq, array)
                seq += 1
                heapq.heappush(events, events_entry)

            if pool.has_idle():
                for tenant in tenants:
                    if len(tenant.queue) and not tenant.batching.ready(
                        tenant.queue, now
                    ):
                        deadline = tenant.batching.next_deadline_us(
                            tenant.queue, now
                        )
                        if deadline is not None and deadline not in scheduled_timeouts:
                            scheduled_timeouts.add(deadline)
                            heapq.heappush(
                                events, (max(deadline, now), _TIMEOUT, seq, 0)
                            )
                            seq += 1

        wall_seconds = time.perf_counter() - wall_start
        check = None
        if (
            with_crosscheck
            and not self.multi_tenant
            and server.array_configs is None
            and isinstance(self.cost, ScheduledBatchCost)
            and self.cost.accounting == "overlapped"  # the schedule perf models
        ):
            analytic = AnalyticBatchCost(
                network=self.cost.qnet.config, accel_config=self.cost.config
            )
            sizes = tuple(sorted({batch.size for batch in batches}))
            check = {
                str(size): values
                for size, values in crosscheck(self.cost, analytic, sizes).items()
            }
        return ServingReport(
            network=self.network_name,
            trace_name=(
                self.trace.name
                if not self.multi_tenant
                else "+".join(f"{t.name}:{t.trace.name}" for t in tenants)
            ),
            offered_rps=(
                self.trace.offered_rps
                if not self.multi_tenant
                else sum(t.trace.offered_rps for t in tenants)
            ),
            policy=server.policy_json(),
            arrays=server.arrays,
            clock_mhz=self.cost.config.clock_mhz,
            accounting=getattr(self.cost, "accounting", "overlapped"),
            pipeline=self.pipeline,
            requests=requests,
            batches=batches,
            array_stats=[
                {
                    "array": stat.array,
                    "busy_us": stat.busy_us,
                    "batches": stat.batches,
                    "requests": stat.requests,
                    "warm_batches": stat.warm_batches,
                    "utilization": stat.utilization(makespan),
                }
                for stat in pool.stats
            ],
            makespan_us=makespan,
            wall_seconds=wall_seconds,
            predictions=predictions,
            crosscheck=check,
            tenants=(
                _tenant_summaries(tenants, requests) if self.multi_tenant else None
            ),
        )


def _tenant_summaries(
    tenants: list[_Tenant], requests: list[RequestRecord]
) -> list[dict]:
    """Per-tenant request/shed/latency breakdown for the report."""
    total_served = sum(
        1 for record in requests if not record.shed
    )
    summaries = []
    for tenant in tenants:
        records = [requests[index] for index in tenant.global_indices]
        served = [record for record in records if not record.shed]
        summaries.append(
            {
                "tenant": tenant.name,
                "weight": tenant.weight,
                "offered": len(records),
                "served": len(served),
                "shed": len(records) - len(served),
                "served_share": (
                    len(served) / total_served if total_served else 0.0
                ),
                "deadline_misses": sum(
                    1 for record in records if record.missed_deadline
                ),
                "latency_us": percentile_summary(
                    np.array([record.latency_us for record in served])
                ),
            }
        )
    return summaries
