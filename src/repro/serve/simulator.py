"""Discrete-event serving simulator: trace -> batcher -> arrays -> report.

:class:`ServingSimulator` advances a virtual clock (microseconds) over
three event kinds — request arrival, batch-completion, coalescing-timeout
— and drives the dynamic batcher and the multi-array dispatcher:

1. arriving requests queue in the :class:`~repro.serve.batcher.DynamicBatcher`;
2. whenever an array is idle and the batcher is *ready* (full batch, or
   the oldest request's ``max_wait_us`` expired), a batch dispatches to
   the lowest-id idle array;
3. the batch occupies the array for exactly the cycles the cost model
   charges — bit-identical to ``BatchScheduler`` when the scheduled cost
   model is used — and its completion frees the array for the next batch.

Waiting time is attributed to *batching* (an array was idle; the policy
chose to coalesce) vs *queueing* (all arrays busy) by integrating the
any-array-idle indicator, so the decomposition sums exactly to the wait.

In ``execute`` mode each dispatched batch also runs through the batched
engine on the request's actual images, producing bit-exact predictions
and making the host wall-clock throughput a real "simulated serving"
measurement (the per-job dispatch cost batching amortizes is genuine
simulation work, exactly as in ``benchmarks/bench_batched.py``).

With ``pipeline=True`` (and a cost model built with ``pipeline=True``)
the simulator models stream pipelining across batches: a batch dispatched
to an array at the exact instant the previous batch finished is *warm* —
its conv1 tiles prestaged under the predecessor's routing tail — and is
charged the steady-state marginal cycles instead of the cold figure.
The dispatcher prefers the just-freed array so back-to-back load keeps
one array hot, and every warm batch records the drain it saved; the
latency report gains a ``drain_saved`` component (informational — the
compute component is already the warm figure, so the three-way
queueing/batching/compute decomposition still sums to the latency).
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.serve.batcher import BatchPolicy, DynamicBatcher, QueuedRequest
from repro.serve.costs import AnalyticBatchCost, ScheduledBatchCost, crosscheck
from repro.serve.dispatcher import ArrayPool
from repro.serve.stats import BatchRecord, RequestRecord, ServingReport
from repro.serve.trace import ArrivalTrace

# Event kinds, in tie-break order: completions free arrays before arrivals
# at the same instant see the pool; timeouts run last.
_DONE, _ARRIVE, _TIMEOUT = 0, 1, 2


class ServingSimulator:
    """Simulates serving one request trace on ``arrays`` CapsAcc arrays.

    Parameters
    ----------
    trace:
        Arrival times of every request.
    policy:
        Dynamic batching policy (``max_batch=1`` for the serving baseline).
    cost:
        Per-batch cost model (:class:`~repro.serve.costs.ScheduledBatchCost`
        or :class:`~repro.serve.costs.AnalyticBatchCost`).
    arrays:
        Number of identical accelerator arrays to shard batches across.
    images:
        Optional ``(count, H, W)`` request images, aligned with the trace.
        Required by ``execute`` mode.
    execute:
        Run every dispatched batch through the batched engine on its real
        images (bit-exact predictions; slower).  Without it, batch costs
        come from the memoized cost model and no outputs are produced.
    pipeline:
        Charge back-to-back batches the stream-pipelined warm cost and
        prefer dispatching to the just-freed (still hot) array.  Requires
        a cost model constructed with ``pipeline=True``.
    network_name:
        Label for reports.
    """

    def __init__(
        self,
        trace: ArrivalTrace,
        policy: BatchPolicy,
        cost: ScheduledBatchCost | AnalyticBatchCost,
        arrays: int = 1,
        images: np.ndarray | None = None,
        execute: bool = False,
        pipeline: bool = False,
        network_name: str = "capsnet",
    ) -> None:
        self.trace = trace
        self.policy = policy
        self.cost = cost
        self.arrays = arrays
        self.images = None if images is None else np.asarray(images)
        self.execute = execute
        self.pipeline = pipeline
        self.network_name = network_name
        if execute and not isinstance(cost, ScheduledBatchCost):
            raise ConfigError("execute mode needs the scheduled (exact) cost model")
        if execute and self.images is None:
            raise ConfigError("execute mode needs per-request images")
        if pipeline and not getattr(cost, "pipeline", False):
            raise ConfigError(
                "pipeline mode needs a cost model built with pipeline=True"
            )
        if self.images is not None and len(self.images) != trace.count:
            raise ShapeError(
                f"{len(self.images)} images for {trace.count} requests"
            )

    def run(self, with_crosscheck: bool = False) -> ServingReport:
        """Run the trace to completion and return the full report."""
        wall_start = time.perf_counter()
        config = self.cost.config
        batcher = DynamicBatcher(self.policy)
        pool = ArrayPool(self.arrays)
        requests = [
            RequestRecord(index=i, arrival_us=float(t))
            for i, t in enumerate(self.trace.times_us)
        ]
        batches: list[BatchRecord] = []
        running: dict[int, BatchRecord] = {}  # array id -> in-flight batch
        predictions = (
            np.full(self.trace.count, -1, dtype=np.int64) if self.execute else None
        )

        events: list[tuple[float, int, int, int]] = []
        seq = 0
        for i, record in enumerate(requests):
            events.append((record.arrival_us, _ARRIVE, seq, i))
            seq += 1
        heapq.heapify(events)
        scheduled_timeouts: set[float] = set()

        # Integral of the any-array-idle indicator, for the batching vs
        # queueing attribution; sampled per request at arrival.
        idle_accum = 0.0
        last_time = 0.0
        idle_at_arrival = np.zeros(self.trace.count, dtype=np.float64)
        makespan = 0.0

        while events:
            now, kind, _, payload = heapq.heappop(events)
            if pool.has_idle():
                idle_accum += now - last_time
            last_time = now

            if kind == _ARRIVE:
                idle_at_arrival[payload] = idle_accum
                batcher.add(QueuedRequest(index=payload, arrival_us=now))
            elif kind == _DONE:
                batch = running.pop(payload)
                batch.done_us = now
                for index in batch.request_indices:
                    requests[index].done_us = now
                pool.release(payload, now)
                makespan = max(makespan, now)
            # _TIMEOUT carries no state: readiness is re-evaluated below.

            while pool.has_idle() and batcher.ready(now):
                members = batcher.take()
                size = len(members)
                array, back_to_back = pool.select(now, prefer_warm=self.pipeline)
                warm = self.pipeline and back_to_back
                if self.execute:
                    indices = [member.index for member in members]
                    cycles, result = self.cost.execute(self.images[indices], warm=warm)
                    predictions[indices] = result.predictions
                elif warm:
                    cycles = self.cost.warm_batch_cycles(size)
                else:
                    cycles = self.cost.batch_cycles(size)
                duration = config.cycles_to_us(cycles)
                pool.charge(array, size, duration, warm=warm)
                drain_saved = (
                    config.cycles_to_us(self.cost.drain_saved_cycles(size))
                    if warm
                    else 0.0
                )
                batch = BatchRecord(
                    index=len(batches),
                    size=size,
                    array=array,
                    dispatch_us=now,
                    done_us=now + duration,
                    cycles=cycles,
                    request_indices=[member.index for member in members],
                    warm=warm,
                    drain_saved_us=drain_saved,
                )
                batches.append(batch)
                running[array] = batch
                for member in members:
                    record = requests[member.index]
                    record.dispatch_us = now
                    record.batch_index = batch.index
                    record.drain_saved_us = drain_saved
                    # Clamp float-epsilon residue of the idle-time integral
                    # so components stay non-negative and sum to the wait.
                    wait = now - record.arrival_us
                    batching = idle_accum - idle_at_arrival[member.index]
                    record.batching_us = min(max(batching, 0.0), wait)
                    record.queueing_us = wait - record.batching_us
                events_entry = (now + duration, _DONE, seq, array)
                seq += 1
                heapq.heappush(events, events_entry)

            if pool.has_idle() and len(batcher) and not batcher.ready(now):
                deadline = batcher.oldest_deadline_us
                if deadline not in scheduled_timeouts:
                    scheduled_timeouts.add(deadline)
                    heapq.heappush(events, (deadline, _TIMEOUT, seq, 0))
                    seq += 1

        wall_seconds = time.perf_counter() - wall_start
        check = None
        if (
            with_crosscheck
            and isinstance(self.cost, ScheduledBatchCost)
            and self.cost.accounting == "overlapped"  # the schedule perf models
        ):
            analytic = AnalyticBatchCost(
                network=self.cost.qnet.config, accel_config=config
            )
            sizes = tuple(sorted({batch.size for batch in batches}))
            check = {
                str(size): values
                for size, values in crosscheck(self.cost, analytic, sizes).items()
            }
        return ServingReport(
            network=self.network_name,
            trace_name=self.trace.name,
            offered_rps=self.trace.offered_rps,
            policy={
                "max_batch": self.policy.max_batch,
                "max_wait_us": self.policy.max_wait_us,
                "describe": self.policy.describe(),
            },
            arrays=self.arrays,
            clock_mhz=config.clock_mhz,
            accounting=getattr(self.cost, "accounting", "overlapped"),
            pipeline=self.pipeline,
            requests=requests,
            batches=batches,
            array_stats=[
                {
                    "array": stat.array,
                    "busy_us": stat.busy_us,
                    "batches": stat.batches,
                    "requests": stat.requests,
                    "warm_batches": stat.warm_batches,
                    "utilization": stat.utilization(makespan),
                }
                for stat in pool.stats
            ],
            makespan_us=makespan,
            wall_seconds=wall_seconds,
            predictions=predictions,
            crosscheck=check,
        )
