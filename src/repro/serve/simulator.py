"""Discrete-event serving simulator: traces -> policies -> arrays -> report.

:class:`ServingSimulator` advances a virtual clock (microseconds) over
three event kinds — request arrival, batch-completion, coalescing-timeout
— and drives only the three policy protocols of
:mod:`repro.serve.policies`:

1. arriving requests pass the tenant's **admission policy** (shed or
   queue) and enter that tenant's FIFO :class:`~repro.serve.batcher.RequestQueue`;
2. whenever an array is idle and a tenant's **batching policy** reports
   its queue *ready*, a batch is taken; among simultaneously-ready
   tenants the one with the smallest ``served/weight`` goes first
   (weighted-fair, so no tenant starves under saturation);
3. the **dispatch policy** picks which idle array the batch claims —
   least-recently-released by default, round-robin, warm-preferring, or
   greedy-fastest over heterogeneous pools where each array carries its
   own :class:`~repro.hw.config.AcceleratorConfig` and per-configuration
   memoized cost model;
4. the batch occupies the array for exactly the cycles the cost model
   charges — bit-identical to ``BatchScheduler`` when the scheduled cost
   model is used — and its completion frees the array.

The classic constructor signature (``trace, policy, cost``) builds the
equivalent :class:`~repro.serve.policies.ServerConfig` internally — the
PR 2/3 behavior is the ``fifo`` policy triple, reproduced exactly.  New
callers pass ``server=ServerConfig(...)`` and optionally
``tenants=[TenantSpec(...), ...]`` for multi-tenant simulation (several
networks' request streams sharing one pool through per-tenant queues).

Waiting time is attributed to *batching* (an array was idle; the policy
chose to coalesce) vs *queueing* (all arrays busy) by integrating the
any-array-idle indicator, so the decomposition sums exactly to the wait.

In ``execute`` mode each dispatched batch also runs through the batched
engine on the request's actual images, producing bit-exact predictions.

With ``pipeline=True`` (and a cost model built with ``pipeline=True``)
a batch dispatched to an array at the exact instant the previous batch
finished is *warm* — charged the steady-state marginal cycles keyed by
the ``(previous batch size, batch size)`` pair instead of the cold
figure — and every warm batch records the drain it saved.  On a shared
multi-tenant pool the predecessor batch may belong to a different
network; the pool remembers which cost model priced it, and the warm
cost is probed from the actual *(previous network, network)* hand-off
instead of assuming the receiving tenant's own pair cost.

Two execution paths produce the report:

* ``record_requests=True`` (default) — the full per-request /
  per-batch tables, exactly the PR 4 behavior (bit-identical reports).
* ``record_requests=False`` — the **streaming fast path**: the same
  policy decisions (identical offered/completed/shed counts and batch
  formation), but every served request folds into O(1)-memory
  :class:`~repro.serve.stats.StreamingStats` histograms instead of a
  record table.  Arrivals are consumed from the sorted trace arrays
  instead of being heaped, runs of arrivals while every array is busy
  are drained in bulk (single-tenant admit-all), and the classic
  :class:`~repro.serve.batcher.BatchPolicy` is inlined — an order of
  magnitude faster on long traces, which is what makes trace-at-scale
  replay and serving design-space sweeps tractable.
"""

from __future__ import annotations

import bisect
import copy
import heapq
import math
import time

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.obs.tracer import NULL_TRACER
from repro.serve.batcher import BatchPolicy, QueuedRequest
from repro.serve.core import (
    EVENT_ARRIVE,
    EVENT_CRASH,
    EVENT_DONE,
    EVENT_RECOVER,
    EVENT_REQUEUE,
    EVENT_TIMEOUT,
    DurationProbe,
    PlacedBatch,
    ServingCore,
    TenantState,
    group_requeues,
)
from repro.serve.costs import AnalyticBatchCost, ScheduledBatchCost, crosscheck
from repro.serve.dispatcher import ArrayPool, DispatchContext, LeastRecentDispatch
from repro.serve.policies import AdmitAll, CostBank, ServerConfig, TenantSpec
from repro.serve.sinks import RecordingSink, StreamingSink
from repro.serve.stats import (
    DEFAULT_LATENCY_BIN_US,
    BatchRecord,
    RequestRecord,
    ServingReport,
    StreamingStats,
    percentile_summary,
    tenant_summary_from_streaming,
)
from repro.serve.trace import ArrivalTrace

# Event kinds, in tie-break order: completions free arrays before arrivals
# at the same instant see the pool; timeouts run last.  (Shared with the
# live runtime's virtual-time replay via repro.serve.core.)  The fault
# kinds sort after the classic three, so fault-free runs order events
# bit-identically to the pre-fault engine.
_DONE, _ARRIVE, _TIMEOUT = EVENT_DONE, EVENT_ARRIVE, EVENT_TIMEOUT
_CRASH, _REQUEUE, _RECOVER = EVENT_CRASH, EVENT_REQUEUE, EVENT_RECOVER

# The per-tenant state and the warm-aware duration probe moved to
# repro.serve.core (the simulator and the live runtime share them);
# legacy aliases keep the old private names importable.
_Tenant = TenantState
_DurationProbe = DurationProbe


class ServingSimulator:
    """Simulates serving request traces on a pool of CapsAcc arrays.

    Parameters
    ----------
    trace:
        Arrival times of every request (single-tenant form; pass
        ``tenants`` instead for multi-tenant runs).
    policy:
        Batching policy (``BatchPolicy(max_batch=1)`` for the serving
        baseline).  Classic positional argument; equivalent to setting
        ``ServerConfig.batching``.
    cost:
        Per-batch cost model (:class:`~repro.serve.costs.ScheduledBatchCost`
        or :class:`~repro.serve.costs.AnalyticBatchCost`).
    arrays:
        Number of identical accelerator arrays to shard batches across.
    images:
        Optional ``(count, H, W)`` request images, aligned with the trace.
        Required by ``execute`` mode (single-tenant only).
    execute:
        Run every dispatched batch through the batched engine on its real
        images (bit-exact predictions; slower).
    pipeline:
        Charge back-to-back batches the stream-pipelined warm cost and
        prefer dispatching to the just-freed (still hot) array.  Requires
        a cost model constructed with ``pipeline=True``.
    network_name:
        Label for reports.
    server:
        Full :class:`~repro.serve.policies.ServerConfig` (admission /
        batching / dispatch policies, heterogeneous array configs, SLA).
        Mutually exclusive with ``policy``/``cost``/``arrays``/
        ``pipeline``/``network_name``.
    tenants:
        :class:`~repro.serve.policies.TenantSpec` list for multi-tenant
        simulation.  Mutually exclusive with ``trace``.
    """

    def __init__(
        self,
        trace: ArrivalTrace | None = None,
        policy=None,
        cost: ScheduledBatchCost | AnalyticBatchCost | None = None,
        arrays: int | None = None,
        images: np.ndarray | None = None,
        execute: bool = False,
        pipeline: bool | None = None,
        network_name: str | None = None,
        server: ServerConfig | None = None,
        tenants: list[TenantSpec] | None = None,
        tracer=None,
    ) -> None:
        if server is not None:
            # Restating a legacy default (arrays=1, pipeline=False, the
            # default network name) alongside server= is harmless; any
            # other classic argument conflicts with the ServerConfig.
            conflicting = [
                name
                for name, value, defaults in (
                    ("policy", policy, (None,)),
                    ("cost", cost, (None,)),
                    ("arrays", arrays, (None, 1)),
                    ("pipeline", pipeline, (None, False)),
                    ("network_name", network_name, (None, "capsnet")),
                )
                if value not in defaults
            ]
            if conflicting:
                raise ConfigError(
                    "pass either a ServerConfig or the classic arguments,"
                    f" not both (got server= plus {', '.join(conflicting)})"
                )
        else:
            if cost is None:
                raise ConfigError("a cost model is required")
            server = ServerConfig(
                cost=cost,
                batching=policy if policy is not None else BatchPolicy(),
                arrays=arrays if arrays is not None else 1,
                pipeline=bool(pipeline),
                network_name=network_name if network_name is not None else "capsnet",
            )
        self.server = server
        if tenants is None:
            if trace is None:
                raise ConfigError("a trace (or a tenants list) is required")
            tenants = [TenantSpec(name=server.network_name, trace=trace)]
        elif trace is not None:
            raise ConfigError("pass either a trace or a tenants list, not both")
        elif not tenants:
            raise ConfigError("the tenants list needs at least one tenant")
        self.tenant_specs = list(tenants)
        self.multi_tenant = len(self.tenant_specs) > 1

        # Legacy attribute surface.
        self.trace = self.tenant_specs[0].trace
        self.policy = server.batching
        self.cost = server.cost
        self.arrays = server.arrays
        self.images = None if images is None else np.asarray(images)
        self.execute = execute
        self.pipeline = server.pipeline
        self.network_name = server.network_name

        all_costs = [server.cost] + [
            spec.cost for spec in self.tenant_specs if spec.cost is not None
        ]
        if execute:
            if self.multi_tenant:
                raise ConfigError("execute mode is single-tenant only")
            if server.array_configs is not None:
                raise ConfigError("execute mode needs a homogeneous array pool")
            if not isinstance(self.cost, ScheduledBatchCost):
                raise ConfigError("execute mode needs the scheduled (exact) cost model")
            if self.images is None:
                raise ConfigError("execute mode needs per-request images")
        if self.pipeline:
            for model in all_costs:
                if not getattr(model, "pipeline", False):
                    raise ConfigError(
                        "pipeline mode needs a cost model built with pipeline=True"
                    )
        if self.images is not None and len(self.images) != self.trace.count:
            raise ShapeError(
                f"{len(self.images)} images for {self.trace.count} requests"
            )
        # Per-configuration cost models persist across run() calls (pure
        # memoization; probe results additionally persist process-wide in
        # the costs module's probe cache).
        self._bank = CostBank()
        #: Observability tracer threaded into the core on recorded runs
        #: (:mod:`repro.obs`); the null default costs nothing.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(
        self,
        with_crosscheck: bool = False,
        record_requests: bool = True,
        latency_bin_us: float = DEFAULT_LATENCY_BIN_US,
        sink=None,
    ) -> ServingReport:
        """Run every tenant's trace to completion and return the report.

        ``record_requests=False`` selects the streaming fast path: the
        same policy decisions and exact counts, but per-request latency
        folds into fixed-resolution histograms (``latency_bin_us`` wide)
        instead of a record table — O(1) memory and roughly an order of
        magnitude faster on long traces.  Percentiles are then reported
        at histogram resolution; ``execute`` mode (which must return
        per-request predictions) requires the recording path.

        ``sink`` selects the result path explicitly — a
        :class:`~repro.serve.sinks.RecordingSink` runs the recorded loop,
        a :class:`~repro.serve.sinks.StreamingSink` the streaming one
        (with the sink's own histogram configuration); the classic
        ``record_requests``/``latency_bin_us`` flags are ignored then and
        remain as the shim over the two standard sinks.

        Tracing (:mod:`repro.obs`) requires the recording path: the
        streaming loop inlines the policies and bypasses the
        instrumented core entirely — that bypass is what makes it fast —
        so an active tracer on a streaming run raises
        :class:`~repro.errors.ConfigError` rather than silently
        recording nothing.
        """
        if sink is not None:
            if isinstance(sink, RecordingSink):
                return self._run_recorded(with_crosscheck, sink=sink)
            if isinstance(sink, StreamingSink):
                if self.execute:
                    raise ConfigError("execute mode needs a RecordingSink")
                self._check_tracer_path()
                self._check_fault_path()
                return self._run_streaming(
                    with_crosscheck, sink.stats.bin_us, sink=sink
                )
            raise ConfigError(
                "sink must be a RecordingSink or a StreamingSink"
            )
        if record_requests:
            return self._run_recorded(with_crosscheck)
        if self.execute:
            raise ConfigError("execute mode needs record_requests=True")
        self._check_tracer_path()
        self._check_fault_path()
        return self._run_streaming(with_crosscheck, latency_bin_us)

    def _check_tracer_path(self) -> None:
        """Reject the tracer + streaming-fast-path combination."""
        if self.tracer.enabled:
            raise ConfigError(
                "tracing requires the recording path: drop --fast /"
                " record_requests=False (or the StreamingSink) when a"
                " tracer is attached"
            )

    def _check_fault_path(self) -> None:
        """Reject the fault-plan + streaming-fast-path combination.

        The streaming loop inlines the policies and bypasses the
        instrumented core entirely — the fault injector, retry requeues,
        and quarantine bookkeeping all live in that core — so a fault
        plan on a streaming run raises rather than silently not
        injecting anything.
        """
        plan = self.server.fault_plan
        if plan is not None and not plan.empty:
            raise ConfigError(
                "fault injection requires the recording path: drop"
                " --fast / record_requests=False (or the StreamingSink)"
                " when a fault plan is set"
            )
        integrity = getattr(self.server, "integrity", None)
        if integrity is not None and integrity.enabled:
            raise ConfigError(
                "integrity checking requires the recording path: drop"
                " --fast / record_requests=False (or the StreamingSink)"
                " when an integrity mode is armed"
            )

    def _run_recorded(
        self, with_crosscheck: bool, sink: RecordingSink | None = None
    ) -> ServingReport:
        """The full-record event loop (the PR 4 behavior, bit-identical).

        The policy work — admission, batch formation, weighted-fair
        tenant selection, dispatch, warm-aware costing — lives in the
        shared :class:`~repro.serve.core.ServingCore`; this loop owns
        only what is inherently discrete-event: the heap, the virtual
        clock, the idle-time integral, and the sink reporting.
        """
        wall_start = time.perf_counter()
        if sink is None:
            sink = RecordingSink()
        core = ServingCore(
            self.server, self.tenant_specs, bank=self._bank, tracer=self.tracer
        )
        tracer = core.tracer
        tenants = core.tenants
        pool = core.pool

        # Global arrival pre-pass: one sink record per request across all
        # tenants, plus the arrival events.
        req_tenant: list[int] = []
        req_deadline: list[float] = []
        events: list[tuple[float, int, int, int]] = []
        seq = 0
        for tenant in tenants:
            deadlines = tenant.trace.deadlines_us
            for local, arrival in enumerate(tenant.trace.times_us):
                # A finite recorded deadline wins; requests without their
                # own get the configured relative SLA (if any).
                if deadlines is not None and math.isfinite(deadlines[local]):
                    deadline = float(deadlines[local])
                elif tenant.deadline_us is not None:
                    deadline = float(arrival) + tenant.deadline_us
                else:
                    deadline = math.inf
                index = sink.on_arrival(
                    float(arrival), deadline_us=deadline, tenant=tenant.name
                )
                req_tenant.append(tenant.order)
                req_deadline.append(deadline)
                tenant.global_indices.append(index)
                events.append((float(arrival), _ARRIVE, seq, index))
                seq += 1
        heapq.heapify(events)
        scheduled_timeouts: set[float] = set()
        total = len(req_tenant)

        running: dict[int, PlacedBatch] = {}  # batch index -> in flight
        predictions = np.full(total, -1, dtype=np.int64) if self.execute else None

        pricer = None
        if self.execute:
            images = self.images

            def pricer(model, members, warm, prev_size):
                indices = [member.index for member in members]
                cycles, result = model.execute(
                    images[indices], warm=warm, prev_size=prev_size
                )
                predictions[indices] = result.predictions
                return cycles

        # Integral of the any-array-idle indicator, for the batching vs
        # queueing attribution; sampled per request at arrival.
        idle_accum = 0.0
        last_time = 0.0
        idle_at_arrival = np.zeros(total, dtype=np.float64)
        makespan = 0.0

        while events:
            now, kind, _, payload = heapq.heappop(events)
            if pool.has_idle():
                idle_accum += now - last_time
            last_time = now

            if kind == _ARRIVE:
                idle_at_arrival[payload] = idle_accum
                tenant = tenants[req_tenant[payload]]
                request = QueuedRequest(
                    index=payload,
                    arrival_us=now,
                    deadline_us=req_deadline[payload],
                )
                if not core.offer(tenant, request, now):
                    sink.on_shed(payload)
            elif kind == _DONE:
                placed = running.pop(payload)
                core.release(placed.array, now)
                if placed.corrupt is not None:
                    # Undetected corruption: the batch completes and its
                    # members are served wrong answers — counted, traced.
                    core.served_corrupt(placed, now)
                if tracer.enabled:
                    tracer.batch_completed(now, placed)
                makespan = max(makespan, now)
            elif kind == _CRASH:
                # The doomed batch surfaces as a crash at its detection
                # instant; the core contains the damage to this batch.
                placed = running.pop(payload)
                retries, failed, quarantined = core.fail_batch(placed, now)
                for request in failed:
                    sink.on_failed(request.index)
                tenant_order = placed.tenant.order
                for at_us, group in group_requeues(retries):
                    heapq.heappush(
                        events, (at_us, _REQUEUE, seq, (tenant_order, group))
                    )
                    seq += 1
                if quarantined:
                    heapq.heappush(
                        events,
                        (now + core.retry.recovery_us, _RECOVER, seq, placed.array),
                    )
                    seq += 1
                makespan = max(makespan, now)
            elif kind == _REQUEUE:
                tenant_order, requests = payload
                core.requeue(tenants[tenant_order], list(requests), now)
            elif kind == _RECOVER:
                core.recover(payload, now)
            elif tracer.enabled:
                # _TIMEOUT carries no state (readiness is re-evaluated
                # below); it only surfaces as an observability event.
                tracer.coalescing_timeout(now)

            while pool.has_idle():
                placed = core.form_and_place(now, pricer=pricer)
                if placed is None:
                    break
                members = placed.members
                detected = core.detects_corruption(placed)
                batch_index = sink.on_batch(
                    tenant=placed.tenant.name,
                    array=placed.array,
                    size=placed.size,
                    dispatch_us=placed.dispatch_us,
                    done_us=placed.done_us,
                    cycles=placed.cycles,
                    warm=placed.warm,
                    drain_saved_us=placed.drain_saved_us,
                    member_indices=[m.index for m in members],
                    member_arrivals=[m.arrival_us for m in members],
                    member_deadlines=[m.deadline_us for m in members],
                    member_idle_snaps=[idle_at_arrival[m.index] for m in members],
                    idle_accum_us=idle_accum,
                    crashed=placed.fault or detected,
                )
                running[batch_index] = placed
                if placed.fault:
                    detect = placed.dispatch_us + core.fault_plan.detect_delay_us(
                        placed.duration_us
                    )
                    heapq.heappush(events, (detect, _CRASH, seq, batch_index))
                elif detected:
                    # The checksum layer catches the corruption when the
                    # batch finishes computing — the array was busy for the
                    # full span, then the batch fails like a crash.
                    heapq.heappush(
                        events, (placed.done_us, _CRASH, seq, batch_index)
                    )
                else:
                    heapq.heappush(
                        events, (placed.done_us, _DONE, seq, batch_index)
                    )
                seq += 1

            if pool.has_idle():
                for deadline in core.pending_timeouts(now):
                    if deadline not in scheduled_timeouts:
                        scheduled_timeouts.add(deadline)
                        heapq.heappush(
                            events, (max(deadline, now), _TIMEOUT, seq, 0)
                        )
                        seq += 1

        return self._finish_report(
            tenants=tenants,
            pool=pool,
            makespan=makespan,
            wall_seconds=time.perf_counter() - wall_start,
            with_crosscheck=with_crosscheck,
            batch_sizes={batch.size for batch in sink.batches},
            requests=sink.requests,
            batches=sink.batches,
            predictions=predictions,
            tenant_entries=(
                _tenant_summaries(tenants, sink.requests)
                if self.multi_tenant
                else None
            ),
            faults=(
                core.fault_stats.to_dict() if core.injector is not None else None
            ),
        )

    def _finish_report(
        self,
        *,
        tenants: list[_Tenant],
        pool: ArrayPool,
        makespan: float,
        wall_seconds: float,
        with_crosscheck: bool,
        batch_sizes,
        requests: list[RequestRecord] | None = None,
        batches: list[BatchRecord] | None = None,
        predictions: np.ndarray | None = None,
        tenant_entries: list[dict] | None = None,
        streaming: StreamingStats | None = None,
        faults: dict | None = None,
    ) -> ServingReport:
        """Crosscheck gating + report assembly, shared by both paths."""
        server = self.server
        check = None
        if (
            with_crosscheck
            and not self.multi_tenant
            and server.array_configs is None
            and isinstance(self.cost, ScheduledBatchCost)
            and self.cost.accounting == "overlapped"  # the schedule perf models
        ):
            # Pure CapsNets check against the closed-form perf model; other
            # zoo entries (residual variants, baselines) check against
            # their compiled-stream pricing instead.
            pure_capsnet = (
                self.cost.qnet is not None
                and "res_w" not in self.cost.compiled.params
            )
            analytic = AnalyticBatchCost(
                network=(
                    self.cost.qnet.config if pure_capsnet else self.cost.compiled
                ),
                accel_config=self.cost.config,
            )
            sizes = tuple(sorted(batch_sizes))
            check = {
                str(size): values
                for size, values in crosscheck(self.cost, analytic, sizes).items()
            }
        return ServingReport(
            network=self.network_name,
            trace_name=(
                self.trace.name
                if not self.multi_tenant
                else "+".join(f"{t.name}:{t.trace.name}" for t in tenants)
            ),
            offered_rps=(
                self.trace.offered_rps
                if not self.multi_tenant
                else sum(t.trace.offered_rps for t in tenants)
            ),
            policy=server.policy_json(),
            arrays=server.arrays,
            clock_mhz=self.cost.config.clock_mhz,
            accounting=getattr(self.cost, "accounting", "overlapped"),
            pipeline=self.pipeline,
            requests=requests if requests is not None else [],
            batches=batches if batches is not None else [],
            array_stats=[
                {
                    "array": stat.array,
                    "busy_us": stat.busy_us,
                    "batches": stat.batches,
                    "requests": stat.requests,
                    "warm_batches": stat.warm_batches,
                    "utilization": stat.utilization(makespan),
                }
                for stat in pool.stats
            ],
            makespan_us=makespan,
            wall_seconds=wall_seconds,
            predictions=predictions,
            crosscheck=check,
            tenants=tenant_entries,
            streaming=streaming,
            faults=faults,
        )

    def _run_streaming(
        self,
        with_crosscheck: bool,
        latency_bin_us: float,
        sink: StreamingSink | None = None,
    ) -> ServingReport:
        """The O(1)-memory fast path (``record_requests=False``).

        Drives the same policy protocols as :meth:`_run_recorded` — the
        event order, admission/batching/dispatch decisions, and counts
        are identical — but folds every served request into streaming
        histograms.  Three structural optimizations carry the speedup:
        arrivals are consumed from the sorted trace arrays instead of
        being heaped (the heap holds only completions and timeouts),
        runs of arrivals while every array is busy are drained in bulk
        (single-tenant admit-all — no per-arrival work exists then), and
        the classic :class:`~repro.serve.batcher.BatchPolicy` readiness
        / take rule is inlined, so the hot loop allocates no per-request
        policy objects.
        """
        wall_start = time.perf_counter()
        server = self.server
        pool = ArrayPool(server.arrays, configs=server.array_configs)
        dispatch = copy.deepcopy(server.dispatch)
        bank = self._bank
        tenants = [
            _Tenant(spec, order, server)
            for order, spec in enumerate(self.tenant_specs)
        ]
        multi = self.multi_tenant
        only = tenants[0]
        pipeline_mode = self.pipeline

        # Merged arrival stream, ordered like the recorded path's heap:
        # by time, ties in tenant-then-local order (stable sort over the
        # tenant-ordered concatenation).
        times_parts, tenant_parts, deadline_parts = [], [], []
        for tenant in tenants:
            times = tenant.trace.times_us
            recorded = tenant.trace.deadlines_us
            own = (
                np.where(np.isfinite(recorded), recorded, np.inf)
                if recorded is not None
                else np.full(times.shape, np.inf)
            )
            if tenant.deadline_us is not None:
                own = np.where(np.isfinite(own), own, times + tenant.deadline_us)
            times_parts.append(times)
            tenant_parts.append(np.full(times.shape, tenant.order, dtype=np.int64))
            deadline_parts.append(own)
        merged_times = np.concatenate(times_parts)
        order = np.argsort(merged_times, kind="stable")
        merged_deadlines = np.concatenate(deadline_parts)[order]
        has_deadlines = bool(np.isfinite(merged_deadlines).any())
        times_list = merged_times[order].tolist()
        deadlines_list = merged_deadlines.tolist()
        tenant_list = np.concatenate(tenant_parts)[order].tolist() if multi else None
        total = len(times_list)

        if sink is None:
            sink = StreamingSink(bin_us=latency_bin_us, pipeline=pipeline_mode)
        stats = sink.stats
        tenant_streams = (
            [
                StreamingStats(
                    bin_us=stats.bin_us,
                    pipeline=pipeline_mode,
                    kind=stats.kind,
                    subbins=stats.subbins,
                )
                for _ in tenants
            ]
            if multi
            else None
        )
        # Single-tenant hot path: per-member inputs (arrival time, idle
        # snapshot) buffer into flat lists alongside one per-batch meta
        # tuple, and the whole latency decomposition — wait, batching vs
        # queueing split, compute — is computed *vectorized* at flush
        # time with the exact arithmetic of the recorded path.
        hist_total = stats.components["total"]
        hist_queueing = stats.components["queueing"]
        hist_batching = stats.components["batching"]
        hist_compute = stats.components["compute"]
        hist_drain = stats.components.get("drain_saved")
        arr_buf: list[float] = []
        snap_buf: list[float] = []
        meta_buf: list[tuple[float, float, float, float, int]] = []

        def flush_buffers() -> None:
            if not meta_buf:
                return
            arrivals = np.asarray(arr_buf)
            snaps = np.asarray(snap_buf)
            meta = np.asarray(meta_buf)
            counts = meta[:, 4].astype(np.int64)
            nows = np.repeat(meta[:, 0], counts)
            dones = np.repeat(meta[:, 1], counts)
            idles = np.repeat(meta[:, 2], counts)
            wait = nows - arrivals
            batching = idles - snaps
            np.clip(batching, 0.0, wait, out=batching)
            # copy=False: every array below is a temporary this flush owns.
            hist_total.add_array(dones - arrivals, copy=False)
            hist_queueing.add_array(wait - batching, copy=False)
            hist_batching.add_array(batching, copy=False)
            hist_compute.add_array(dones - nows, copy=False)
            if hist_drain is not None:
                hist_drain.add_array(np.repeat(meta[:, 3], counts), copy=False)
            arr_buf.clear()
            snap_buf.clear()
            meta_buf.clear()

        # Inline fast path: the exact classic triple components the loop
        # can replicate without protocol calls.  ``type is`` (not
        # isinstance) so subclasses keep the generic protocol path.  The
        # inline queue is three parallel lists behind a head cursor, so
        # bulk arrival drains and batch takes are C-speed list slices.
        inline = (
            not multi
            and type(only.admission) is AdmitAll
            and type(only.batching) is BatchPolicy
        )
        q_arr: list[float] = []
        q_dl: list[float] = []
        q_snap: list[float] = []
        q_head = 0
        if inline:
            max_batch = only.batching.max_batch
            max_wait = only.batching.max_wait_us
        fast_dispatch = type(dispatch) is LeastRecentDispatch
        # Backlog-aware dispatch (considers_busy) may place a batch on a
        # busy array; the batch *stacks* behind the in-flight work and the
        # array only rejoins the idle set when its last batch completes.
        considers_busy = bool(getattr(dispatch, "considers_busy", False))
        inflight = [0] * pool.count if considers_busy else None
        snapshots: dict[int, float] = {}
        probe = _DurationProbe(bank, pool, pipeline_mode, inflight=inflight)
        # Hot-loop aliases: the pool's bookkeeping is inlined per batch
        # (claim/charge/release are three attribute updates each), and on
        # a homogeneous non-pipelined pool the per-size duration is a
        # one-entry dict hit instead of two cost-model calls.
        pool_stats = pool.stats
        last_release = pool._last_release_us
        last_batch_size = pool._last_batch_size
        last_cost = pool._last_cost
        busy_until = pool._busy_until_us
        homogeneous = pool.configs is None
        duration_cache: dict = {}  # size (single-tenant) or (order, size)
        batch_sizes_hist = stats.batch_sizes

        events: list[tuple[float, int, int, int]] = []  # completions + timeouts
        seq = 0
        scheduled_timeouts: set[float] = set()
        idle_set = pool._idle  # stable set object, mutated in place
        idle_accum = 0.0
        last_time = 0.0
        makespan = 0.0
        inf = math.inf
        ai = 0
        next_arrival = times_list[0] if total else inf
        # Hot-loop locals: scalar counters fold back into the stats
        # objects after the loop; per-array accumulators replace the
        # ArrayStats attribute updates; bound builtins skip the global
        # lookups the loop would otherwise repeat ~10^5 times.
        heappush = heapq.heappush
        heappop = heapq.heappop
        bisect_left = bisect.bisect_left
        bisect_right = bisect.bisect_right
        offered = 0
        n_batches = 0
        n_warm = 0
        drain_total = 0.0
        with_deadline = 0
        misses = 0
        busy_acc = [0.0] * pool.count
        batches_acc = [0] * pool.count
        requests_acc = [0] * pool.count
        warm_acc = [0] * pool.count

        while ai < total or events:
            # ---- next event: merged completion/timeout heap vs arrivals --
            if events:
                top = events[0]
                top_time = top[0]
                take_arrival = (
                    next_arrival < top_time
                    or (next_arrival == top_time and top[1] == _TIMEOUT)
                )
            else:
                top_time = inf
                take_arrival = True
            if take_arrival:
                if inline and not idle_set:
                    # Bulk drain: while every array is busy, an admitted
                    # arrival only appends to the queue — no integral
                    # movement, no dispatch, no timeout scheduling — so
                    # the whole run up to the next completion/timeout
                    # collapses into one extend.
                    if events and top[1] == _TIMEOUT:
                        cut = bisect_right(times_list, top_time, ai)
                    else:
                        cut = bisect_left(times_list, top_time, ai)
                    if cut > ai:
                        count = cut - ai
                        q_arr.extend(times_list[ai:cut])
                        if has_deadlines:
                            q_dl.extend(deadlines_list[ai:cut])
                        q_snap.extend([idle_accum] * count)
                        offered += count
                        last_time = times_list[cut - 1]
                        ai = cut
                        next_arrival = times_list[ai] if ai < total else inf
                        continue
                now = next_arrival
                kind = _ARRIVE
                index = ai
                ai += 1
                next_arrival = times_list[ai] if ai < total else inf
            else:
                now, kind, _, payload = heappop(events)

            if idle_set:
                idle_accum += now - last_time
            last_time = now

            if kind == _ARRIVE:
                if inline:
                    q_arr.append(now)
                    if has_deadlines:
                        q_dl.append(deadlines_list[index])
                    q_snap.append(idle_accum)
                    offered += 1
                else:
                    tenant = tenants[tenant_list[index]] if multi else only
                    tstats = tenant_streams[tenant.order] if multi else None
                    offered += 1
                    if tstats is not None:
                        tstats.offered += 1
                    deadline = deadlines_list[index]
                    request = QueuedRequest(
                        index=index, arrival_us=now, deadline_us=deadline
                    )
                    if type(tenant.admission) is AdmitAll or tenant.admission.admit(
                        request, now, tenant.queue, pool
                    ):
                        tenant.queue.append(request)
                        snapshots[index] = idle_accum
                    else:
                        stats.shed += 1
                        if tstats is not None:
                            tstats.shed += 1
            elif kind == _DONE:
                if considers_busy and inflight[payload] > 1:
                    inflight[payload] -= 1
                else:
                    if considers_busy:
                        inflight[payload] = 0
                    idle_set.add(payload)
                    last_release[payload] = now
                if now > makespan:
                    makespan = now
            else:  # _TIMEOUT: readiness re-evaluated below; prune the set
                if len(scheduled_timeouts) > 4096:
                    scheduled_timeouts = {
                        d for d in scheduled_timeouts if d > now
                    }

            # ---- dispatch loop -----------------------------------------
            while idle_set:
                if inline:
                    qlen = len(q_arr) - q_head
                    if not qlen or (
                        qlen < max_batch and now < q_arr[q_head] + max_wait
                    ):
                        break
                    size = qlen if qlen < max_batch else max_batch
                    q_next = q_head + size
                    member_arrivals = q_arr[q_head:q_next]
                    member_deadlines = (
                        q_dl[q_head:q_next] if has_deadlines else None
                    )
                    member_snaps = q_snap[q_head:q_next]
                    q_head = q_next
                    # Amortized-O(1) compaction: only drop the consumed
                    # prefix once it is at least half the list, so a deep
                    # backlog never pays repeated long-tail copies.
                    if q_head >= 16384 and 2 * q_head >= len(q_arr):
                        del q_arr[:q_head]
                        del q_snap[:q_head]
                        if has_deadlines:
                            del q_dl[:q_head]
                        q_head = 0
                    tenant = only
                    tstats = None
                else:
                    ready = [
                        tenant
                        for tenant in tenants
                        if len(tenant.queue)
                        and tenant.batching.ready(tenant.queue, now)
                    ]
                    if not ready:
                        break
                    tenant = (
                        min(ready, key=lambda t: (t.served / t.weight, t.order))
                        if multi
                        else ready[0]
                    )
                    tstats = tenant_streams[tenant.order] if multi else None
                    taken = tenant.batching.take(tenant.queue, now)
                    size = len(taken)
                    member_arrivals = [m.arrival_us for m in taken]
                    member_deadlines = [m.deadline_us for m in taken]
                    member_snaps = [snapshots.pop(m.index) for m in taken]
                stacked = False
                start = now
                if fast_dispatch:
                    if pipeline_mode:
                        warm_ids = [
                            i for i in idle_set if last_release[i] == now
                        ]
                        array = min(warm_ids or idle_set, key=pool.lru_key)
                    elif len(idle_set) == 1:
                        array = next(iter(idle_set))
                    else:
                        array = min(idle_set, key=pool.lru_key)
                    idle_set.remove(array)
                else:
                    probe.rebind(tenant.cost, size, now)
                    array = dispatch.select(
                        DispatchContext(
                            pool=pool,
                            now_us=now,
                            batch_size=size,
                            pipeline=pipeline_mode,
                            duration_us=probe,
                            queue_delay_us=(
                                probe.queue_delay if considers_busy else None
                            ),
                        )
                    )
                    if considers_busy:
                        if array in idle_set:
                            idle_set.remove(array)
                        else:
                            # Stacked behind the array's in-flight batch:
                            # starts at its predecessor's completion.
                            stacked = True
                            start = busy_until[array]
                        inflight[array] += 1
                    else:
                        idle_set.remove(array)
                drain_saved = 0.0
                if not pipeline_mode and homogeneous:
                    model = tenant.cost
                    warm = False
                    key = size if not multi else (tenant.order, size)
                    cached = duration_cache.get(key)
                    if cached is None:
                        cached = model.config.cycles_to_us(model.batch_cycles(size))
                        duration_cache[key] = cached
                    duration = cached
                else:
                    warm = pipeline_mode and (stacked or last_release[array] == now)
                    prev_size = last_batch_size[array]
                    prev_cost = last_cost[array]
                    model = bank.resolve(tenant.cost, pool.config_for(array))
                    if warm:
                        cycles = model.warm_batch_cycles(
                            size, prev_size, prev_cost=prev_cost
                        )
                        drain_saved = model.config.cycles_to_us(
                            model.drain_saved_cycles(
                                size, prev_size, prev_cost=prev_cost
                            )
                        )
                    else:
                        cycles = model.batch_cycles(size)
                    duration = model.config.cycles_to_us(cycles)
                done = start + duration
                # Inlined pool.charge (folded into pool.stats after the loop)
                busy_acc[array] += duration
                batches_acc[array] += 1
                requests_acc[array] += size
                if warm:
                    warm_acc[array] += 1
                last_batch_size[array] = size
                last_cost[array] = model
                busy_until[array] = done
                if tstats is None:
                    # Inlined stats.add_batch (folded back after the loop)
                    n_batches += 1
                    batch_sizes_hist[size] = batch_sizes_hist.get(size, 0) + 1
                    if warm:
                        n_warm += 1
                        drain_total += drain_saved
                    arr_buf.extend(member_arrivals)
                    snap_buf.extend(member_snaps)
                    meta_buf.append((start, done, idle_accum, drain_saved, size))
                    if member_deadlines is not None:
                        for deadline in member_deadlines:
                            if deadline != inf:
                                with_deadline += 1
                                if done > deadline:
                                    misses += 1
                    if len(arr_buf) >= 32768:
                        flush_buffers()
                else:
                    compute = done - start  # the recorded done-dispatch float
                    stats.add_batch(size, warm, drain_saved)
                    tstats.add_batch(size, warm, drain_saved)
                    for arrival, deadline, snapshot in zip(
                        member_arrivals, member_deadlines, member_snaps
                    ):
                        wait = start - arrival
                        batching = idle_accum - snapshot
                        if batching < 0.0:
                            batching = 0.0
                        elif batching > wait:
                            batching = wait
                        latency = done - arrival
                        stats.add_request(
                            latency, wait - batching, batching, compute, drain_saved
                        )
                        tstats.add_request(
                            latency, wait - batching, batching, compute, drain_saved
                        )
                        if deadline != inf:
                            stats.served_with_deadline += 1
                            missed = done > deadline
                            if missed:
                                stats.deadline_misses += 1
                            tstats.served_with_deadline += 1
                            if missed:
                                tstats.deadline_misses += 1
                tenant.served += size
                heappush(events, (done, _DONE, seq, array))
                seq += 1

            # ---- coalescing timeouts -----------------------------------
            if idle_set:
                if inline:
                    if len(q_arr) > q_head:  # non-empty and not ready
                        deadline = q_arr[q_head] + max_wait
                        if deadline not in scheduled_timeouts:
                            scheduled_timeouts.add(deadline)
                            heappush(
                                events,
                                (
                                    deadline if deadline > now else now,
                                    _TIMEOUT,
                                    seq,
                                    0,
                                ),
                            )
                            seq += 1
                else:
                    for tenant in tenants:
                        if len(tenant.queue) and not tenant.batching.ready(
                            tenant.queue, now
                        ):
                            deadline = tenant.batching.next_deadline_us(
                                tenant.queue, now
                            )
                            if (
                                deadline is not None
                                and deadline not in scheduled_timeouts
                            ):
                                scheduled_timeouts.add(deadline)
                                heappush(
                                    events,
                                    (max(deadline, now), _TIMEOUT, seq, 0),
                                )
                                seq += 1

        # Fold the hot-loop locals back into the aggregates.
        stats.offered += offered
        stats.batches += n_batches
        stats.warm_batches += n_warm
        stats.drain_saved_us += drain_total
        stats.served_with_deadline += with_deadline
        stats.deadline_misses += misses
        for array, stat in enumerate(pool_stats):
            stat.busy_us += busy_acc[array]
            stat.batches += batches_acc[array]
            stat.requests += requests_acc[array]
            stat.warm_batches += warm_acc[array]
        flush_buffers()
        tenant_entries = None
        if multi:
            total_served = stats.completed
            tenant_entries = [
                tenant_summary_from_streaming(
                    tenant.name, tenant.weight, tstream, total_served
                )
                for tenant, tstream in zip(tenants, tenant_streams)
            ]
        return self._finish_report(
            tenants=tenants,
            pool=pool,
            makespan=makespan,
            wall_seconds=time.perf_counter() - wall_start,
            with_crosscheck=with_crosscheck,
            batch_sizes=set(stats.batch_sizes),
            tenant_entries=tenant_entries,
            streaming=stats,
        )


def _tenant_summaries(
    tenants: list[_Tenant], requests: list[RequestRecord]
) -> list[dict]:
    """Per-tenant request/shed/latency breakdown for the report."""
    total_served = sum(
        1 for record in requests if not record.shed
    )
    summaries = []
    for tenant in tenants:
        records = [requests[index] for index in tenant.global_indices]
        served = [record for record in records if not record.shed]
        summaries.append(
            {
                "tenant": tenant.name,
                "weight": tenant.weight,
                "offered": len(records),
                "served": len(served),
                "shed": len(records) - len(served),
                "served_share": (
                    len(served) / total_served if total_served else 0.0
                ),
                "deadline_misses": sum(
                    1 for record in records if record.missed_deadline
                ),
                "latency_us": percentile_summary(
                    np.array([record.latency_us for record in served])
                ),
            }
        )
    return summaries
