"""Multi-array dispatcher: shards formed batches across accelerator arrays.

The serving simulator models ``N`` identical CapsAcc arrays (the
multi-array scaling axis of the ROADMAP).  The pool hands an idle array to
each formed batch — lowest array id first, which makes runs deterministic
— and keeps per-array busy-time / batch / request counters for the
utilization report.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class ArrayStats:
    """Utilization counters for one simulated array."""

    array: int
    busy_us: float = 0.0
    batches: int = 0
    requests: int = 0

    def utilization(self, makespan_us: float) -> float:
        """Fraction of the simulated span this array spent computing."""
        if makespan_us <= 0:
            return 0.0
        return self.busy_us / makespan_us


@dataclass
class ArrayPool:
    """Idle/busy bookkeeping for ``count`` identical accelerator arrays."""

    count: int
    stats: list[ArrayStats] = field(init=False)
    _idle: list[int] = field(init=False)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError("array count must be positive")
        self.stats = [ArrayStats(array=i) for i in range(self.count)]
        self._idle = list(range(self.count))
        heapq.heapify(self._idle)

    @property
    def idle_count(self) -> int:
        """Number of currently idle arrays."""
        return len(self._idle)

    def has_idle(self) -> bool:
        """Whether any array can accept a batch."""
        return bool(self._idle)

    def acquire(self, batch_size: int, duration_us: float) -> int:
        """Claim the lowest-id idle array for a batch; returns the array id."""
        if not self._idle:
            raise ConfigError("acquire() with no idle array")
        array = heapq.heappop(self._idle)
        stat = self.stats[array]
        stat.busy_us += duration_us
        stat.batches += 1
        stat.requests += batch_size
        return array

    def release(self, array: int) -> None:
        """Return an array to the idle pool when its batch completes."""
        heapq.heappush(self._idle, array)
