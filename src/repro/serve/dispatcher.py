"""Multi-array dispatcher: shards formed batches across accelerator arrays.

The serving simulator models ``N`` identical CapsAcc arrays (the
multi-array scaling axis of the ROADMAP).  The pool hands an idle array to
each formed batch — lowest array id first, which makes runs deterministic
— and keeps per-array busy-time / batch / request counters for the
utilization report.

For stream pipelining the pool also tracks per-array warm/cold state:
an array released at exactly the instant a new batch dispatches never
drained (the next batch's conv1 tiles were prestaging under the previous
batch's routing tail), so the dispatcher can both *detect* a warm
hand-off and *prefer* the just-freed array over other idle arrays when
asked to (keeping one array hot beats spreading back-to-back batches
across cold arrays).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class ArrayStats:
    """Utilization counters for one simulated array."""

    array: int
    busy_us: float = 0.0
    batches: int = 0
    requests: int = 0
    #: Batches that arrived back to back (charged the pipelined warm cost).
    warm_batches: int = 0

    def utilization(self, makespan_us: float) -> float:
        """Fraction of the simulated span this array spent computing."""
        if makespan_us <= 0:
            return 0.0
        return self.busy_us / makespan_us


@dataclass
class ArrayPool:
    """Idle/busy bookkeeping for ``count`` identical accelerator arrays."""

    count: int
    stats: list[ArrayStats] = field(init=False)
    _idle: list[int] = field(init=False)
    _last_release_us: list[float | None] = field(init=False)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError("array count must be positive")
        self.stats = [ArrayStats(array=i) for i in range(self.count)]
        self._idle = list(range(self.count))
        heapq.heapify(self._idle)
        self._last_release_us = [None] * self.count

    @property
    def idle_count(self) -> int:
        """Number of currently idle arrays."""
        return len(self._idle)

    def has_idle(self) -> bool:
        """Whether any array can accept a batch."""
        return bool(self._idle)

    def is_warm(self, array: int, now_us: float) -> bool:
        """Whether dispatching to ``array`` at ``now_us`` is back to back."""
        return self._last_release_us[array] == now_us

    def select(self, now_us: float, prefer_warm: bool = False) -> tuple[int, bool]:
        """Claim an idle array for a batch dispatched at ``now_us``.

        Returns ``(array, warm)``.  ``warm`` is true when the array was
        released at exactly ``now_us`` — the batch follows the previous
        one with no drain.  With ``prefer_warm`` the lowest-id *warm*
        idle array wins over colder lower-id arrays.
        """
        if not self._idle:
            raise ConfigError("select() with no idle array")
        array = None
        if prefer_warm:
            warm_ids = [i for i in self._idle if self.is_warm(i, now_us)]
            if warm_ids:
                array = min(warm_ids)
                self._idle.remove(array)
                heapq.heapify(self._idle)
        if array is None:
            array = heapq.heappop(self._idle)
        return array, self.is_warm(array, now_us)

    def charge(self, array: int, batch_size: int, duration_us: float, warm: bool = False) -> None:
        """Account one dispatched batch against a claimed array."""
        stat = self.stats[array]
        stat.busy_us += duration_us
        stat.batches += 1
        stat.requests += batch_size
        if warm:
            stat.warm_batches += 1

    def release(self, array: int, now_us: float | None = None) -> None:
        """Return an array to the idle pool when its batch completes."""
        heapq.heappush(self._idle, array)
        self._last_release_us[array] = now_us
