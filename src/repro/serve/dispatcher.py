"""Array pool + dispatch policies: placing formed batches onto arrays.

The pool models ``N`` CapsAcc arrays — identical by default, or
*heterogeneous* when constructed with per-array
:class:`~repro.hw.config.AcceleratorConfig` objects (different array
sizes serve the same queue; the simulator prices each batch with a cost
model memoized per distinct configuration).  The pool keeps idle/busy
bookkeeping, per-array warm/cold state for stream pipelining (an array
released at exactly the dispatch instant never drained), the size of the
last batch each array ran (the ``(prev_size, size)`` warm-cost key), and
utilization counters.

**Which** idle array a batch claims is a :class:`DispatchPolicy`
decision, made through a :class:`DispatchContext` view:

* :class:`LeastRecentDispatch` — the default: the longest-idle array
  wins (ties by id), preferring a warm array in pipelined mode.  Idle
  ties used to go to the lowest id unconditionally, starving high-id
  arrays of work at light load; least-recently-released rotates them.
* :class:`RoundRobinDispatch` — strict rotation over array ids.
* :class:`PreferWarmDispatch` — warm array first even outside pipelined
  mode, else least-recently-released.
* :class:`GreedyWhenIdleDispatch` — the idle array with the smallest
  predicted batch duration wins (on a heterogeneous pool: the fastest
  idle array, warm figures included), so work never waits for a busy
  large array while a small idle one could finish sooner.
* :class:`BacklogGreedyDispatch` — greedy over *completion time*
  (``queue_delay + duration``) across **all** arrays, busy ones
  included: a fast array with a short backlog can beat a slow idle one.
  Declares ``considers_busy``, so the serving core stacks the batch
  behind the chosen array's in-flight work instead of claiming it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig


@dataclass
class ArrayStats:
    """Utilization counters for one simulated array."""

    array: int
    busy_us: float = 0.0
    batches: int = 0
    requests: int = 0
    #: Batches that arrived back to back (charged the pipelined warm cost).
    warm_batches: int = 0

    def utilization(self, makespan_us: float) -> float:
        """Fraction of the simulated span this array spent computing."""
        if makespan_us <= 0:
            return 0.0
        return self.busy_us / makespan_us


@dataclass
class ArrayPool:
    """Idle/busy bookkeeping for ``count`` accelerator arrays.

    ``configs`` makes the pool heterogeneous: ``configs[i]`` is array
    ``i``'s accelerator configuration (``None`` keeps the classic
    homogeneous pool, priced by the simulator's shared cost model).
    """

    count: int
    configs: tuple[AcceleratorConfig, ...] | None = None
    stats: list[ArrayStats] = field(init=False)
    _idle: set[int] = field(init=False)
    _last_release_us: list[float | None] = field(init=False)
    _last_batch_size: list[int | None] = field(init=False)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError("array count must be positive")
        if self.configs is not None:
            self.configs = tuple(self.configs)
            if len(self.configs) != self.count:
                raise ConfigError(
                    f"{len(self.configs)} array configs for {self.count} arrays"
                )
        self.stats = [ArrayStats(array=i) for i in range(self.count)]
        self._idle = set(range(self.count))
        self._last_release_us = [None] * self.count
        self._last_batch_size = [None] * self.count
        self._last_cost = [None] * self.count
        self._busy_until_us = [0.0] * self.count
        self._quarantined: set[int] = set()

    @property
    def idle_count(self) -> int:
        """Number of currently idle arrays."""
        return len(self._idle)

    @property
    def active_count(self) -> int:
        """Arrays currently in service (not quarantined)."""
        return self.count - len(self._quarantined)

    def has_idle(self) -> bool:
        """Whether any array can accept a batch."""
        return bool(self._idle)

    def idle_ids(self) -> list[int]:
        """Currently idle array ids, ascending."""
        return sorted(self._idle)

    def active_ids(self) -> list[int]:
        """Array ids currently in service (idle or busy), ascending."""
        if not self._quarantined:
            return list(range(self.count))
        return [i for i in range(self.count) if i not in self._quarantined]

    def quarantined_ids(self) -> list[int]:
        """Array ids currently quarantined, ascending."""
        return sorted(self._quarantined)

    def is_quarantined(self, array: int) -> bool:
        """Whether ``array`` is out of service after a crash."""
        return array in self._quarantined

    def quarantine(self, array: int) -> None:
        """Take a (crashed) array out of service: it never idles until
        :meth:`readmit` returns it to the pool."""
        self._idle.discard(array)
        self._quarantined.add(array)

    def readmit(self, array: int) -> None:
        """Return a quarantined array to the idle pool, cold (its warm
        state and release recency are reset)."""
        if array not in self._quarantined:
            raise ConfigError(f"array {array} is not quarantined")
        self._quarantined.remove(array)
        self._idle.add(array)
        self._last_release_us[array] = None
        self._last_batch_size[array] = None
        self._last_cost[array] = None

    def config_for(self, array: int) -> AcceleratorConfig | None:
        """Array ``array``'s configuration (None on a homogeneous pool)."""
        return None if self.configs is None else self.configs[array]

    def is_warm(self, array: int, now_us: float) -> bool:
        """Whether dispatching to ``array`` at ``now_us`` is back to back."""
        return self._last_release_us[array] == now_us

    def last_batch_size(self, array: int) -> int | None:
        """Size of the last batch this array ran (the warm-cost key)."""
        return self._last_batch_size[array]

    def last_cost(self, array: int):
        """Cost model that priced this array's last batch (or ``None``).

        On a shared multi-tenant pool the predecessor batch may belong
        to a different network; the serving simulator passes this model
        to ``warm_batch_cycles(..., prev_cost=...)`` so cross-network
        hand-offs are priced from the actual predecessor's op timeline.
        """
        return self._last_cost[array]

    def lru_key(self, array: int):
        """Sort key ordering arrays least-recently-released first.

        Never-released arrays (idle since the start) sort before any
        released one; equal release instants tie-break by array id, so
        placement stays deterministic.
        """
        last = self._last_release_us[array]
        return (last if last is not None else float("-inf"), array)

    def claim(self, array: int) -> None:
        """Mark an idle array busy (a dispatch policy chose it)."""
        if array not in self._idle:
            raise ConfigError(f"array {array} is not idle")
        self._idle.remove(array)

    def select(self, now_us: float, prefer_warm: bool = False) -> tuple[int, bool]:
        """Claim an idle array for a batch dispatched at ``now_us``.

        Returns ``(array, warm)``.  ``warm`` is true when the array was
        released at exactly ``now_us`` — the batch follows the previous
        one with no drain.  With ``prefer_warm`` a warm idle array wins
        over colder ones; otherwise the least-recently-released idle
        array wins (ties by id).
        """
        if not self._idle:
            raise ConfigError("select() with no idle array")
        candidates = self._idle
        if prefer_warm:
            warm_ids = [i for i in self._idle if self.is_warm(i, now_us)]
            if warm_ids:
                candidates = warm_ids
        array = min(candidates, key=self.lru_key)
        self.claim(array)
        return array, self.is_warm(array, now_us)

    def charge(
        self,
        array: int,
        batch_size: int,
        duration_us: float,
        warm: bool = False,
        now_us: float | None = None,
        cost=None,
    ) -> None:
        """Account one dispatched batch against a claimed array.

        ``now_us`` (the dispatch instant) lets the pool track when the
        array will free, for admission-time backlog estimates; ``cost``
        records which cost model priced the batch (the cross-network
        warm-cost key).
        """
        stat = self.stats[array]
        stat.busy_us += duration_us
        stat.batches += 1
        stat.requests += batch_size
        if warm:
            stat.warm_batches += 1
        # Unconditional: a charge without a cost model must not leave a
        # stale predecessor model paired with the new batch size (the
        # None falls back to the receiver's own pair cost downstream).
        self._last_batch_size[array] = batch_size
        self._last_cost[array] = cost
        if now_us is not None:
            self._busy_until_us[array] = now_us + duration_us

    def earliest_idle_us(self, now_us: float) -> float:
        """Earliest instant any array can accept a batch.

        ``now_us`` when an array is already idle; otherwise the soonest
        in-flight completion (as recorded by :meth:`charge`) among
        in-service arrays — ``inf`` when every array is quarantined, so
        capacity-aware admission degrades to shedding instead of
        promising service that cannot happen.
        """
        if self._idle:
            return now_us
        if not self._quarantined:
            return max(now_us, min(self._busy_until_us))
        horizons = [
            until
            for array, until in enumerate(self._busy_until_us)
            if array not in self._quarantined
        ]
        if not horizons:
            return float("inf")
        return max(now_us, min(horizons))

    def release(self, array: int, now_us: float | None = None) -> None:
        """Return an array to the idle pool when its batch completes.

        A quarantined array stays out of the idle set — work stacked
        behind a crash drains, but nothing new lands until
        :meth:`readmit`.
        """
        if array in self._quarantined:
            self._last_release_us[array] = now_us
            return
        self._idle.add(array)
        self._last_release_us[array] = now_us

    def utilization_spread(self, makespan_us: float) -> float:
        """Max minus min per-array utilization (placement-fairness gauge)."""
        values = [stat.utilization(makespan_us) for stat in self.stats]
        return max(values) - min(values)


@dataclass(frozen=True)
class DispatchContext:
    """Everything a dispatch policy may consult for one placement.

    ``duration_us(array)`` is the predicted occupancy of the batch on
    that array — warm-aware and, on heterogeneous pools, priced with the
    array's own cost model — supplied by the simulator.
    """

    pool: ArrayPool
    now_us: float
    batch_size: int
    pipeline: bool
    duration_us: Callable[[int], float]
    #: Predicted wait before a batch placed on that array could *start*
    #: (0 for an idle array).  Only supplied to policies that declare
    #: ``considers_busy``; ``None`` otherwise.
    queue_delay_us: Callable[[int], float] | None = None

    def idle_ids(self) -> Sequence[int]:
        """Idle array ids, ascending."""
        return self.pool.idle_ids()

    def warm_ids(self) -> list[int]:
        """Idle arrays that would run this batch back to back."""
        return [i for i in self.idle_ids() if self.pool.is_warm(i, self.now_us)]


def _require_idle(ctx: DispatchContext) -> list[int]:
    idle = list(ctx.idle_ids())
    if not idle:
        raise ConfigError("dispatch with no idle array")
    return idle


@dataclass(frozen=True)
class LeastRecentDispatch:
    """Longest-idle array first; warm array first in pipelined mode."""

    def select(self, ctx: DispatchContext) -> int:
        """Pick an idle array id for the batch."""
        idle = _require_idle(ctx)
        if ctx.pipeline:
            warm = ctx.warm_ids()
            if warm:
                return min(warm, key=ctx.pool.lru_key)
        return min(idle, key=ctx.pool.lru_key)

    def describe(self) -> str:
        """Short human-readable policy name."""
        return "least-recent"


@dataclass(frozen=True)
class PreferWarmDispatch:
    """Warm array first regardless of mode, else longest-idle."""

    def select(self, ctx: DispatchContext) -> int:
        """Pick an idle array id for the batch."""
        idle = _require_idle(ctx)
        warm = ctx.warm_ids()
        if warm:
            return min(warm, key=ctx.pool.lru_key)
        return min(idle, key=ctx.pool.lru_key)

    def describe(self) -> str:
        """Short human-readable policy name."""
        return "prefer-warm"


@dataclass
class RoundRobinDispatch:
    """Strict rotation over array ids, skipping busy arrays."""

    _next: int = field(default=0, repr=False, compare=False)

    def select(self, ctx: DispatchContext) -> int:
        """Pick the next idle array at or after the rotation pointer."""
        idle = set(_require_idle(ctx))
        for offset in range(ctx.pool.count):
            array = (self._next + offset) % ctx.pool.count
            if array in idle:
                self._next = (array + 1) % ctx.pool.count
                return array
        raise ConfigError("dispatch with no idle array")  # unreachable

    def describe(self) -> str:
        """Short human-readable policy name."""
        return "round-robin"


@dataclass(frozen=True)
class GreedyWhenIdleDispatch:
    """The idle array with the smallest predicted duration wins.

    On a homogeneous pool every idle array prices the batch the same
    (modulo warmth) and this reduces to warm-first least-recent; on a
    heterogeneous pool it sends work to the fastest *idle* array —
    a small idle array beats waiting for the busy large one.
    """

    def select(self, ctx: DispatchContext) -> int:
        """Pick an idle array id for the batch."""
        idle = _require_idle(ctx)
        return min(idle, key=lambda i: (ctx.duration_us(i), ctx.pool.lru_key(i)))

    def describe(self) -> str:
        """Short human-readable policy name."""
        return "greedy"


@dataclass(frozen=True)
class BacklogGreedyDispatch:
    """Earliest predicted *completion* wins, counting per-array backlog.

    :class:`GreedyWhenIdleDispatch` only ever sees idle arrays, so on a
    heterogeneous pool a batch can land on a slow-but-idle array even
    when the fast array frees up almost immediately.  This policy ranks
    **every** array by ``queue_delay_us + duration_us`` — the predicted
    instant the batch would finish if placed there — and lets the
    serving core stack the batch behind a busy winner.
    """

    #: The serving core reads this to allow placement on busy arrays
    #: (stacking) and to supply ``ctx.queue_delay_us``.
    considers_busy = True

    def select(self, ctx: DispatchContext) -> int:
        """Pick the array (idle or busy) with the earliest completion."""
        delay = ctx.queue_delay_us
        if delay is None:
            # A driver that cannot stack (no backlog view) degrades to
            # the idle-only greedy choice.
            idle = _require_idle(ctx)
            return min(idle, key=lambda i: (ctx.duration_us(i), ctx.pool.lru_key(i)))
        candidates = ctx.pool.active_ids()
        if not candidates:
            raise ConfigError("dispatch with every array quarantined")
        return min(
            candidates,
            key=lambda i: (delay(i) + ctx.duration_us(i), ctx.pool.lru_key(i)),
        )

    def describe(self) -> str:
        """Short human-readable policy name."""
        return "greedy-backlog"
