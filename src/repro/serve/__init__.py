"""Async inference-serving simulator for CapsAcc.

The serving subsystem models the system *around* the accelerator, and is
organized around three pluggable policy protocols
(:mod:`repro.serve.policies`): requests arrive on configurable traces
(:mod:`repro.serve.trace`), an **admission policy** accepts or sheds
each arrival, a **batching policy** decides when a tenant's queue is
ready and what a batch takes (:mod:`repro.serve.batcher` — the classic
max-batch + max-wait rule, or the SLA-aware deadline batcher), and a
**dispatch policy** places formed batches onto a pool of simulated
arrays (:mod:`repro.serve.dispatcher` — least-recent, round-robin,
prefer-warm, or greedy over heterogeneous array sizes), each advancing
on the cycle-exact costs of the batched execution engine
(:mod:`repro.serve.costs`).  A :class:`ServerConfig` composes one of
each with the cost model; :class:`TenantSpec` lists describe
multi-tenant runs (different networks/SLAs sharing one pool under
weighted-fair service).  The discrete-event loop and the latency
decomposition (queueing / batching / compute) live in
:mod:`repro.serve.simulator`; reports in :mod:`repro.serve.stats`.

The same policy engine also serves *live*: the time-source-agnostic
core (:mod:`repro.serve.core`) runs under either a virtual clock (the
simulator, or :func:`replay_virtual`) or the wall clock
(:class:`ServingRuntime` in :mod:`repro.serve.runtime` — real requests,
real batches through the quantized engine via
:mod:`repro.serve.workers`).  Both paths emit the same
:class:`ServingReport` through a pluggable :class:`CompletionSink`
(:mod:`repro.serve.sinks`), so sim-vs-live comparison is one function
call (:mod:`repro.serve.compare`).  Both drivers also accept a
``tracer`` (:mod:`repro.obs`): one observability hook surface in the
core yields the same structured event stream — and the same Perfetto
timeline export and live metrics — from simulated and real runs.

Quick start::

    import numpy as np
    from repro.serve import (
        ScheduledBatchCost, ServerConfig, ServingSimulator, poisson_trace,
    )

    rng = np.random.default_rng(7)
    trace = poisson_trace(rate_rps=400.0, count=64, rng=rng)
    cost = ScheduledBatchCost()                   # paper MNIST network
    server = ServerConfig.from_policy(
        "deadline", cost, arrays=2, deadline_us=10_000.0
    )
    report = ServingSimulator(trace, server=server).run()
    print(report.format_table())
"""

from repro.serve.batcher import (
    BatchPolicy,
    DeadlineBatcher,
    DynamicBatcher,
    QueuedRequest,
    RequestQueue,
)
from repro.serve.clock import Clock, MonotonicClock, VirtualClock
from repro.serve.compare import (
    compare_reports,
    compare_reports_median,
    decision_diffs,
    decisions_identical,
)
from repro.serve.core import PlacedBatch, ServingCore
from repro.serve.costs import (
    ACCOUNTINGS,
    AnalyticBatchCost,
    ScheduledBatchCost,
    clear_probe_cache,
    crosscheck,
    probe_cache_size,
)
from repro.serve.faults import (
    CORRUPT_TARGETS,
    CorruptionSpec,
    FaultInjector,
    FaultPlan,
    FaultStats,
    FaultyExecutor,
    InjectedCrashError,
    RetryPolicy,
    load_fault_plan,
)
from repro.serve.integrity import (
    CHECK_MODES,
    CanaryStream,
    DetectedCorruptionError,
    IntegrityPolicy,
)
from repro.serve.dispatcher import (
    ArrayPool,
    ArrayStats,
    BacklogGreedyDispatch,
    DispatchContext,
    GreedyWhenIdleDispatch,
    LeastRecentDispatch,
    PreferWarmDispatch,
    RoundRobinDispatch,
)
from repro.serve.policies import (
    ADMISSION_POLICIES,
    BATCHING_POLICIES,
    DISPATCH_POLICIES,
    SERVING_POLICIES,
    AdmitAll,
    ChainedAdmission,
    CostBank,
    DeadlineAdmission,
    DegradedModeAdmission,
    QueueLimitAdmission,
    ServerConfig,
    TenantSpec,
    add_server_arguments,
    make_serving_policy,
)
from repro.serve.runtime import (
    MeasuredBatchCost,
    RequestShedError,
    RuntimeEngine,
    ServingRuntime,
    replay_virtual,
)
from repro.serve.simulator import ServingSimulator
from repro.serve.sinks import CompletionSink, RecordingSink, StreamingSink
from repro.serve.stats import (
    DEFAULT_LATENCY_BIN_US,
    BatchRecord,
    LatencyHistogram,
    RequestRecord,
    ServingReport,
    StreamingStats,
    percentile_summary,
)
from repro.serve.trace import (
    TRACE_DEADLINE_KEY,
    TRACE_KINDS,
    TRACE_TIME_KEYS,
    ArrivalTrace,
    bursty_trace,
    load_trace_file,
    make_trace,
    poisson_trace,
    replay_trace,
    uniform_trace,
)
from repro.serve.workers import (
    CompiledStreamExecutor,
    InlineEngineExecutor,
    PredictedExecutor,
    ProcessWorkerPool,
    WorkerCrashError,
)

__all__ = [
    "ACCOUNTINGS",
    "ADMISSION_POLICIES",
    "BATCHING_POLICIES",
    "CHECK_MODES",
    "CORRUPT_TARGETS",
    "DEFAULT_LATENCY_BIN_US",
    "DISPATCH_POLICIES",
    "SERVING_POLICIES",
    "TRACE_DEADLINE_KEY",
    "TRACE_KINDS",
    "TRACE_TIME_KEYS",
    "AdmitAll",
    "AnalyticBatchCost",
    "ArrayPool",
    "ArrayStats",
    "ArrivalTrace",
    "BacklogGreedyDispatch",
    "BatchPolicy",
    "BatchRecord",
    "CanaryStream",
    "ChainedAdmission",
    "Clock",
    "CompiledStreamExecutor",
    "CompletionSink",
    "CorruptionSpec",
    "CostBank",
    "DeadlineAdmission",
    "DeadlineBatcher",
    "DegradedModeAdmission",
    "DetectedCorruptionError",
    "DispatchContext",
    "DynamicBatcher",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FaultyExecutor",
    "GreedyWhenIdleDispatch",
    "InjectedCrashError",
    "InlineEngineExecutor",
    "IntegrityPolicy",
    "LatencyHistogram",
    "LeastRecentDispatch",
    "MeasuredBatchCost",
    "MonotonicClock",
    "PlacedBatch",
    "PredictedExecutor",
    "PreferWarmDispatch",
    "ProcessWorkerPool",
    "QueueLimitAdmission",
    "QueuedRequest",
    "RecordingSink",
    "RequestQueue",
    "RequestRecord",
    "RequestShedError",
    "RetryPolicy",
    "RoundRobinDispatch",
    "RuntimeEngine",
    "ScheduledBatchCost",
    "ServerConfig",
    "ServingCore",
    "ServingReport",
    "ServingRuntime",
    "ServingSimulator",
    "StreamingSink",
    "StreamingStats",
    "TenantSpec",
    "VirtualClock",
    "WorkerCrashError",
    "add_server_arguments",
    "bursty_trace",
    "clear_probe_cache",
    "compare_reports",
    "compare_reports_median",
    "crosscheck",
    "decision_diffs",
    "decisions_identical",
    "load_fault_plan",
    "load_trace_file",
    "make_serving_policy",
    "make_trace",
    "percentile_summary",
    "poisson_trace",
    "probe_cache_size",
    "replay_trace",
    "replay_virtual",
    "uniform_trace",
]
