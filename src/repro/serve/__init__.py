"""Async inference-serving simulator for CapsAcc.

The serving subsystem models the system *around* the accelerator: requests
arrive on a configurable trace (:mod:`repro.serve.trace`), a dynamic
batcher coalesces them under a max-batch / max-wait policy
(:mod:`repro.serve.batcher`), and a dispatcher shards formed batches
across N simulated arrays (:mod:`repro.serve.dispatcher`), each advancing
on the cycle-exact costs of the batched execution engine
(:mod:`repro.serve.costs`).  The discrete-event loop and the latency
decomposition (queueing / batching / compute) live in
:mod:`repro.serve.simulator`; reports in :mod:`repro.serve.stats`.

Quick start::

    import numpy as np
    from repro.serve import (
        BatchPolicy, ScheduledBatchCost, ServingSimulator, poisson_trace,
    )

    rng = np.random.default_rng(7)
    trace = poisson_trace(rate_rps=400.0, count=64, rng=rng)
    cost = ScheduledBatchCost()                   # paper MNIST network
    sim = ServingSimulator(trace, BatchPolicy(max_batch=8), cost, arrays=2)
    report = sim.run(with_crosscheck=True)
    print(report.format_table())
"""

from repro.serve.batcher import BatchPolicy, DynamicBatcher, QueuedRequest
from repro.serve.costs import (
    ACCOUNTINGS,
    AnalyticBatchCost,
    ScheduledBatchCost,
    crosscheck,
)
from repro.serve.dispatcher import ArrayPool, ArrayStats
from repro.serve.simulator import ServingSimulator
from repro.serve.stats import (
    BatchRecord,
    RequestRecord,
    ServingReport,
    percentile_summary,
)
from repro.serve.trace import (
    TRACE_KINDS,
    TRACE_TIME_KEYS,
    ArrivalTrace,
    bursty_trace,
    load_trace_file,
    make_trace,
    poisson_trace,
    replay_trace,
    uniform_trace,
)

__all__ = [
    "ACCOUNTINGS",
    "TRACE_KINDS",
    "TRACE_TIME_KEYS",
    "AnalyticBatchCost",
    "ArrayPool",
    "ArrayStats",
    "ArrivalTrace",
    "BatchPolicy",
    "BatchRecord",
    "DynamicBatcher",
    "QueuedRequest",
    "RequestRecord",
    "ScheduledBatchCost",
    "ServingReport",
    "ServingSimulator",
    "bursty_trace",
    "crosscheck",
    "load_trace_file",
    "make_trace",
    "percentile_summary",
    "poisson_trace",
    "replay_trace",
    "uniform_trace",
]
