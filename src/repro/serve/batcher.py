"""Dynamic batching policy: max batch size + bounded coalescing wait.

The batcher coalesces queued requests into batches at *dequeue* time, the
way serving systems (DESCNet-style memory-aware designs, Triton's dynamic
batcher) actually form batches: requests accumulate while every array is
busy, and when an array frees the dispatcher takes up to ``max_batch`` of
them.  When an array is idle but the queue holds fewer than ``max_batch``
requests, the policy waits at most ``max_wait_us`` past the oldest
request's arrival before dispatching a partial batch — trading a bounded
amount of latency for weight-reuse throughput.

Forming batches on a free-running timeout instead (independent of array
availability) degenerates to near-batch-1 under load — every timeout
window closes a tiny batch — which is why the batcher exposes *readiness*
(:meth:`DynamicBatcher.ready`) and lets the simulator's dispatch loop
decide when to :meth:`~DynamicBatcher.take`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class BatchPolicy:
    """Dynamic batching knobs.

    ``max_batch=1`` (any wait) is request-at-a-time serving — the
    baseline; ``max_wait_us=0`` dispatches whatever is queued the moment
    an array frees without ever waiting for stragglers.
    """

    max_batch: int = 8
    max_wait_us: float = 2000.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError("max_batch must be positive")
        # The inverted comparison also rejects NaN, which would otherwise
        # produce never-ready deadlines and hang the event loop.
        if not (math.isfinite(self.max_wait_us) and self.max_wait_us >= 0):
            raise ConfigError("max_wait_us must be finite and non-negative")

    def describe(self) -> str:
        """Short human-readable policy name."""
        if self.max_batch == 1:
            return "batch-1"
        return f"batch<={self.max_batch}/wait<={self.max_wait_us:g}us"


@dataclass(frozen=True)
class QueuedRequest:
    """One request waiting in the batcher."""

    index: int
    arrival_us: float


class DynamicBatcher:
    """FIFO request queue with max-batch / max-wait batch formation."""

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self._pending: deque[QueuedRequest] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, request: QueuedRequest) -> None:
        """Enqueue an arriving request."""
        self._pending.append(request)

    @property
    def oldest_deadline_us(self) -> float | None:
        """Latest time the oldest queued request may keep waiting."""
        if not self._pending:
            return None
        return self._pending[0].arrival_us + self.policy.max_wait_us

    def ready(self, now_us: float) -> bool:
        """Whether a batch should be dispatched to an idle array now.

        True when a full batch is queued, or when the oldest request has
        exhausted its coalescing wait.
        """
        if len(self._pending) >= self.policy.max_batch:
            return True
        return bool(self._pending) and now_us >= self.oldest_deadline_us

    def take(self) -> list[QueuedRequest]:
        """Pop the next batch (up to ``max_batch`` oldest requests)."""
        if not self._pending:
            raise ConfigError("take() called on an empty batcher")
        size = min(len(self._pending), self.policy.max_batch)
        return [self._pending.popleft() for _ in range(size)]
