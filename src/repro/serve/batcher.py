"""Batching policies: when is a queue ready, and what does a batch take.

Batch formation happens at *dequeue* time, the way serving systems
(DESCNet-style memory-aware designs, Triton's dynamic batcher) actually
form batches: requests accumulate in a FIFO :class:`RequestQueue` while
every array is busy, and when an array frees a **batching policy**
decides whether the queue is *ready* (:meth:`~BatchPolicy.ready`), which
requests to :meth:`~BatchPolicy.take`, and — when it chooses to keep
coalescing — the :meth:`~BatchPolicy.next_deadline_us` at which that
decision must be revisited.  The simulator drives only this protocol
(see :mod:`repro.serve.policies`), so policies are pluggable:

* :class:`BatchPolicy` — the classic max-batch + bounded-coalescing-wait
  rule (the PR 2 behavior, unchanged: full batch, or the oldest request
  waited ``max_wait_us``);
* :class:`DeadlineBatcher` — SLA-aware: launches a partial batch *early*
  the moment waiting any longer would make the oldest queued request's
  deadline unmeetable (deadline minus the predicted compute time of the
  batch that would dispatch), instead of riding out the full coalescing
  wait.  Requests without deadlines fall back to the bounded wait.

Forming batches on a free-running timeout instead (independent of array
availability) degenerates to near-batch-1 under load — every timeout
window closes a tiny batch — which is why policies expose *readiness*
and let the simulator's dispatch loop decide when to take.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ConfigError


@dataclass(frozen=True)
class QueuedRequest:
    """One request waiting in a queue.

    ``deadline_us`` is the absolute completion deadline (SLA); ``inf``
    means the request carries none.  ``attempts`` counts *failed*
    executions so far (0 for a fresh arrival) — the fault layer bumps it
    when a crashed batch requeues its members, and retry budgets compare
    it against :attr:`~repro.serve.faults.RetryPolicy.max_attempts`.
    """

    index: int
    arrival_us: float
    deadline_us: float = math.inf
    attempts: int = 0


class RequestQueue:
    """FIFO of queued requests (one per tenant in the simulator)."""

    def __init__(self) -> None:
        self._pending: deque[QueuedRequest] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self) -> Iterator[QueuedRequest]:
        return iter(self._pending)

    def append(self, request: QueuedRequest) -> None:
        """Enqueue an arriving (admitted) request."""
        self._pending.append(request)

    def push_front(self, request: QueuedRequest) -> None:
        """Requeue a retried request at the *front* of the queue.

        Retried requests carry the oldest arrival timestamps, so front
        insertion keeps the queue arrival-sorted — batching readiness
        (which peeks the oldest) and deadline scans stay correct.
        """
        self._pending.appendleft(request)

    def popleft(self) -> QueuedRequest:
        """Dequeue the oldest request."""
        return self._pending.popleft()

    def peek(self) -> QueuedRequest | None:
        """The oldest queued request, or ``None`` when empty."""
        return self._pending[0] if self._pending else None


def _check_batching_knobs(max_batch: int, max_wait_us: float) -> None:
    if max_batch < 1:
        raise ConfigError("max_batch must be positive")
    # The inverted comparison also rejects NaN, which would otherwise
    # produce never-ready deadlines and hang the event loop.
    if not (math.isfinite(max_wait_us) and max_wait_us >= 0):
        raise ConfigError("max_wait_us must be finite and non-negative")


def _take_fifo(queue: RequestQueue, max_batch: int) -> list[QueuedRequest]:
    if not len(queue):
        raise ConfigError("take() called on an empty queue")
    size = min(len(queue), max_batch)
    return [queue.popleft() for _ in range(size)]


@dataclass(frozen=True)
class BatchPolicy:
    """Max-batch + bounded-coalescing-wait batching (the classic rule).

    ``max_batch=1`` (any wait) is request-at-a-time serving — the
    baseline; ``max_wait_us=0`` dispatches whatever is queued the moment
    an array frees without ever waiting for stragglers.
    """

    max_batch: int = 8
    max_wait_us: float = 2000.0

    def __post_init__(self) -> None:
        _check_batching_knobs(self.max_batch, self.max_wait_us)

    def bind(self, cost) -> None:
        """No prediction needed — the wait bound is time-based only."""

    def ready(self, queue: RequestQueue, now_us: float) -> bool:
        """True when a full batch is queued or the oldest wait expired."""
        if len(queue) >= self.max_batch:
            return True
        oldest = queue.peek()
        return oldest is not None and now_us >= oldest.arrival_us + self.max_wait_us

    def take(self, queue: RequestQueue, now_us: float = 0.0) -> list[QueuedRequest]:
        """Pop the next batch (up to ``max_batch`` oldest requests)."""
        return _take_fifo(queue, self.max_batch)

    def next_deadline_us(self, queue: RequestQueue, now_us: float = 0.0) -> float | None:
        """Latest time the oldest queued request may keep waiting."""
        oldest = queue.peek()
        if oldest is None:
            return None
        return oldest.arrival_us + self.max_wait_us

    def describe(self) -> str:
        """Short human-readable policy name."""
        if self.max_batch == 1:
            return "batch-1"
        return f"batch<={self.max_batch}/wait<={self.max_wait_us:g}us"


@dataclass
class DeadlineBatcher:
    """SLA-aware batching: launch early before a deadline becomes unmeetable.

    Readiness adds one rule to :class:`BatchPolicy`: the batch that would
    dispatch now (``min(len(queue), max_batch)`` requests) launches the
    moment ``now + predicted_compute + slack_us`` reaches the earliest
    deadline among its members — waiting any longer guarantees an SLA
    violation, so coalescing further has negative value.  Requests
    without deadlines still dispatch within ``max_wait_us`` of arrival.

    The compute predictor comes from the serving cost model via
    :meth:`bind` (the simulator binds each tenant's policy to that
    tenant's cost); unbound, predicted compute is zero and the policy
    degrades to launching exactly at the deadline.
    """

    max_batch: int = 8
    max_wait_us: float = 2000.0
    slack_us: float = 0.0
    _predict_us: Callable[[int], float] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        _check_batching_knobs(self.max_batch, self.max_wait_us)
        if not (math.isfinite(self.slack_us) and self.slack_us >= 0):
            raise ConfigError("slack_us must be finite and non-negative")

    def bind(self, cost) -> None:
        """Predict batch compute time from a serving cost model."""
        config = cost.config
        self._predict_us = lambda size: config.cycles_to_us(cost.batch_cycles(size))

    def predicted_compute_us(self, batch_size: int) -> float:
        """Predicted array occupancy of a ``batch_size`` dispatch."""
        if self._predict_us is None:
            return 0.0
        return self._predict_us(batch_size)

    def launch_by_us(self, queue: RequestQueue) -> float | None:
        """Latest instant a dispatch can still coalesce without regret.

        The minimum of the oldest request's bounded wait and, per queued
        deadline in the would-be batch, the deadline minus the predicted
        compute time and slack.
        """
        oldest = queue.peek()
        if oldest is None:
            return None
        launch_by = oldest.arrival_us + self.max_wait_us
        size = min(len(queue), self.max_batch)
        compute = self.predicted_compute_us(size)
        for position, request in enumerate(queue):
            if position >= self.max_batch:
                break
            if math.isfinite(request.deadline_us):
                launch_by = min(
                    launch_by, request.deadline_us - compute - self.slack_us
                )
        return launch_by

    def ready(self, queue: RequestQueue, now_us: float) -> bool:
        """Full batch, expired wait, or a deadline about to be violated."""
        if len(queue) >= self.max_batch:
            return True
        launch_by = self.launch_by_us(queue)
        return launch_by is not None and now_us >= launch_by

    def take(self, queue: RequestQueue, now_us: float = 0.0) -> list[QueuedRequest]:
        """Pop the next batch (up to ``max_batch`` oldest requests)."""
        return _take_fifo(queue, self.max_batch)

    def next_deadline_us(self, queue: RequestQueue, now_us: float = 0.0) -> float | None:
        """When readiness must be re-evaluated if nothing arrives."""
        return self.launch_by_us(queue)

    def describe(self) -> str:
        """Short human-readable policy name."""
        label = f"deadline/batch<={self.max_batch}"
        if self.slack_us:
            label += f"/slack{self.slack_us:g}us"
        return label


class DynamicBatcher:
    """A request queue bound to one batching policy.

    Thin convenience (and backward-compatibility) wrapper: the simulator
    itself drives per-tenant :class:`RequestQueue` objects through the
    policy protocol directly.
    """

    def __init__(self, policy) -> None:
        self.policy = policy
        self.queue = RequestQueue()

    def __len__(self) -> int:
        return len(self.queue)

    def add(self, request: QueuedRequest) -> None:
        """Enqueue an arriving request."""
        self.queue.append(request)

    @property
    def oldest_deadline_us(self) -> float | None:
        """When the policy must re-evaluate readiness (None when empty)."""
        return self.policy.next_deadline_us(self.queue, 0.0)

    def ready(self, now_us: float) -> bool:
        """Whether a batch should be dispatched to an idle array now."""
        return self.policy.ready(self.queue, now_us)

    def take(self) -> list[QueuedRequest]:
        """Pop the next batch under the bound policy."""
        return self.policy.take(self.queue)
