"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package,
so pip cannot perform a PEP 660 editable install.  This legacy ``setup.py``
lets ``pip install -e .`` fall back to ``setup.py develop``, which needs
only setuptools.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
